use std::error::Error;
use std::fmt;

/// Error type for simulator configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value violates its precondition.
    InvalidConfig {
        /// Description of the violated precondition.
        reason: String,
    },
    /// The run was interrupted cooperatively (deadline, cancel token or
    /// the `solver.cancel` fail point) before completing its configured
    /// job count. Integer fields only, preserving `Eq` for results
    /// plumbing.
    Interrupted {
        /// Events processed before the interruption.
        events: u64,
        /// Wall-clock milliseconds the run lasted.
        elapsed_ms: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            // "interrupted" must appear verbatim: the serving layer
            // classifies job errors by that substring.
            SimError::Interrupted { events, elapsed_ms } => write!(
                f,
                "interrupted: simulation stopped after {events} events ({elapsed_ms} ms elapsed)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = SimError::InvalidConfig {
            reason: "jobs must exceed warmup".into(),
        };
        assert!(e.to_string().contains("jobs must exceed warmup"));
    }
}
