use std::error::Error;
use std::fmt;

/// Error type for simulator configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value violates its precondition.
    InvalidConfig {
        /// Description of the violated precondition.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = SimError::InvalidConfig {
            reason: "jobs must exceed warmup".into(),
        };
        assert!(e.to_string().contains("jobs must exceed warmup"));
    }
}
