//! Interarrival and service-time distributions.
//!
//! The paper's base model is Poisson arrivals / exponential services; the
//! other laws implement the MAP/PH-flavoured extension its conclusion
//! points to and let the examples explore sensitivity to variability.

use rand::Rng;

/// Service-time distribution of a single job.
///
/// All constructors fix the *mean*, so policies are compared at equal
/// offered load; the paper's convention is unit mean
/// ([`ServiceDistribution::exp_unit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDistribution {
    /// Exponential with the given mean.
    Exponential {
        /// Mean service time.
        mean: f64,
    },
    /// Deterministic service time.
    Deterministic {
        /// The constant service time.
        value: f64,
    },
    /// Erlang with `k` stages and the given total mean (CV² = 1/k).
    Erlang {
        /// Number of stages (≥ 1).
        k: u32,
        /// Mean of the whole service time.
        mean: f64,
    },
    /// Two-branch hyperexponential with mean
    /// `p/rate1 + (1−p)/rate2` (CV² > 1); models heavy-ish job-size
    /// variability.
    HyperExp {
        /// Probability of branch 1.
        p: f64,
        /// Rate of branch 1.
        rate1: f64,
        /// Rate of branch 2.
        rate2: f64,
    },
}

impl ServiceDistribution {
    /// The paper's unit-mean exponential service.
    pub fn exp_unit() -> Self {
        ServiceDistribution::Exponential { mean: 1.0 }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => mean,
            ServiceDistribution::Deterministic { value } => value,
            ServiceDistribution::Erlang { mean, .. } => mean,
            ServiceDistribution::HyperExp { p, rate1, rate2 } => p / rate1 + (1.0 - p) / rate2,
        }
    }

    /// Draws one service time.
    ///
    /// Arithmetically identical, draw for draw, to [`Self::fill`]: both
    /// scale a unit-rate ziggurat variate by the same precomputed
    /// factor, so the scalar and block paths produce bit-equal streams
    /// from equal RNG states (pinned by the batched-draw tests).
    ///
    /// # Panics
    ///
    /// Panics (debug) if parameters are invalid; validation happens at
    /// configuration time.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => exp1(rng) * mean,
            ServiceDistribution::Deterministic { value } => value,
            ServiceDistribution::Erlang { k, mean } => {
                let scale = mean / k as f64;
                (0..k).map(|_| exp1(rng)).sum::<f64>() * scale
            }
            ServiceDistribution::HyperExp { p, rate1, rate2 } => {
                if rng.gen::<f64>() < p {
                    exp1(rng) * (1.0 / rate1)
                } else {
                    exp1(rng) * (1.0 / rate2)
                }
            }
        }
    }

    /// Fills `out` with one service time per slot — the batched
    /// counterpart of [`Self::sample`], used by the engine's refill
    /// buffers. The exponential case runs the ziggurat block fill and
    /// then one autovectorizable scaling pass; the table lookup, enum
    /// dispatch and parameter work are paid once per block instead of
    /// once per draw.
    pub fn fill<R: Rng>(&self, rng: &mut R, out: &mut [f64]) {
        match *self {
            ServiceDistribution::Exponential { mean } => {
                rand::distributions::Exp1.fill(rng, out);
                for x in out.iter_mut() {
                    *x *= mean;
                }
            }
            ServiceDistribution::Deterministic { value } => out.fill(value),
            ServiceDistribution::Erlang { k, mean } => {
                let scale = mean / k as f64;
                for slot in out.iter_mut() {
                    *slot = (0..k).map(|_| exp1(rng)).sum::<f64>() * scale;
                }
            }
            ServiceDistribution::HyperExp { p, rate1, rate2 } => {
                let (s1, s2) = (1.0 / rate1, 1.0 / rate2);
                for slot in out.iter_mut() {
                    let scale = if rng.gen::<f64>() < p { s1 } else { s2 };
                    *slot = exp1(rng) * scale;
                }
            }
        }
    }

    /// Whether the parameters are valid (positive rates/means, `k ≥ 1`,
    /// `p ∈ [0, 1]`).
    pub fn is_valid(&self) -> bool {
        match *self {
            ServiceDistribution::Exponential { mean } => mean > 0.0 && mean.is_finite(),
            ServiceDistribution::Deterministic { value } => value > 0.0 && value.is_finite(),
            ServiceDistribution::Erlang { k, mean } => k >= 1 && mean > 0.0 && mean.is_finite(),
            ServiceDistribution::HyperExp { p, rate1, rate2 } => {
                (0.0..=1.0).contains(&p) && rate1 > 0.0 && rate2 > 0.0
            }
        }
    }
}

/// Aggregate arrival process (interarrival-time law). The rate is set by
/// the engine so that the total arrival rate is `λN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Poisson arrivals (the paper's model).
    Poisson,
    /// Deterministic (evenly spaced) arrivals.
    Deterministic,
    /// Erlang-`k` interarrival times (smoother than Poisson).
    Erlang {
        /// Number of stages (≥ 1).
        k: u32,
    },
    /// Two-branch hyperexponential interarrivals with branch-1 probability
    /// `p_percent/100` and rate ratio `ratio` between branches (burstier
    /// than Poisson). Means are renormalized to the configured rate.
    HyperExp {
        /// Branch-1 probability in percent (integer so the enum stays `Eq`).
        p_percent: u8,
        /// Ratio between branch rates (≥ 1).
        ratio: u8,
    },
}

impl ArrivalProcess {
    /// Draws one interarrival time for a process of the given `rate`.
    ///
    /// Arithmetically identical, draw for draw, to [`Self::fill`] — see
    /// [`ServiceDistribution::sample`].
    pub fn sample<R: Rng>(&self, rng: &mut R, rate: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson => exp1(rng) * (1.0 / rate),
            ArrivalProcess::Deterministic => 1.0 / rate,
            ArrivalProcess::Erlang { k } => {
                let stage_scale = 1.0 / (rate * k as f64);
                (0..k).map(|_| exp1(rng)).sum::<f64>() * stage_scale
            }
            ArrivalProcess::HyperExp { p_percent, ratio } => {
                let p = f64::from(p_percent) / 100.0;
                let r = f64::from(ratio.max(1));
                // Branch rates r1 = c·r, r2 = c, with c chosen so that the
                // mean is 1/rate: p/(c·r) + (1−p)/c = 1/rate.
                let c = rate * (p / r + (1.0 - p));
                if rng.gen::<f64>() < p {
                    exp1(rng) * (1.0 / (c * r))
                } else {
                    exp1(rng) * (1.0 / c)
                }
            }
        }
    }

    /// Fills `out` with one interarrival time per slot for a process of
    /// the given `rate` — the batched counterpart of [`Self::sample`],
    /// used by the engine's arrival-stream refill buffer.
    pub fn fill<R: Rng>(&self, rng: &mut R, rate: f64, out: &mut [f64]) {
        match *self {
            ArrivalProcess::Poisson => {
                let inv = 1.0 / rate;
                rand::distributions::Exp1.fill(rng, out);
                for x in out.iter_mut() {
                    *x *= inv;
                }
            }
            ArrivalProcess::Deterministic => out.fill(1.0 / rate),
            ArrivalProcess::Erlang { k } => {
                let stage_scale = 1.0 / (rate * k as f64);
                for slot in out.iter_mut() {
                    *slot = (0..k).map(|_| exp1(rng)).sum::<f64>() * stage_scale;
                }
            }
            ArrivalProcess::HyperExp { p_percent, ratio } => {
                let p = f64::from(p_percent) / 100.0;
                let r = f64::from(ratio.max(1));
                let c = rate * (p / r + (1.0 - p));
                let (s1, s2) = (1.0 / (c * r), 1.0 / c);
                for slot in out.iter_mut() {
                    let scale = if rng.gen::<f64>() < p { s1 } else { s2 };
                    *slot = exp1(rng) * scale;
                }
            }
        }
    }
}

/// One unit-rate exponential draw via the vendored ziggurat fast path
/// (`rand::distributions::Exp1`) — no transcendental call on ~99% of
/// draws. Callers scale by *multiplying* with a precomputed factor
/// (never dividing by a rate in the hot path), and the scalar and block
/// paths above use the same factor so their streams agree bitwise.
#[inline]
fn exp1<R: Rng>(rng: &mut R) -> f64 {
    rand::distributions::Distribution::sample(&rand::distributions::Exp1, rng)
}

/// Exponential sampling at the given rate (used by the stateful MAP
/// sampler, which draws one phase holding time at a time).
pub(crate) fn sample_exp<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    exp1(rng) * (1.0 / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of<F: FnMut(&mut SmallRng) -> f64>(mut f: F, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(42);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn service_means_match() {
        let n = 200_000;
        let cases = [
            ServiceDistribution::exp_unit(),
            ServiceDistribution::Deterministic { value: 1.0 },
            ServiceDistribution::Erlang { k: 4, mean: 1.0 },
            ServiceDistribution::HyperExp {
                p: 0.3,
                rate1: 0.5,
                rate2: 3.0,
            },
        ];
        for dist in cases {
            let m = mean_of(|r| dist.sample(r), n);
            assert!(
                (m - dist.mean()).abs() < 0.02 * dist.mean().max(1.0),
                "{dist:?}: sample mean {m} vs {}",
                dist.mean()
            );
        }
    }

    #[test]
    fn arrival_means_match_rate() {
        let n = 200_000;
        let rate = 2.5;
        let cases = [
            ArrivalProcess::Poisson,
            ArrivalProcess::Deterministic,
            ArrivalProcess::Erlang { k: 3 },
            ArrivalProcess::HyperExp {
                p_percent: 30,
                ratio: 8,
            },
        ];
        for proc in cases {
            let m = mean_of(|r| proc.sample(r, rate), n);
            assert!(
                (m - 1.0 / rate).abs() < 0.01,
                "{proc:?}: sample mean {m} vs {}",
                1.0 / rate
            );
        }
    }

    #[test]
    fn erlang_less_variable_than_exponential() {
        let n = 100_000;
        let mut rng = SmallRng::seed_from_u64(1);
        let var = |samples: &[f64]| {
            let m = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64
        };
        let exp: Vec<f64> = (0..n)
            .map(|_| ServiceDistribution::exp_unit().sample(&mut rng))
            .collect();
        let erl: Vec<f64> = (0..n)
            .map(|_| ServiceDistribution::Erlang { k: 4, mean: 1.0 }.sample(&mut rng))
            .collect();
        assert!(var(&erl) < var(&exp));
        // Erlang-4 CV² = 1/4.
        assert!((var(&erl) - 0.25).abs() < 0.02, "var {}", var(&erl));
    }

    #[test]
    fn validity_checks() {
        assert!(ServiceDistribution::exp_unit().is_valid());
        assert!(!ServiceDistribution::Exponential { mean: 0.0 }.is_valid());
        assert!(!ServiceDistribution::Erlang { k: 0, mean: 1.0 }.is_valid());
        assert!(!ServiceDistribution::HyperExp {
            p: 2.0,
            rate1: 1.0,
            rate2: 1.0
        }
        .is_valid());
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let s = ServiceDistribution::exp_unit().sample(&mut rng);
            assert!(s.is_finite() && s >= 0.0);
        }
    }
}
