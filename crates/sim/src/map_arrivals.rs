//! Stateful sampling of Markovian Arrival Processes for the simulator.
//!
//! Unlike the renewal laws in [`crate::ArrivalProcess`], a MAP carries a
//! modulating phase between arrivals, so its sampler owns state. The
//! engine instantiates one [`MapSampler`] per run when the configuration
//! carries a [`slb_markov::Map`].

use rand::Rng;
use slb_markov::Map;

/// A running MAP sampler: the modulating phase plus the (D0, D1) rates in
/// a flattened, allocation-free form.
#[derive(Debug, Clone)]
pub(crate) struct MapSampler {
    /// Per-phase total outflow rates.
    outflow: Vec<f64>,
    /// Per-phase event table: `(cum_prob, next_phase, is_arrival)`.
    events: Vec<Vec<(f64, usize, bool)>>,
    phase: usize,
}

impl MapSampler {
    /// Builds the sampler, starting from the time-stationary phase with
    /// the given uniform draw deciding the initial phase.
    pub(crate) fn new<R: Rng>(map: &Map, rng: &mut R) -> Self {
        let p = map.phases();
        let mut outflow = vec![0.0; p];
        let mut events = vec![Vec::new(); p];
        for i in 0..p {
            let mut total = 0.0;
            for j in 0..p {
                if i != j {
                    total += map.d0()[(i, j)];
                }
                total += map.d1()[(i, j)];
            }
            outflow[i] = total;
            let mut cum = 0.0;
            for j in 0..p {
                if i != j && map.d0()[(i, j)] > 0.0 {
                    cum += map.d0()[(i, j)] / total;
                    events[i].push((cum, j, false));
                }
            }
            for j in 0..p {
                if map.d1()[(i, j)] > 0.0 {
                    cum += map.d1()[(i, j)] / total;
                    events[i].push((cum, j, true));
                }
            }
            // Guard against round-off at the end of the table.
            if let Some(last) = events[i].last_mut() {
                last.0 = 1.0;
            }
        }
        // Start in the time-stationary phase when computable, else phase 0.
        let phase = match map.phase_stationary() {
            Ok(pi) => {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = 0;
                for (i, &w) in pi.iter().enumerate() {
                    acc += w;
                    if u <= acc {
                        chosen = i;
                        break;
                    }
                }
                chosen
            }
            Err(_) => 0,
        };
        MapSampler {
            outflow,
            events,
            phase,
        }
    }

    /// Draws the time until the next arrival, advancing the phase.
    pub(crate) fn next_interarrival<R: Rng>(&mut self, rng: &mut R) -> f64 {
        let mut elapsed = 0.0;
        loop {
            let rate = self.outflow[self.phase];
            debug_assert!(rate > 0.0, "absorbing MAP phase");
            elapsed += crate::distributions::sample_exp(rng, rate);
            let v: f64 = rng.gen();
            let table = &self.events[self.phase];
            let idx = table
                .iter()
                .position(|&(c, _, _)| v <= c)
                .unwrap_or(table.len() - 1);
            let (_, next, is_arrival) = table[idx];
            self.phase = next;
            if is_arrival {
                return elapsed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_map_sampler_matches_rate() {
        let map = Map::poisson(2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sampler = MapSampler::new(&map, &mut rng);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| sampler.next_interarrival(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean interarrival {mean}");
    }

    #[test]
    fn mmpp_sampler_matches_fundamental_rate() {
        let map = Map::mmpp2(0.5, 0.25, 0.2, 2.0).unwrap();
        let lam = map.rate().unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sampler = MapSampler::new(&map, &mut rng);
        let n = 400_000;
        let total: f64 = (0..n).map(|_| sampler.next_interarrival(&mut rng)).sum();
        let rate = n as f64 / total;
        assert!(
            (rate - lam).abs() / lam < 0.02,
            "sampled rate {rate} vs fundamental {lam}"
        );
    }

    #[test]
    fn mmpp_sampler_is_bursty() {
        // Sample SCV should exceed 1 for a strongly modulated MMPP and
        // match the analytic interarrival SCV roughly.
        let map = Map::mmpp2(0.1, 0.1, 0.1, 3.0).unwrap();
        let analytic = map.interarrival_scv().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sampler = MapSampler::new(&map, &mut rng);
        let n = 400_000;
        let xs: Vec<f64> = (0..n)
            .map(|_| sampler.next_interarrival(&mut rng))
            .collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        let scv = var / (m * m);
        assert!(scv > 1.5, "sampled SCV {scv}");
        assert!(
            (scv - analytic).abs() / analytic < 0.15,
            "{scv} vs {analytic}"
        );
    }
}
