//! Cache-friendly queue state for the simulation hot path.
//!
//! [`Queues`] stores every server's FIFO of arrival timestamps as a ring
//! over one contiguous backing buffer — replacing the seed engine's
//! `Vec<VecDeque<f64>>`, whose per-queue heap blocks scattered the hot
//! data and whose per-arrival reallocation churn dominated small-`N`
//! profiles. Queue lengths are maintained incrementally in a dense
//! `u32` array, so dispatch policies read lengths without the engine
//! materializing a fresh snapshot per arrival.
//!
//! [`Buckets`] groups servers by exact queue length and tracks the
//! minimum occupied length, turning JSQ ("uniform server among the
//! global minima") and JIQ ("uniform idle server, if any") into O(1)
//! lookups instead of O(N) scans. Updates are O(1) swap-removes per
//! enqueue/dequeue; the running minimum moves by at most one level per
//! event, so maintenance is O(1) amortized.

/// Per-server FIFO queues of arrival timestamps over one contiguous
/// arena. Each server owns `cap` slots (a power of two) used as a ring;
/// when any ring fills, the whole arena doubles — O(jobs in system),
/// and geometrically rare.
#[derive(Debug, Clone)]
pub(crate) struct Queues {
    buf: Vec<f64>,
    /// Slots per server; always a power of two.
    cap: usize,
    /// Ring-index mask (`cap - 1`).
    mask: usize,
    /// Ring start offset per server.
    head: Vec<u32>,
    /// Jobs per server — the incrementally maintained length array the
    /// dispatch policies read.
    len: Vec<u32>,
}

impl Queues {
    /// Empty queues for `n` servers.
    pub(crate) fn new(n: usize) -> Self {
        const INITIAL_CAP: usize = 8;
        Queues {
            buf: vec![0.0; n * INITIAL_CAP],
            cap: INITIAL_CAP,
            mask: INITIAL_CAP - 1,
            head: vec![0; n],
            len: vec![0; n],
        }
    }

    /// Number of servers.
    pub(crate) fn servers(&self) -> usize {
        self.len.len()
    }

    /// Queue length of one server.
    #[inline]
    pub(crate) fn len(&self, s: usize) -> u32 {
        self.len[s]
    }

    /// All queue lengths, indexed by server.
    #[inline]
    pub(crate) fn lens(&self) -> &[u32] {
        &self.len
    }

    /// Appends a job (its arrival timestamp) to server `s`.
    #[inline]
    pub(crate) fn push_back(&mut self, s: usize, arrival: f64) {
        if self.len[s] as usize == self.cap {
            self.grow();
        }
        let slot = (self.head[s] as usize + self.len[s] as usize) & self.mask;
        self.buf[s * self.cap + slot] = arrival;
        self.len[s] += 1;
    }

    /// Removes and returns the head-of-line job of server `s`.
    ///
    /// # Panics
    ///
    /// Debug-panics when the queue is empty (the engine only departs
    /// busy servers).
    #[inline]
    pub(crate) fn pop_front(&mut self, s: usize) -> f64 {
        debug_assert!(self.len[s] > 0, "departure from empty queue");
        let v = self.buf[s * self.cap + self.head[s] as usize];
        self.head[s] = (self.head[s] + 1) & self.mask as u32;
        self.len[s] -= 1;
        v
    }

    /// Arrival timestamp of the head-of-line job of server `s`.
    #[inline]
    pub(crate) fn front(&self, s: usize) -> f64 {
        debug_assert!(self.len[s] > 0, "peek into empty queue");
        self.buf[s * self.cap + self.head[s] as usize]
    }

    /// Doubles every ring, compacting each server's jobs to the start of
    /// its new segment.
    fn grow(&mut self) {
        let n = self.servers();
        let new_cap = self.cap * 2;
        let mut buf = vec![0.0; n * new_cap];
        for s in 0..n {
            for k in 0..self.len[s] as usize {
                let slot = (self.head[s] as usize + k) & self.mask;
                buf[s * new_cap + k] = self.buf[s * self.cap + slot];
            }
            self.head[s] = 0;
        }
        self.buf = buf;
        self.cap = new_cap;
        self.mask = new_cap - 1;
    }
}

/// Servers grouped by exact queue length, with the minimum occupied
/// length maintained incrementally — the feedback structure behind the
/// O(1) JSQ and JIQ dispatch paths.
#[derive(Debug, Clone, Default)]
pub(crate) struct Buckets {
    /// `by_len[l]` = servers currently holding exactly `l` jobs.
    by_len: Vec<Vec<u32>>,
    /// Position of each server inside its current bucket.
    pos: Vec<u32>,
    /// Smallest `l` with `by_len[l]` non-empty.
    min_len: usize,
}

impl Buckets {
    /// All `n` servers start idle (length 0).
    pub(crate) fn new(n: usize) -> Self {
        Buckets {
            by_len: vec![(0..n as u32).collect()],
            pos: (0..n as u32).collect(),
            min_len: 0,
        }
    }

    /// Rebuilds from an explicit length array (tests and ad-hoc use).
    #[cfg(test)]
    pub(crate) fn from_lens(lens: &[u32]) -> Self {
        let mut b = Buckets::new(lens.len());
        for (s, &l) in lens.iter().enumerate() {
            for k in 0..l {
                b.on_push(s, k);
            }
        }
        b
    }

    /// Smallest occupied queue length.
    #[cfg(test)]
    pub(crate) fn min_len(&self) -> usize {
        self.min_len
    }

    /// Servers at the smallest occupied queue length (never empty).
    #[inline]
    pub(crate) fn shortest(&self) -> &[u32] {
        &self.by_len[self.min_len]
    }

    /// Servers that are idle; empty when every server is busy.
    #[inline]
    pub(crate) fn idle(&self) -> &[u32] {
        if self.min_len == 0 {
            &self.by_len[0]
        } else {
            &[]
        }
    }

    /// Moves server `s` from length `old_len` to `old_len + 1`.
    #[inline]
    pub(crate) fn on_push(&mut self, s: usize, old_len: u32) {
        self.remove(s, old_len as usize);
        self.insert(s, old_len as usize + 1);
        if self.min_len == old_len as usize && self.by_len[self.min_len].is_empty() {
            self.min_len += 1;
        }
    }

    /// Moves server `s` from length `old_len` to `old_len - 1`.
    #[inline]
    pub(crate) fn on_pop(&mut self, s: usize, old_len: u32) {
        debug_assert!(old_len > 0);
        self.remove(s, old_len as usize);
        let new_len = old_len as usize - 1;
        self.insert(s, new_len);
        if new_len < self.min_len {
            self.min_len = new_len;
        }
    }

    #[inline]
    fn remove(&mut self, s: usize, l: usize) {
        let p = self.pos[s] as usize;
        let bucket = &mut self.by_len[l];
        debug_assert_eq!(bucket[p], s as u32, "bucket position out of sync");
        let last = bucket.pop().expect("server was in its bucket");
        if p < bucket.len() {
            bucket[p] = last;
            self.pos[last as usize] = p as u32;
        }
    }

    #[inline]
    fn insert(&mut self, s: usize, l: usize) {
        if self.by_len.len() <= l {
            self.by_len.resize_with(l + 1, Vec::new);
        }
        self.pos[s] = self.by_len[l].len() as u32;
        self.by_len[l].push(s as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fifo_order_survives_growth() {
        let mut q = Queues::new(2);
        // Push enough through one server to force several growths while
        // interleaving pops, so heads are mid-ring when growth happens.
        let mut expect = std::collections::VecDeque::new();
        let mut t = 0.0;
        for round in 0..100 {
            for _ in 0..7 {
                t += 1.0;
                q.push_back(0, t);
                expect.push_back(t);
            }
            for _ in 0..(if round % 3 == 0 { 2 } else { 5 }) {
                if let Some(e) = expect.pop_front() {
                    assert_eq!(q.front(0), e);
                    assert_eq!(q.pop_front(0), e);
                }
            }
            assert_eq!(q.len(0), expect.len() as u32);
            assert_eq!(q.len(1), 0, "server 1 untouched");
        }
        while let Some(e) = expect.pop_front() {
            assert_eq!(q.pop_front(0), e);
        }
    }

    #[test]
    fn lens_track_incrementally() {
        let mut q = Queues::new(3);
        q.push_back(1, 0.5);
        q.push_back(1, 0.7);
        q.push_back(2, 0.9);
        assert_eq!(q.lens(), &[0, 2, 1]);
        q.pop_front(1);
        assert_eq!(q.lens(), &[0, 1, 1]);
    }

    #[test]
    fn buckets_track_min_and_membership() {
        let mut b = Buckets::new(4);
        assert_eq!(b.min_len(), 0);
        assert_eq!(b.idle().len(), 4);
        // Push one job on everyone: min moves to 1, no idle servers.
        for s in 0..4 {
            b.on_push(s, 0);
        }
        assert_eq!(b.min_len(), 1);
        assert!(b.idle().is_empty());
        assert_eq!(b.shortest().len(), 4);
        // Second job on server 2, then a departure from server 0.
        b.on_push(2, 1);
        assert_eq!(b.shortest().len(), 3);
        b.on_pop(0, 1);
        assert_eq!(b.min_len(), 0);
        assert_eq!(b.idle(), &[0]);
    }

    #[test]
    fn buckets_from_lens_matches_incremental() {
        let lens = [3u32, 0, 1, 1, 5];
        let b = Buckets::from_lens(&lens);
        assert_eq!(b.min_len(), 0);
        assert_eq!(b.idle(), &[1]);
        let mut shortest = b.shortest().to_vec();
        shortest.sort_unstable();
        assert_eq!(shortest, vec![1]);
    }
}
