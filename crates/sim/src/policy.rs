//! Dispatch policies: how the central dispatcher picks a server.

use rand::Rng;

/// A dispatch policy for the central dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniform random server — SQ(1); no feedback from the servers.
    Random,
    /// The paper's SQ(d): poll `d` distinct servers uniformly at random,
    /// join the one with the fewest jobs; ties broken uniformly among the
    /// polled minima.
    SqD {
        /// Number of polled servers (`1 ≤ d ≤ N`).
        d: usize,
    },
    /// Mitzenmacher's original variant: `d` independent uniform polls,
    /// duplicates allowed (`d ≥ 1`, may exceed `N`).
    SqDReplace {
        /// Number of polls.
        d: usize,
    },
    /// Join the shortest queue among all servers (SQ(N)); maximal feedback.
    Jsq,
    /// Cyclic assignment; no feedback, but deterministic balance.
    RoundRobin,
    /// Join-Idle-Queue (Lu et al.): join a uniformly random *idle* server
    /// if one exists, otherwise a uniformly random server. Near-JSQ delay
    /// at low/moderate load with O(1) dispatch-time feedback (idleness
    /// can be reported asynchronously by the servers).
    Jiq,
    /// SQ(d) with one unit of memory (Mitzenmacher–Prabhakar–Shah): the
    /// best *unused* sample from the previous poll joins the next
    /// comparison, strictly improving on plain SQ(d) at equal poll cost.
    SqDMemory {
        /// Number of fresh polls per arrival (`1 ≤ d ≤ N`).
        d: usize,
    },
}

impl Policy {
    /// Feedback cost of one dispatch decision: how many servers must
    /// report their queue length (the overhead axis of the paper's
    /// trade-off).
    pub fn poll_cost(&self, n: usize) -> usize {
        match *self {
            Policy::Random | Policy::RoundRobin | Policy::Jiq => 0,
            Policy::SqD { d } | Policy::SqDReplace { d } | Policy::SqDMemory { d } => d,
            Policy::Jsq => n,
        }
    }

    /// Validates the policy against the number of servers.
    pub fn is_valid(&self, n: usize) -> bool {
        match *self {
            Policy::SqD { d } | Policy::SqDMemory { d } => (1..=n).contains(&d),
            Policy::SqDReplace { d } => d >= 1,
            _ => n >= 1,
        }
    }
}

/// Runtime dispatcher state (round-robin needs a cursor; SQ(d) needs a
/// scratch permutation buffer to sample without replacement in O(d)).
#[derive(Debug, Clone)]
pub(crate) struct Dispatcher {
    policy: Policy,
    rr_next: usize,
    scratch: Vec<usize>,
    /// SQ(d)-with-memory: the retained server from the previous poll.
    memory: Option<usize>,
    /// Reusable candidate buffer for SQ(d)-with-memory dispatches.
    cand_buf: Vec<usize>,
}

impl Dispatcher {
    pub(crate) fn new(policy: Policy, n: usize) -> Self {
        Dispatcher {
            policy,
            rr_next: 0,
            scratch: (0..n).collect(),
            memory: None,
            cand_buf: Vec::with_capacity(n + 1),
        }
    }

    /// Picks the server for the next arrival given current queue lengths.
    pub(crate) fn dispatch<R: Rng>(&mut self, rng: &mut R, queues: &[u32]) -> usize {
        let n = queues.len();
        match self.policy {
            Policy::Random => rng.gen_range(0..n),
            Policy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                s
            }
            Policy::Jsq => {
                // Uniform tie breaking via reservoir over minima.
                let mut best = 0usize;
                let mut best_q = u32::MAX;
                let mut ties = 0u32;
                for (i, &q) in queues.iter().enumerate() {
                    if q < best_q {
                        best_q = q;
                        best = i;
                        ties = 1;
                    } else if q == best_q {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = i;
                        }
                    }
                }
                best
            }
            Policy::SqD { d } => {
                // Partial Fisher–Yates: the first d entries of `scratch`
                // become a uniform d-subset without replacement.
                for i in 0..d {
                    let j = rng.gen_range(i..n);
                    self.scratch.swap(i, j);
                }
                let mut best = self.scratch[0];
                let mut best_q = queues[best];
                let mut ties = 1u32;
                for &s in &self.scratch[1..d] {
                    let q = queues[s];
                    if q < best_q {
                        best_q = q;
                        best = s;
                        ties = 1;
                    } else if q == best_q {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = s;
                        }
                    }
                }
                best
            }
            Policy::SqDReplace { d } => {
                let mut best = rng.gen_range(0..n);
                let mut best_q = queues[best];
                let mut ties = 1u32;
                for _ in 1..d {
                    let s = rng.gen_range(0..n);
                    let q = queues[s];
                    if q < best_q {
                        best_q = q;
                        best = s;
                        ties = 1;
                    } else if q == best_q && s != best {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = s;
                        }
                    }
                }
                best
            }
            Policy::Jiq => {
                // Reservoir-sample a uniform idle server in one pass.
                let mut pick = None;
                let mut idle = 0u32;
                for (i, &q) in queues.iter().enumerate() {
                    if q == 0 {
                        idle += 1;
                        if rng.gen_range(0..idle) == 0 {
                            pick = Some(i);
                        }
                    }
                }
                pick.unwrap_or_else(|| rng.gen_range(0..n))
            }
            Policy::SqDMemory { d } => {
                // Fresh d-subset without replacement, plus the remembered
                // server (if distinct) as an extra candidate.
                for i in 0..d {
                    let j = rng.gen_range(i..n);
                    self.scratch.swap(i, j);
                }
                self.cand_buf.clear();
                self.cand_buf.extend_from_slice(&self.scratch[..d]);
                if let Some(m) = self.memory {
                    if !self.cand_buf.contains(&m) {
                        self.cand_buf.push(m);
                    }
                }
                let mut best = self.cand_buf[0];
                let mut best_q = queues[best];
                let mut ties = 1u32;
                for &s in &self.cand_buf[1..] {
                    let q = queues[s];
                    if q < best_q {
                        best_q = q;
                        best = s;
                        ties = 1;
                    } else if q == best_q {
                        ties += 1;
                        if rng.gen_range(0..ties) == 0 {
                            best = s;
                        }
                    }
                }
                // MPS rule: remember the candidate with the smallest
                // *post-dispatch* length (the chosen one counts as q + 1),
                // bootstrapping the memory even at d = 1.
                let mut mem = best;
                let mut mem_q = best_q + 1;
                for &s in &self.cand_buf {
                    let q = if s == best { queues[s] + 1 } else { queues[s] };
                    if q < mem_q {
                        mem_q = q;
                        mem = s;
                    }
                }
                self.memory = Some(mem);
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poll_costs() {
        assert_eq!(Policy::Random.poll_cost(10), 0);
        assert_eq!(Policy::SqD { d: 3 }.poll_cost(10), 3);
        assert_eq!(Policy::Jsq.poll_cost(10), 10);
        assert_eq!(Policy::RoundRobin.poll_cost(10), 0);
    }

    #[test]
    fn validity() {
        assert!(Policy::SqD { d: 2 }.is_valid(3));
        assert!(!Policy::SqD { d: 4 }.is_valid(3));
        assert!(!Policy::SqD { d: 0 }.is_valid(3));
        assert!(Policy::Jsq.is_valid(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = Dispatcher::new(Policy::RoundRobin, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        let qs = [0u32, 0, 0];
        let picks: Vec<usize> = (0..6).map(|_| d.dispatch(&mut rng, &qs)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_minimum() {
        let mut d = Dispatcher::new(Policy::Jsq, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(d.dispatch(&mut rng, &[3, 1, 2, 5]), 1);
    }

    #[test]
    fn jsq_breaks_ties_uniformly() {
        let mut d = Dispatcher::new(Policy::Jsq, 3);
        let mut rng = SmallRng::seed_from_u64(123);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[d.dispatch(&mut rng, &[2, 2, 2])] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn sqd_picks_min_of_sample() {
        // With d = N, SQ(d) must behave exactly like JSQ.
        let mut d = Dispatcher::new(Policy::SqD { d: 4 }, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let qs = [4u32, 0, 3, 2];
            assert_eq!(d.dispatch(&mut rng, &qs), 1);
        }
    }

    #[test]
    fn sqd_samples_without_replacement() {
        // d = 2 on 2 servers: both are always polled, so the shorter queue
        // always wins — distinguishable from with-replacement sampling,
        // which would sometimes poll the longer twice.
        let mut d = Dispatcher::new(Policy::SqD { d: 2 }, 2);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(d.dispatch(&mut rng, &[7, 2]), 1);
        }
    }

    #[test]
    fn sqd_replace_picks_min_of_polls() {
        // d large relative to N: with replacement, the minimum is found
        // with overwhelming probability.
        let mut d = Dispatcher::new(Policy::SqDReplace { d: 64 }, 3);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(d.dispatch(&mut rng, &[5, 3, 1]), 2);
        }
    }

    #[test]
    fn sqd_replace_duplicates_hurt() {
        // With d = 2 on N = 2, sampling WITH replacement sometimes polls
        // the same (longer) server twice and misses the shorter queue —
        // distinguishing it from without-replacement, which never does.
        let mut d = Dispatcher::new(Policy::SqDReplace { d: 2 }, 2);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut wrong = 0;
        let trials = 40_000;
        for _ in 0..trials {
            if d.dispatch(&mut rng, &[7, 2]) == 0 {
                wrong += 1;
            }
        }
        // P(both polls hit server 0) = 1/4.
        let frac = wrong as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "wrong-pick fraction {frac}");
    }

    #[test]
    fn jiq_prefers_idle_servers() {
        let mut d = Dispatcher::new(Policy::Jiq, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        // Exactly one idle server: always chosen.
        for _ in 0..100 {
            assert_eq!(d.dispatch(&mut rng, &[2, 3, 0, 1]), 2);
        }
        // Several idle: uniform among them, never the busy ones.
        let mut counts = [0usize; 4];
        for _ in 0..30_000 {
            counts[d.dispatch(&mut rng, &[0, 5, 0, 0])] += 1;
        }
        assert_eq!(counts[1], 0);
        for &i in &[0usize, 2, 3] {
            assert!(
                (counts[i] as f64 / 10_000.0 - 1.0).abs() < 0.05,
                "{counts:?}"
            );
        }
        // No idle server: uniform over all.
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[d.dispatch(&mut rng, &[1, 2, 3, 4])] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.06, "{counts:?}");
        }
    }

    #[test]
    fn memory_includes_remembered_server() {
        // d = 1 with memory: after polling server A (loaded) the memory
        // holds nothing; but after a poll that sees two candidates the
        // unused one is remembered and compared next time. With d = 1 on
        // 2 servers the memory effectively upgrades it toward d = 2.
        let mut with_mem = Dispatcher::new(Policy::SqDMemory { d: 1 }, 2);
        let mut plain = Dispatcher::new(Policy::SqD { d: 1 }, 2);
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(9);
        let qs = [6u32, 0];
        let (mut mem_right, mut plain_right) = (0, 0);
        for _ in 0..20_000 {
            if with_mem.dispatch(&mut rng1, &qs) == 1 {
                mem_right += 1;
            }
            if plain.dispatch(&mut rng2, &qs) == 1 {
                plain_right += 1;
            }
        }
        // Plain d = 1 is 50/50; memory should route to the short queue
        // substantially more often.
        assert!((plain_right as f64 / 20_000.0 - 0.5).abs() < 0.02);
        assert!(
            mem_right as f64 / 20_000.0 > 0.65,
            "memory hit rate {}",
            mem_right as f64 / 20_000.0
        );
    }

    #[test]
    fn new_policy_validity_and_cost() {
        assert!(Policy::Jiq.is_valid(1));
        assert_eq!(Policy::Jiq.poll_cost(10), 0);
        assert!(Policy::SqDMemory { d: 2 }.is_valid(3));
        assert!(!Policy::SqDMemory { d: 4 }.is_valid(3));
        assert_eq!(Policy::SqDMemory { d: 2 }.poll_cost(10), 2);
    }

    #[test]
    fn sqd_polls_uniformly() {
        // With equal queues, SQ(2) must choose each server with equal
        // probability.
        let n = 5;
        let mut d = Dispatcher::new(Policy::SqD { d: 2 }, n);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut counts = vec![0usize; n];
        let trials = 50_000;
        for _ in 0..trials {
            counts[d.dispatch(&mut rng, &[1, 1, 1, 1, 1])] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 / expect - 1.0).abs() < 0.06, "{counts:?}");
        }
    }
}
