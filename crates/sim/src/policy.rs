//! Dispatch policies: how the central dispatcher picks a server.
//!
//! [`Policy`] is the user-facing configuration enum; at run start the
//! engine lowers it into one of the per-policy state structs below and
//! monomorphizes its event loop over that struct (via [`DispatchCore`]),
//! so the hot path carries no per-event `match` on the policy.
//!
//! Policies read queue lengths from the engine's incrementally
//! maintained length array; the feedback-heavy policies (JSQ, JIQ)
//! additionally read the per-length server buckets
//! ([`crate::queue::Buckets`]), which turns their dispatch decision
//! from an O(N) scan into an O(1) lookup.

use rand::Rng;

use crate::queue::Buckets;

/// A dispatch policy for the central dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniform random server — SQ(1); no feedback from the servers.
    Random,
    /// The paper's SQ(d): poll `d` distinct servers uniformly at random,
    /// join the one with the fewest jobs; ties broken uniformly among the
    /// polled minima.
    SqD {
        /// Number of polled servers (`1 ≤ d ≤ N`).
        d: usize,
    },
    /// Mitzenmacher's original variant: `d` independent uniform polls,
    /// duplicates allowed (`d ≥ 1`, may exceed `N`).
    SqDReplace {
        /// Number of polls.
        d: usize,
    },
    /// Join the shortest queue among all servers (SQ(N)); maximal feedback.
    Jsq,
    /// Cyclic assignment; no feedback, but deterministic balance.
    RoundRobin,
    /// Join-Idle-Queue (Lu et al.): join a uniformly random *idle* server
    /// if one exists, otherwise a uniformly random server. Near-JSQ delay
    /// at low/moderate load with O(1) dispatch-time feedback (idleness
    /// can be reported asynchronously by the servers).
    Jiq,
    /// SQ(d) with one unit of memory (Mitzenmacher–Prabhakar–Shah): the
    /// best *unused* sample from the previous poll joins the next
    /// comparison, strictly improving on plain SQ(d) at equal poll cost.
    SqDMemory {
        /// Number of fresh polls per arrival (`1 ≤ d ≤ N`).
        d: usize,
    },
}

impl Policy {
    /// Feedback cost of one dispatch decision: how many servers must
    /// report their queue length (the overhead axis of the paper's
    /// trade-off).
    pub fn poll_cost(&self, n: usize) -> usize {
        match *self {
            Policy::Random | Policy::RoundRobin | Policy::Jiq => 0,
            Policy::SqD { d } | Policy::SqDReplace { d } | Policy::SqDMemory { d } => d,
            Policy::Jsq => n,
        }
    }

    /// Validates the policy against the number of servers.
    pub fn is_valid(&self, n: usize) -> bool {
        match *self {
            Policy::SqD { d } | Policy::SqDMemory { d } => (1..=n).contains(&d),
            Policy::SqDReplace { d } => d >= 1,
            _ => n >= 1,
        }
    }
}

/// The monomorphization hook of the event loop: one dispatch decision,
/// given the current queue lengths and (when [`Self::NEEDS_BUCKETS`])
/// the per-length server buckets.
pub(crate) trait DispatchCore {
    /// Whether the engine must maintain [`Buckets`] for this policy.
    /// `false` makes the bucket bookkeeping compile out of the
    /// monomorphized loop entirely.
    const NEEDS_BUCKETS: bool;

    /// Picks the server for the next arrival.
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], buckets: &Buckets) -> usize;
}

/// Uniform random dispatch (SQ(1)).
#[derive(Debug, Clone)]
pub(crate) struct RandomCore;

impl DispatchCore for RandomCore {
    const NEEDS_BUCKETS: bool = false;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], _: &Buckets) -> usize {
        rng.gen_range(0..lens.len())
    }
}

/// Cyclic dispatch.
#[derive(Debug, Clone)]
pub(crate) struct RoundRobinCore {
    next: usize,
}

impl DispatchCore for RoundRobinCore {
    const NEEDS_BUCKETS: bool = false;

    #[inline]
    fn pick<R: Rng>(&mut self, _: &mut R, lens: &[u32], _: &Buckets) -> usize {
        let s = self.next;
        self.next = (self.next + 1) % lens.len();
        s
    }
}

/// Picks uniformly from a non-empty candidate slice, spending a random
/// draw only when there is an actual choice to make.
#[inline]
fn uniform_pick<R: Rng>(rng: &mut R, candidates: &[u32]) -> usize {
    debug_assert!(!candidates.is_empty());
    if candidates.len() == 1 {
        candidates[0] as usize
    } else {
        candidates[rng.gen_range(0..candidates.len())] as usize
    }
}

/// JSQ via the minimum-length bucket: O(1) per dispatch, uniform among
/// the global minima exactly as the seed engine's reservoir scan, but
/// without touching all `N` queue lengths.
#[derive(Debug, Clone)]
pub(crate) struct JsqCore;

impl DispatchCore for JsqCore {
    const NEEDS_BUCKETS: bool = true;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, _: &[u32], buckets: &Buckets) -> usize {
        uniform_pick(rng, buckets.shortest())
    }
}

/// JIQ via the idle bucket: O(1) per dispatch.
#[derive(Debug, Clone)]
pub(crate) struct JiqCore;

impl DispatchCore for JiqCore {
    const NEEDS_BUCKETS: bool = true;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], buckets: &Buckets) -> usize {
        let idle = buckets.idle();
        if idle.is_empty() {
            rng.gen_range(0..lens.len())
        } else {
            uniform_pick(rng, idle)
        }
    }
}

/// SQ(d) without replacement: partial Fisher–Yates over a persistent
/// permutation buffer, O(d) per dispatch.
#[derive(Debug, Clone)]
pub(crate) struct SqdCore {
    d: usize,
    scratch: Vec<usize>,
}

impl SqdCore {
    /// The first `d` entries of `scratch` become a uniform `d`-subset
    /// without replacement.
    #[inline]
    fn shuffle_prefix<R: Rng>(&mut self, rng: &mut R) {
        let n = self.scratch.len();
        for i in 0..self.d {
            let j = rng.gen_range(i..n);
            self.scratch.swap(i, j);
        }
    }
}

/// Scans `candidates` for the minimum queue length, breaking ties
/// uniformly at random by reservoir sampling.
#[inline]
fn min_of_candidates<R: Rng>(rng: &mut R, lens: &[u32], candidates: &[usize]) -> (usize, u32) {
    let mut best = candidates[0];
    let mut best_q = lens[best];
    let mut ties = 1u32;
    for &s in &candidates[1..] {
        let q = lens[s];
        if q < best_q {
            best_q = q;
            best = s;
            ties = 1;
        } else if q == best_q {
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best = s;
            }
        }
    }
    (best, best_q)
}

impl DispatchCore for SqdCore {
    const NEEDS_BUCKETS: bool = false;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], _: &Buckets) -> usize {
        // d = 2 — the paper's headline policy and the hot benchmark
        // path — skips the permutation buffer: two draws give a uniform
        // distinct pair directly (second drawn from the n−1 remaining
        // slots), same draw count as the Fisher–Yates prefix.
        if self.d == 2 && lens.len() > 1 {
            let a = rng.gen_range(0..lens.len());
            let mut b = rng.gen_range(0..lens.len() - 1);
            if b >= a {
                b += 1;
            }
            let (qa, qb) = (lens[a], lens[b]);
            return if qb < qa || (qb == qa && rng.gen_range(0..2u32) == 0) {
                b
            } else {
                a
            };
        }
        self.shuffle_prefix(rng);
        min_of_candidates(rng, lens, &self.scratch[..self.d]).0
    }
}

/// SQ(d) with replacement: `d` independent polls.
#[derive(Debug, Clone)]
pub(crate) struct SqdReplaceCore {
    d: usize,
}

impl DispatchCore for SqdReplaceCore {
    const NEEDS_BUCKETS: bool = false;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], _: &Buckets) -> usize {
        let n = lens.len();
        let mut best = rng.gen_range(0..n);
        let mut best_q = lens[best];
        let mut ties = 1u32;
        for _ in 1..self.d {
            let s = rng.gen_range(0..n);
            let q = lens[s];
            if q < best_q {
                best_q = q;
                best = s;
                ties = 1;
            } else if q == best_q && s != best {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = s;
                }
            }
        }
        best
    }
}

/// SQ(d) with one unit of memory.
#[derive(Debug, Clone)]
pub(crate) struct SqdMemoryCore {
    sqd: SqdCore,
    /// The retained server from the previous poll.
    memory: Option<usize>,
    /// Reusable candidate buffer (fresh polls plus the memory).
    cand_buf: Vec<usize>,
}

impl DispatchCore for SqdMemoryCore {
    const NEEDS_BUCKETS: bool = false;

    #[inline]
    fn pick<R: Rng>(&mut self, rng: &mut R, lens: &[u32], _: &Buckets) -> usize {
        // Fresh d-subset without replacement, plus the remembered server
        // (if distinct) as an extra candidate.
        self.sqd.shuffle_prefix(rng);
        self.cand_buf.clear();
        self.cand_buf
            .extend_from_slice(&self.sqd.scratch[..self.sqd.d]);
        if let Some(m) = self.memory {
            if !self.cand_buf.contains(&m) {
                self.cand_buf.push(m);
            }
        }
        let (best, best_q) = min_of_candidates(rng, lens, &self.cand_buf);
        // MPS rule: remember the candidate with the smallest
        // *post-dispatch* length (the chosen one counts as q + 1),
        // bootstrapping the memory even at d = 1.
        let mut mem = best;
        let mut mem_q = best_q + 1;
        for &s in &self.cand_buf {
            let q = if s == best { lens[s] + 1 } else { lens[s] };
            if q < mem_q {
                mem_q = q;
                mem = s;
            }
        }
        self.memory = Some(mem);
        best
    }
}

/// The lowered policy state the engine drives; each variant is one
/// monomorphized event loop.
#[derive(Debug, Clone)]
pub(crate) enum PolicyCore {
    Random(RandomCore),
    RoundRobin(RoundRobinCore),
    Jsq(JsqCore),
    Jiq(JiqCore),
    SqD(SqdCore),
    SqDReplace(SqdReplaceCore),
    SqDMemory(SqdMemoryCore),
}

impl PolicyCore {
    pub(crate) fn new(policy: Policy, n: usize) -> Self {
        let sqd = |d: usize| SqdCore {
            d,
            scratch: (0..n).collect(),
        };
        match policy {
            Policy::Random => PolicyCore::Random(RandomCore),
            Policy::RoundRobin => PolicyCore::RoundRobin(RoundRobinCore { next: 0 }),
            Policy::Jsq => PolicyCore::Jsq(JsqCore),
            Policy::Jiq => PolicyCore::Jiq(JiqCore),
            Policy::SqD { d } => PolicyCore::SqD(sqd(d)),
            Policy::SqDReplace { d } => PolicyCore::SqDReplace(SqdReplaceCore { d }),
            Policy::SqDMemory { d } => PolicyCore::SqDMemory(SqdMemoryCore {
                sqd: sqd(d),
                memory: None,
                cand_buf: Vec::with_capacity(n + 1),
            }),
        }
    }

    /// Whether the engine must maintain [`Buckets`] for the lowered
    /// policy — each variant's own [`DispatchCore::NEEDS_BUCKETS`], so
    /// this cannot drift from what `pick` actually reads.
    pub(crate) fn needs_buckets(&self) -> bool {
        match self {
            PolicyCore::Random(_) => RandomCore::NEEDS_BUCKETS,
            PolicyCore::RoundRobin(_) => RoundRobinCore::NEEDS_BUCKETS,
            PolicyCore::Jsq(_) => JsqCore::NEEDS_BUCKETS,
            PolicyCore::Jiq(_) => JiqCore::NEEDS_BUCKETS,
            PolicyCore::SqD(_) => SqdCore::NEEDS_BUCKETS,
            PolicyCore::SqDReplace(_) => SqdReplaceCore::NEEDS_BUCKETS,
            PolicyCore::SqDMemory(_) => SqdMemoryCore::NEEDS_BUCKETS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drives one dispatch against an explicit length vector, building
    /// the buckets the feedback policies read.
    fn pick<P: DispatchCore>(p: &mut P, rng: &mut SmallRng, lens: &[u32]) -> usize {
        let buckets = if P::NEEDS_BUCKETS {
            Buckets::from_lens(lens)
        } else {
            Buckets::default()
        };
        p.pick(rng, lens, &buckets)
    }

    #[test]
    fn poll_costs() {
        assert_eq!(Policy::Random.poll_cost(10), 0);
        assert_eq!(Policy::SqD { d: 3 }.poll_cost(10), 3);
        assert_eq!(Policy::Jsq.poll_cost(10), 10);
        assert_eq!(Policy::RoundRobin.poll_cost(10), 0);
    }

    #[test]
    fn validity() {
        assert!(Policy::SqD { d: 2 }.is_valid(3));
        assert!(!Policy::SqD { d: 4 }.is_valid(3));
        assert!(!Policy::SqD { d: 0 }.is_valid(3));
        assert!(Policy::Jsq.is_valid(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = RoundRobinCore { next: 0 };
        let mut rng = SmallRng::seed_from_u64(0);
        let qs = [0u32, 0, 0];
        let picks: Vec<usize> = (0..6).map(|_| pick(&mut d, &mut rng, &qs)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn jsq_picks_minimum() {
        let mut d = JsqCore;
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(pick(&mut d, &mut rng, &[3, 1, 2, 5]), 1);
    }

    #[test]
    fn jsq_breaks_ties_uniformly() {
        let mut d = JsqCore;
        let mut rng = SmallRng::seed_from_u64(123);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[pick(&mut d, &mut rng, &[2, 2, 2])] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn sqd_picks_min_of_sample() {
        // With d = N, SQ(d) must behave exactly like JSQ.
        let mut d = SqdCore {
            d: 4,
            scratch: (0..4).collect(),
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let qs = [4u32, 0, 3, 2];
            assert_eq!(pick(&mut d, &mut rng, &qs), 1);
        }
    }

    #[test]
    fn sqd_samples_without_replacement() {
        // d = 2 on 2 servers: both are always polled, so the shorter queue
        // always wins — distinguishable from with-replacement sampling,
        // which would sometimes poll the longer twice.
        let mut d = SqdCore {
            d: 2,
            scratch: (0..2).collect(),
        };
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(pick(&mut d, &mut rng, &[7, 2]), 1);
        }
    }

    #[test]
    fn sqd_replace_picks_min_of_polls() {
        // d large relative to N: with replacement, the minimum is found
        // with overwhelming probability.
        let mut d = SqdReplaceCore { d: 64 };
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(pick(&mut d, &mut rng, &[5, 3, 1]), 2);
        }
    }

    #[test]
    fn sqd_replace_duplicates_hurt() {
        // With d = 2 on N = 2, sampling WITH replacement sometimes polls
        // the same (longer) server twice and misses the shorter queue —
        // distinguishing it from without-replacement, which never does.
        let mut d = SqdReplaceCore { d: 2 };
        let mut rng = SmallRng::seed_from_u64(8);
        let mut wrong = 0;
        let trials = 40_000;
        for _ in 0..trials {
            if pick(&mut d, &mut rng, &[7, 2]) == 0 {
                wrong += 1;
            }
        }
        // P(both polls hit server 0) = 1/4.
        let frac = wrong as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "wrong-pick fraction {frac}");
    }

    #[test]
    fn jiq_prefers_idle_servers() {
        let mut d = JiqCore;
        let mut rng = SmallRng::seed_from_u64(3);
        // Exactly one idle server: always chosen.
        for _ in 0..100 {
            assert_eq!(pick(&mut d, &mut rng, &[2, 3, 0, 1]), 2);
        }
        // Several idle: uniform among them, never the busy ones.
        let mut counts = [0usize; 4];
        for _ in 0..30_000 {
            counts[pick(&mut d, &mut rng, &[0, 5, 0, 0])] += 1;
        }
        assert_eq!(counts[1], 0);
        for &i in &[0usize, 2, 3] {
            assert!(
                (counts[i] as f64 / 10_000.0 - 1.0).abs() < 0.05,
                "{counts:?}"
            );
        }
        // No idle server: uniform over all.
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[pick(&mut d, &mut rng, &[1, 2, 3, 4])] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.06, "{counts:?}");
        }
    }

    #[test]
    fn memory_includes_remembered_server() {
        // d = 1 with memory: after a poll that sees two candidates the
        // unused one is remembered and compared next time, so on 2
        // servers memory effectively upgrades d = 1 toward d = 2.
        let mut with_mem = match PolicyCore::new(Policy::SqDMemory { d: 1 }, 2) {
            PolicyCore::SqDMemory(p) => p,
            other => panic!("unexpected lowering {other:?}"),
        };
        let mut plain = SqdCore {
            d: 1,
            scratch: (0..2).collect(),
        };
        let mut rng1 = SmallRng::seed_from_u64(9);
        let mut rng2 = SmallRng::seed_from_u64(9);
        let qs = [6u32, 0];
        let (mut mem_right, mut plain_right) = (0, 0);
        for _ in 0..20_000 {
            if pick(&mut with_mem, &mut rng1, &qs) == 1 {
                mem_right += 1;
            }
            if pick(&mut plain, &mut rng2, &qs) == 1 {
                plain_right += 1;
            }
        }
        // Plain d = 1 is 50/50; memory should route to the short queue
        // substantially more often.
        assert!((plain_right as f64 / 20_000.0 - 0.5).abs() < 0.02);
        assert!(
            mem_right as f64 / 20_000.0 > 0.65,
            "memory hit rate {}",
            mem_right as f64 / 20_000.0
        );
    }

    #[test]
    fn new_policy_validity_and_cost() {
        assert!(Policy::Jiq.is_valid(1));
        assert_eq!(Policy::Jiq.poll_cost(10), 0);
        assert!(Policy::SqDMemory { d: 2 }.is_valid(3));
        assert!(!Policy::SqDMemory { d: 4 }.is_valid(3));
        assert_eq!(Policy::SqDMemory { d: 2 }.poll_cost(10), 2);
    }

    #[test]
    fn sqd_polls_uniformly() {
        // With equal queues, SQ(2) must choose each server with equal
        // probability.
        let n = 5;
        let mut d = SqdCore {
            d: 2,
            scratch: (0..n).collect(),
        };
        let mut rng = SmallRng::seed_from_u64(17);
        let mut counts = vec![0usize; n];
        let trials = 50_000;
        for _ in 0..trials {
            counts[pick(&mut d, &mut rng, &[1, 1, 1, 1, 1])] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 / expect - 1.0).abs() < 0.06, "{counts:?}");
        }
    }
}
