//! # slb-sim
//!
//! Discrete-event simulator for parallel-server randomized load balancing
//! — the simulation side of *Godtschalk & Ciucu, ICDCS 2016* (Figures 9
//! and 10).
//!
//! The simulated system matches Section II of the paper: `N` FIFO servers,
//! a central dispatcher, Poisson (or renewal) arrivals of total rate `λN`,
//! and i.i.d. service times (exponential with unit mean by default; other
//! laws provided as the extension the paper's conclusion anticipates).
//! Dispatch policies:
//!
//! * [`Policy::Random`] — uniform random server (SQ(1));
//! * [`Policy::SqD`] — poll `d` servers without replacement, join the
//!   shortest (ties uniformly at random, as in the paper);
//! * [`Policy::Jsq`] — join the shortest of all queues (SQ(N));
//! * [`Policy::RoundRobin`] — cyclic assignment (a classical no-feedback
//!   baseline).
//!
//! Statistics follow the paper's methodology: a warm-up prefix of jobs is
//! discarded, and the mean sojourn time over the remainder is reported
//! with a batch-means 95% confidence interval.
//!
//! Independent replications can run in parallel:
//! [`SimConfig::run_parallel`] derives one deterministic seed per
//! replication (splitmix64 over the base seed), executes them on a
//! long-lived process-wide work-stealing pool (`slb-pool`; the calling
//! thread participates as a worker) and merges the statistics in
//! replication order — the result does not depend on the thread count
//! or scheduling.
//!
//! ## Example
//!
//! ```
//! use slb_sim::{Policy, SimConfig};
//!
//! # fn main() -> Result<(), slb_sim::SimError> {
//! let result = SimConfig::new(1, 0.5)?   // M/M/1 at ρ = 0.5
//!     .policy(Policy::Random)
//!     .jobs(200_000)
//!     .warmup(20_000)
//!     .seed(7)
//!     .run()?;
//! // Exact mean sojourn is 1/(1−ρ) = 2.
//! assert!((result.mean_delay - 2.0).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod distributions;
mod engine;
mod error;
mod map_arrivals;
mod policy;
mod queue;
mod stats;

pub use config::{splitmix64_mix, SimConfig, SimResult};
pub use distributions::{ArrivalProcess, ServiceDistribution};
pub use engine::Simulation;
pub use error::SimError;
pub use policy::Policy;
pub use stats::{BatchMeans, DelayHistogram, Welford};

/// Convenience result alias for fallible simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
