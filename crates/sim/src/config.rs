//! Simulation configuration (builder) and results.

use slb_linalg::Budget;
use slb_markov::Map;

use crate::distributions::{ArrivalProcess, ServiceDistribution};
use crate::engine::Simulation;
use crate::policy::Policy;
use crate::{Result, SimError};

/// Configuration of one simulation run; a non-consuming builder.
///
/// Defaults: SQ(2) (capped at `N`), Poisson arrivals, exponential unit
/// services, 1,000,000 jobs with 100,000 discarded as warm-up, seed 0.
///
/// # Example
///
/// ```
/// use slb_sim::{Policy, SimConfig};
///
/// # fn main() -> Result<(), slb_sim::SimError> {
/// let res = SimConfig::new(6, 0.8)?
///     .policy(Policy::SqD { d: 2 })
///     .jobs(300_000)
///     .warmup(30_000)
///     .seed(42)
///     .run()?;
/// assert!(res.mean_delay >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub(crate) n: usize,
    pub(crate) lambda: f64,
    pub(crate) policy: Policy,
    pub(crate) arrival: ArrivalProcess,
    /// When set, overrides `arrival` with a Markovian arrival process
    /// whose fundamental rate is rescaled to `λN`.
    pub(crate) map: Option<Map>,
    pub(crate) service: ServiceDistribution,
    /// Per-server speed multipliers (service times are divided by the
    /// server's speed); `None` = homogeneous unit speeds.
    pub(crate) speeds: Option<Vec<f64>>,
    pub(crate) jobs: u64,
    pub(crate) warmup: u64,
    pub(crate) seed: u64,
}

impl SimConfig {
    /// Creates a configuration for `n` servers at per-server load
    /// `lambda`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] unless `n ≥ 1` and `0 < λ < 1`.
    pub fn new(n: usize, lambda: f64) -> Result<Self> {
        if n == 0 {
            return Err(SimError::InvalidConfig {
                reason: "need at least one server".into(),
            });
        }
        if lambda.is_nan() || lambda <= 0.0 || lambda >= 1.0 {
            return Err(SimError::InvalidConfig {
                reason: format!("need 0 < lambda < 1, got {lambda}"),
            });
        }
        Ok(SimConfig {
            n,
            lambda,
            policy: Policy::SqD { d: 2.min(n) },
            arrival: ArrivalProcess::Poisson,
            map: None,
            service: ServiceDistribution::exp_unit(),
            speeds: None,
            jobs: 1_000_000,
            warmup: 100_000,
            seed: 0,
        })
    }

    /// Sets the dispatch policy.
    pub fn policy(&mut self, policy: Policy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Sets the arrival process (default Poisson).
    pub fn arrival(&mut self, arrival: ArrivalProcess) -> &mut Self {
        self.arrival = arrival;
        self.map = None;
        self
    }

    /// Uses a Markovian arrival process instead of a renewal law. The
    /// MAP is rescaled in time so its fundamental rate equals the
    /// configured `λN`, preserving its correlation structure — the
    /// MAP extension the paper's conclusion proposes.
    pub fn arrival_map(&mut self, map: Map) -> &mut Self {
        self.map = Some(map);
        self
    }

    /// Sets the service distribution (default exponential, unit mean).
    pub fn service(&mut self, service: ServiceDistribution) -> &mut Self {
        self.service = service;
        self
    }

    /// Sets per-server speed multipliers (heterogeneous servers, as in
    /// the related work of Izagirre & Makowski and Mukhopadhyay et al.):
    /// server `i` completes work `speeds[i]` times faster than the base
    /// service distribution. Utilization is `λN / Σ speeds`.
    pub fn server_speeds(&mut self, speeds: Vec<f64>) -> &mut Self {
        self.speeds = Some(speeds);
        self
    }

    /// Sets the total number of completed jobs to simulate.
    pub fn jobs(&mut self, jobs: u64) -> &mut Self {
        self.jobs = jobs;
        self
    }

    /// Sets the number of initial completions discarded as warm-up.
    pub fn warmup(&mut self, warmup: u64) -> &mut Self {
        self.warmup = warmup;
        self
    }

    /// Sets the RNG seed (runs are reproducible given the seed).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Validates and runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the policy does not fit the server
    /// count, the service law is invalid, or `warmup ≥ jobs`.
    pub fn run(&self) -> Result<SimResult> {
        self.run_budgeted(&Budget::unlimited())
    }

    /// [`SimConfig::run`] under a cooperative [`Budget`], polled every
    /// few thousand simulated events.
    ///
    /// # Errors
    ///
    /// As [`SimConfig::run`], plus [`SimError::Interrupted`] when the
    /// budget trips mid-run.
    pub fn run_budgeted(&self, budget: &Budget) -> Result<SimResult> {
        Simulation::new(self.validated()?).run_to_end(budget)
    }

    /// Runs `replications` independent replications of this configuration
    /// on up to `n_threads` workers of the process-wide replication pool
    /// and merges their statistics.
    ///
    /// Replication `r` runs the full configured job count with the seed
    /// of replication `r`: the base seed for `r = 0` (so
    /// `run_parallel(1, k)` reproduces [`SimConfig::run`] exactly) and a
    /// splitmix64-derived stream for `r ≥ 1`. Results are merged in
    /// replication order after all workers finish, so the outcome is
    /// **bit-for-bit deterministic in `(config, replications)` and
    /// independent of `n_threads`** and of OS scheduling. Sojourn/wait
    /// statistics pool their observations (the confidence interval
    /// tightens roughly as `1/√replications`); time-averaged quantities
    /// weight each replication by its simulated horizon.
    ///
    /// Replications run on a long-lived [`slb_pool::WorkPool`] built
    /// lazily on first use and sized to the machine, with the calling
    /// thread participating as one of the workers — repeated calls (a
    /// sweep, a server) pay thread spawn/teardown once per process, not
    /// once per run, and a call from *inside* a pool task cannot
    /// deadlock. With `n_threads == 1` (or a single replication) the
    /// pool is bypassed entirely and the replications run serially on
    /// the calling thread.
    ///
    /// # Errors
    ///
    /// As [`SimConfig::run`], plus [`SimError::InvalidConfig`] when
    /// `replications == 0` or `n_threads == 0`.
    pub fn run_parallel(&self, replications: usize, n_threads: usize) -> Result<SimResult> {
        self.run_parallel_budgeted(replications, n_threads, &Budget::unlimited())
    }

    /// [`SimConfig::run_parallel`] under a cooperative [`Budget`]
    /// shared by every replication: a deadline or cancellation
    /// interrupts all in-flight replications at their next event-batch
    /// poll, and the first interruption (in replication order) is
    /// reported.
    ///
    /// # Errors
    ///
    /// As [`SimConfig::run_parallel`], plus [`SimError::Interrupted`]
    /// when the budget trips mid-run.
    pub fn run_parallel_budgeted(
        &self,
        replications: usize,
        n_threads: usize,
        budget: &Budget,
    ) -> Result<SimResult> {
        if replications == 0 || n_threads == 0 {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "need at least one replication and one thread, got {replications} and {n_threads}"
                ),
            });
        }
        let base = self.validated()?;
        let base_seed = base.seed;
        let run_budget = budget.clone();
        let replicate = move |cfg: &SimConfig, r: usize| {
            let mut cfg = cfg.clone();
            cfg.seed = replication_seed(base_seed, r as u64);
            Simulation::new(cfg).run_collect(&run_budget)
        };
        let concurrency = n_threads.min(replications);
        let all: Vec<Result<crate::engine::RunStats>> = if concurrency <= 1 {
            (0..replications).map(|r| replicate(&base, r)).collect()
        } else {
            let base = std::sync::Arc::new(base);
            replication_pool().run_indexed(replications, concurrency, move |r| replicate(&base, r))
        };
        // Deterministic merge in replication order; the first failed
        // replication (if any) decides the reported error.
        let mut merged: Option<crate::engine::RunStats> = None;
        for stats in all {
            let stats = stats?;
            match merged.as_mut() {
                None => merged = Some(stats),
                Some(m) => m.merge(&stats),
            }
        }
        Ok(merged.expect("at least one replication").finalize())
    }

    /// Shared validation behind [`SimConfig::run`] and
    /// [`SimConfig::run_parallel`]: checks the configuration and returns
    /// the effective one (with the MAP rescaled to rate `λN`).
    fn validated(&self) -> Result<SimConfig> {
        if !self.policy.is_valid(self.n) {
            return Err(SimError::InvalidConfig {
                reason: format!("policy {:?} invalid for N = {}", self.policy, self.n),
            });
        }
        if !self.service.is_valid() {
            return Err(SimError::InvalidConfig {
                reason: format!("invalid service distribution {:?}", self.service),
            });
        }
        if self.warmup >= self.jobs {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "warmup ({}) must be smaller than total jobs ({})",
                    self.warmup, self.jobs
                ),
            });
        }
        if let Some(speeds) = &self.speeds {
            if speeds.len() != self.n {
                return Err(SimError::InvalidConfig {
                    reason: format!("{} speeds supplied for {} servers", speeds.len(), self.n),
                });
            }
            if speeds.iter().any(|&s| s <= 0.0 || !s.is_finite()) {
                return Err(SimError::InvalidConfig {
                    reason: "server speeds must be positive and finite".into(),
                });
            }
        }
        let mut cfg = self.clone();
        if let Some(map) = &self.map {
            // Rescale the MAP so its fundamental rate is λN.
            let r0 = map.rate().map_err(|e| SimError::InvalidConfig {
                reason: format!("invalid MAP: {e}"),
            })?;
            if r0 <= 0.0 {
                return Err(SimError::InvalidConfig {
                    reason: "MAP has zero arrival rate".into(),
                });
            }
            let c = self.lambda * self.n as f64 / r0;
            let scaled = Map::new(map.d0().scale(c), map.d1().scale(c)).map_err(|e| {
                SimError::InvalidConfig {
                    reason: format!("invalid MAP after rescaling: {e}"),
                }
            })?;
            cfg.map = Some(scaled);
        }
        Ok(cfg)
    }
}

/// The process-wide replication pool behind [`SimConfig::run_parallel`]:
/// built once, sized to the machine (workers = available parallelism − 1,
/// because the calling thread always participates), and reused for the
/// life of the process — replication batches ride long-lived warmed-up
/// workers instead of freshly spawned scoped threads.
fn replication_pool() -> &'static slb_pool::WorkPool {
    static POOL: std::sync::OnceLock<slb_pool::WorkPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        slb_pool::WorkPool::new(cores.saturating_sub(1).max(1))
    })
}

/// The splitmix64 finalizer: the avalanche rounds applied after
/// additive seeding. The one place the magic constants live — shared by
/// the per-replication streams here and `slb-exp`'s per-grid-point seed
/// derivation.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of replication `rep`: the base seed itself for replication 0 and
/// a splitmix64 mix of `(base, rep)` for the rest — deterministic,
/// collision-resistant streams without any shared RNG state.
fn replication_seed(base: u64, rep: u64) -> u64 {
    if rep == 0 {
        return base;
    }
    splitmix64_mix(base.wrapping_add(rep.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Statistics from a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Mean sojourn time (waiting + service) over measured jobs.
    pub mean_delay: f64,
    /// Half-width of the ~95% batch-means confidence interval on
    /// [`SimResult::mean_delay`].
    pub ci_halfwidth: f64,
    /// Mean waiting time of jobs that had to queue behind others (time
    /// from arrival to entering service, measured over queued jobs).
    pub mean_wait: f64,
    /// Jobs measured after warm-up.
    pub jobs_measured: u64,
    /// Time-averaged number of jobs in the whole system.
    pub mean_jobs_in_system: f64,
    /// Largest queue length (jobs at one server) ever observed.
    pub max_queue_len: u32,
    /// Time-averaged fraction of servers holding at least `k` jobs,
    /// indexed by `k` (`queue_tail[0] = 1`); the finite-`N` analogue of
    /// the asymptotic fractions `s_k = λ^{(dᵏ−1)/(d−1)}`.
    pub queue_tail: Vec<f64>,
    /// Histogram of measured sojourn times (bin width 0.02 service
    /// units), for percentile and tail-probability readouts.
    pub delay_hist: crate::DelayHistogram,
}

impl SimResult {
    /// Empirical `p`-quantile of the sojourn time (`None` when no jobs
    /// were measured or `p ∉ (0, 1)`).
    pub fn delay_quantile(&self, p: f64) -> Option<f64> {
        self.delay_hist.quantile(p)
    }

    /// Empirical `P(Delay > t)`.
    pub fn delay_survival(&self, t: f64) -> f64 {
        self.delay_hist.survival(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validation() {
        assert!(SimConfig::new(0, 0.5).is_err());
        assert!(SimConfig::new(3, 0.0).is_err());
        assert!(SimConfig::new(3, 1.0).is_err());
        let mut cfg = SimConfig::new(3, 0.5).unwrap();
        assert!(cfg.policy(Policy::SqD { d: 5 }).run().is_err());
        let mut cfg = SimConfig::new(3, 0.5).unwrap();
        assert!(cfg.jobs(10).warmup(10).run().is_err());
    }

    #[test]
    fn mm1_mean_delay() {
        // M/M/1 at ρ = 0.6: E[T] = 1/(1−ρ) = 2.5.
        let res = SimConfig::new(1, 0.6)
            .unwrap()
            .policy(Policy::Random)
            .jobs(400_000)
            .warmup(40_000)
            .seed(3)
            .run()
            .unwrap();
        assert!(
            (res.mean_delay - 2.5).abs() < 3.0 * res.ci_halfwidth.max(0.03),
            "delay {} ± {}",
            res.mean_delay,
            res.ci_halfwidth
        );
        // Little's law: E[L] = λ E[T].
        assert!(
            (res.mean_jobs_in_system - 0.6 * res.mean_delay).abs() < 0.05,
            "L = {}, λT = {}",
            res.mean_jobs_in_system,
            0.6 * res.mean_delay
        );
    }

    #[test]
    fn random_on_n_servers_is_mm1_per_server() {
        // SQ(1): N independent M/M/1 queues at load λ each.
        let res = SimConfig::new(4, 0.7)
            .unwrap()
            .policy(Policy::Random)
            .jobs(400_000)
            .warmup(40_000)
            .seed(9)
            .run()
            .unwrap();
        let exact = 1.0 / (1.0 - 0.7);
        assert!(
            (res.mean_delay - exact).abs() < 0.1,
            "delay {} vs {exact}",
            res.mean_delay
        );
    }

    #[test]
    fn policy_hierarchy_at_equal_load() {
        // JSQ ≤ SQ(2) ≤ Random in mean delay.
        let run = |policy| {
            SimConfig::new(5, 0.85)
                .unwrap()
                .policy(policy)
                .jobs(300_000)
                .warmup(30_000)
                .seed(21)
                .run()
                .unwrap()
                .mean_delay
        };
        let random = run(Policy::Random);
        let sq2 = run(Policy::SqD { d: 2 });
        let jsq = run(Policy::Jsq);
        assert!(
            jsq < sq2 && sq2 < random,
            "jsq {jsq}, sq2 {sq2}, random {random}"
        );
    }

    #[test]
    fn sqd_n_equals_jsq_statistically() {
        let run = |policy, seed| {
            SimConfig::new(4, 0.8)
                .unwrap()
                .policy(policy)
                .jobs(200_000)
                .warmup(20_000)
                .seed(seed)
                .run()
                .unwrap()
                .mean_delay
        };
        let sqn = run(Policy::SqD { d: 4 }, 2);
        let jsq = run(Policy::Jsq, 3);
        assert!((sqn - jsq).abs() < 0.05, "SQ(N) {sqn} vs JSQ {jsq}");
    }

    #[test]
    fn round_robin_beats_random() {
        // Deterministic spreading reduces arrival-burst variance.
        let run = |policy| {
            SimConfig::new(4, 0.8)
                .unwrap()
                .policy(policy)
                .jobs(200_000)
                .warmup(20_000)
                .seed(31)
                .run()
                .unwrap()
                .mean_delay
        };
        assert!(run(Policy::RoundRobin) < run(Policy::Random));
    }

    #[test]
    fn md1_deterministic_service() {
        // M/D/1: E[W] = ρ/(2(1−ρ))·E[S]; with ρ=0.5, E[T] = 1.5.
        let res = SimConfig::new(1, 0.5)
            .unwrap()
            .policy(Policy::Random)
            .service(ServiceDistribution::Deterministic { value: 1.0 })
            .jobs(400_000)
            .warmup(40_000)
            .seed(13)
            .run()
            .unwrap();
        assert!(
            (res.mean_delay - 1.5).abs() < 0.05,
            "M/D/1 delay {}",
            res.mean_delay
        );
    }

    #[test]
    fn queue_tail_matches_mm1_geometric() {
        // Single M/M/1 queue: P(L >= k) = ρᵏ.
        let rho = 0.7;
        let res = SimConfig::new(1, rho)
            .unwrap()
            .policy(Policy::Random)
            .jobs(500_000)
            .warmup(50_000)
            .seed(23)
            .run()
            .unwrap();
        assert!((res.queue_tail[0] - 1.0).abs() < 1e-12);
        for k in 1..6 {
            let exact = rho.powi(k as i32);
            assert!(
                (res.queue_tail[k] - exact).abs() < 0.02,
                "k={k}: {} vs {exact}",
                res.queue_tail[k]
            );
        }
    }

    #[test]
    fn queue_tail_utilization_identity() {
        // Fraction of busy servers = λ for any work-conserving policy.
        for policy in [
            Policy::SqD { d: 2 },
            Policy::Jsq,
            Policy::SqDReplace { d: 3 },
        ] {
            let res = SimConfig::new(5, 0.65)
                .unwrap()
                .policy(policy)
                .jobs(300_000)
                .warmup(30_000)
                .seed(3)
                .run()
                .unwrap();
            assert!(
                (res.queue_tail[1] - 0.65).abs() < 0.01,
                "{policy:?}: busy fraction {}",
                res.queue_tail[1]
            );
        }
    }

    #[test]
    fn replacement_between_random_and_without() {
        // SQ(2) with replacement is worse than without but far better
        // than random, at small N.
        let run = |policy| {
            SimConfig::new(3, 0.85)
                .unwrap()
                .policy(policy)
                .jobs(400_000)
                .warmup(40_000)
                .seed(77)
                .run()
                .unwrap()
                .mean_delay
        };
        let without = run(Policy::SqD { d: 2 });
        let with = run(Policy::SqDReplace { d: 2 });
        let random = run(Policy::Random);
        assert!(without < with, "{without} !< {with}");
        assert!(with < random, "{with} !< {random}");
    }

    #[test]
    fn heterogeneous_random_matches_mm1_mixture() {
        // Random routing to heterogeneous servers: queue i is M/M/1 with
        // arrival λ and service speed r_i, so the job-averaged sojourn is
        // the mean of 1/(r_i − λ).
        let (lam, speeds) = (0.5, vec![1.0, 2.0]);
        let exact: f64 = speeds.iter().map(|r| 1.0 / (r - lam)).sum::<f64>() / speeds.len() as f64;
        let res = SimConfig::new(2, lam)
            .unwrap()
            .policy(Policy::Random)
            .server_speeds(speeds)
            .jobs(600_000)
            .warmup(60_000)
            .seed(0x4E7)
            .run()
            .unwrap();
        assert!(
            (res.mean_delay - exact).abs() < 0.05,
            "delay {} vs {exact}",
            res.mean_delay
        );
    }

    #[test]
    fn heterogeneity_validation() {
        let mut cfg = SimConfig::new(3, 0.5).unwrap();
        assert!(cfg.server_speeds(vec![1.0, 2.0]).run().is_err()); // wrong len
        let mut cfg = SimConfig::new(2, 0.5).unwrap();
        assert!(cfg.server_speeds(vec![1.0, 0.0]).run().is_err()); // zero speed
    }

    #[test]
    fn jsq_exploits_fast_servers() {
        // Feedback policies route more work to faster servers; the mean
        // delay under JSQ beats random routing by a wide margin when the
        // speeds are skewed.
        let speeds = vec![3.0, 0.5, 0.5];
        let run = |policy| {
            SimConfig::new(3, 0.8)
                .unwrap()
                .policy(policy)
                .server_speeds(speeds.clone())
                .jobs(400_000)
                .warmup(40_000)
                .seed(0xBE)
                .run()
                .unwrap()
                .mean_delay
        };
        let jsq = run(Policy::Jsq);
        let random = run(Policy::Random);
        assert!(jsq < 0.7 * random, "jsq {jsq} vs random {random}");
    }

    #[test]
    fn mmpp_arrivals_raise_delay() {
        use slb_markov::Map;
        // Same rate, bursty modulation ⇒ strictly worse delay.
        let bursty = Map::mmpp2(0.05, 0.05, 0.2, 1.8).unwrap();
        let poisson = SimConfig::new(4, 0.7)
            .unwrap()
            .jobs(400_000)
            .warmup(40_000)
            .seed(0xA)
            .run()
            .unwrap()
            .mean_delay;
        let modulated = SimConfig::new(4, 0.7)
            .unwrap()
            .arrival_map(bursty)
            .jobs(400_000)
            .warmup(40_000)
            .seed(0xA)
            .run()
            .unwrap()
            .mean_delay;
        assert!(
            modulated > 1.3 * poisson,
            "MMPP {modulated} vs Poisson {poisson}"
        );
    }

    #[test]
    fn warmup_discards_exactly_the_prefix() {
        let res = SimConfig::new(2, 0.7)
            .unwrap()
            .jobs(50_000)
            .warmup(12_345)
            .seed(4)
            .run()
            .unwrap();
        assert_eq!(res.jobs_measured, 50_000 - 12_345);
        // Same path, different warmup ⇒ different measured subset.
        let res0 = SimConfig::new(2, 0.7)
            .unwrap()
            .jobs(50_000)
            .warmup(0)
            .seed(4)
            .run()
            .unwrap();
        assert_eq!(res0.jobs_measured, 50_000);
        assert_ne!(res.mean_delay, res0.mean_delay);
    }
}
