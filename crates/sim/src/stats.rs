//! Streaming statistics: Welford accumulation and batch-means confidence
//! intervals.
//!
//! Every accumulator also takes *blocks* of observations
//! ([`Welford::push_block`], [`BatchMeans::push_block`],
//! [`DelayHistogram::push_block`]): the simulator's event loop writes
//! sojourn/wait samples into flat scratch buffers with plain stores and
//! reduces them here in bulk at batch boundaries, so the per-event path
//! carries no dividing, serially-dependent update chains. The block
//! reductions run on four independent accumulator lanes
//! ([`sum_lanes`], [`sum_sq_dev_lanes`]) — a fixed, deterministic
//! association order that the compiler can keep in SIMD registers.

/// Deterministic 4-lane sum of a slice: lane `i` accumulates elements
/// `i, i+4, i+8, …`, and the lanes fold as `(l0+l2)+(l1+l3)` plus a
/// scalar tail. The fixed association order makes the result a pure
/// function of the data (replication merges stay bit-reproducible)
/// while freeing the compiler from the strict left-to-right chain a
/// naive `iter().sum()` implies.
#[inline]
fn sum_lanes(xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in chunks.by_ref() {
        lanes[0] += c[0];
        lanes[1] += c[1];
        lanes[2] += c[2];
        lanes[3] += c[3];
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        tail += x;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// Deterministic 4-lane sum of squared deviations from `mean`; same
/// lane discipline as [`sum_lanes`].
#[inline]
fn sum_sq_dev_lanes(xs: &[f64], mean: f64) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in chunks.by_ref() {
        let (d0, d1, d2, d3) = (c[0] - mean, c[1] - mean, c[2] - mean, c[3] - mean);
        lanes[0] += d0 * d0;
        lanes[1] += d1 * d1;
        lanes[2] += d2 * d2;
        lanes[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        let d = x - mean;
        tail += d * d;
    }
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]) + tail
}

/// Numerically stable streaming mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use slb_sim::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Adds a whole block of observations at once: the block's mean and
    /// squared deviations are reduced with the 4-lane loops (one
    /// division per *block* instead of one per observation) and folded
    /// in through the same Chan-style update as [`Welford::merge`].
    /// Deterministic in `(self, xs)`; the rounding differs from pushing
    /// one-by-one, which is why engine goldens were re-pinned when the
    /// simulator moved to block accumulation.
    pub fn push_block(&mut self, xs: &[f64]) {
        if xs.is_empty() {
            return;
        }
        let n = xs.len() as f64;
        let mean = sum_lanes(xs) / n;
        let block = Welford {
            count: xs.len() as u64,
            mean,
            m2: sum_sq_dev_lanes(xs, mean),
        };
        self.merge(&block);
    }

    /// Folds another accumulator into this one (Chan et al.'s parallel
    /// variance update), as if every observation of `other` had been
    /// pushed into `self`. The result is deterministic in the pair —
    /// merging replications in a fixed order yields identical bits
    /// regardless of which threads produced them.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Batch-means estimator for steady-state simulation output.
///
/// Sojourn times of consecutive jobs are heavily autocorrelated, so a
/// naive CI over raw observations is far too tight. Batch means groups
/// `batch_size` consecutive observations, treats batch averages as
/// (approximately) independent, and builds the 95% CI from those.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: Welford,
    overall: Welford,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: Welford::new(),
            overall: Welford::new(),
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Adds a whole block of observations at once. Equivalent in
    /// batching semantics to pushing each element in order — the same
    /// elements land in the same batches — but the sums run on the
    /// 4-lane reduction and the overall moments fold in per block, so
    /// the cost is ~one multiply-add per element instead of a dependent
    /// divide chain.
    pub fn push_block(&mut self, xs: &[f64]) {
        self.overall.push_block(xs);
        let mut rest = xs;
        // Top up the current partial batch first.
        if self.current_count > 0 {
            let need = (self.batch_size - self.current_count) as usize;
            let take = need.min(rest.len());
            self.current_sum += sum_lanes(&rest[..take]);
            self.current_count += take as u64;
            rest = &rest[take..];
            if self.current_count == self.batch_size {
                self.batches.push(self.current_sum / self.batch_size as f64);
                self.current_sum = 0.0;
                self.current_count = 0;
            }
        }
        // Whole batches straight from the block.
        let bs = self.batch_size as usize;
        while rest.len() >= bs {
            self.batches
                .push(sum_lanes(&rest[..bs]) / self.batch_size as f64);
            rest = &rest[bs..];
        }
        // Remainder opens the next partial batch.
        if !rest.is_empty() {
            self.current_sum += sum_lanes(rest);
            self.current_count += rest.len() as u64;
        }
    }

    /// Overall mean of all observations (including any partial batch).
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Half-width of the ~95% confidence interval from the batch means
    /// (`1.96 · s_batch / √k`); 0 with fewer than two batches.
    pub fn ci_halfwidth(&self) -> f64 {
        let k = self.batches.count();
        if k < 2 {
            return 0.0;
        }
        1.96 * self.batches.std_dev() / (k as f64).sqrt()
    }

    /// Folds the estimator of an independent replication into this one:
    /// overall statistics and completed batches merge; `other`'s trailing
    /// partial batch contributes to the overall mean only, exactly as a
    /// partial batch at the end of a single run would.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes differ (batch means from different batch
    /// sizes are not exchangeable).
    pub fn merge(&mut self, other: &BatchMeans) {
        assert_eq!(
            self.batch_size, other.batch_size,
            "cannot merge batch-means estimators with different batch sizes"
        );
        self.overall.merge(&other.overall);
        self.batches.merge(&other.batches);
    }
}

/// Fixed-bin-width streaming histogram of nonnegative observations, used
/// for delay percentiles. Bins grow on demand; quantiles and survival
/// probabilities are read off with linear interpolation inside a bin, so
/// the absolute resolution is the bin width.
///
/// # Example
///
/// ```
/// use slb_sim::DelayHistogram;
///
/// let mut h = DelayHistogram::new(0.5);
/// for x in [0.1, 0.4, 1.2, 2.6] {
///     h.push(x);
/// }
/// assert_eq!(h.total(), 4);
/// assert!(h.survival(1.0) >= 0.5 - 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayHistogram {
    width: f64,
    /// `1 / width`, precomputed: binning multiplies instead of divides
    /// (an f64 divide costs tens of cycles and sat on the simulator's
    /// per-departure path).
    inv_width: f64,
    counts: Vec<u64>,
    total: u64,
}

impl DelayHistogram {
    /// Creates a histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics unless `width > 0` and finite.
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "bin width must be positive and finite, got {width}"
        );
        DelayHistogram {
            width,
            inv_width: 1.0 / width,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// The bin width (quantile resolution).
    pub fn bin_width(&self) -> f64 {
        self.width
    }

    /// The bin index of observation `x` (negative values clamp to 0).
    /// All paths — push, block push, survival — bin through the same
    /// reciprocal multiply so boundary values classify consistently.
    #[inline]
    fn bin_of(&self, x: f64) -> usize {
        if x <= 0.0 {
            0
        } else {
            (x * self.inv_width) as usize
        }
    }

    /// Records an observation; negative values clamp to bin 0.
    pub fn push(&mut self, x: f64) {
        let bin = self.bin_of(x);
        if self.counts.len() <= bin {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Records a whole block of observations: one `total` update and a
    /// tight bin-scatter loop, the batched counterpart of
    /// [`DelayHistogram::push`] (bin classification is identical).
    pub fn push_block(&mut self, xs: &[f64]) {
        for &x in xs {
            let bin = self.bin_of(x);
            if self.counts.len() <= bin {
                self.counts.resize(bin + 1, 0);
            }
            self.counts[bin] += 1;
        }
        self.total += xs.len() as u64;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical `P(X > t)` with linear interpolation inside the bin
    /// containing `t`.
    pub fn survival(&self, t: f64) -> f64 {
        if self.total == 0 || t < 0.0 {
            return if self.total == 0 { 0.0 } else { 1.0 };
        }
        let bin = (t * self.inv_width) as usize;
        if bin >= self.counts.len() {
            return 0.0;
        }
        let above: u64 = self.counts[bin + 1..].iter().sum();
        let frac_in_bin = (t * self.inv_width) - bin as f64;
        let partial = self.counts[bin] as f64 * (1.0 - frac_in_bin);
        (above as f64 + partial) / self.total as f64
    }

    /// Folds another histogram into this one by summing per-bin counts.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &DelayHistogram) {
        assert_eq!(
            self.width, other.width,
            "cannot merge histograms with different bin widths"
        );
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Empirical `p`-quantile (`None` when empty or `p ∉ (0, 1)`), with
    /// linear interpolation inside the quantile bin.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 || !(p > 0.0 && p < 1.0) {
            return None;
        }
        let target = p * self.total as f64;
        let mut cum = 0.0;
        for (bin, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if next >= target {
                let frac = (target - cum) / c as f64;
                return Some(self.width * (bin as f64 + frac));
            }
            cum = next;
        }
        Some(self.width * self.counts.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn batch_means_counts() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.push(i as f64);
        }
        assert_eq!(bm.count(), 95);
        assert_eq!(bm.batch_count(), 9); // last 5 observations unpooled
        assert!((bm.mean() - 47.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let gen = |n: usize| {
            let mut bm = BatchMeans::new(100);
            let mut x = 0.5_f64;
            for _ in 0..n {
                // Deterministic chaotic sequence as a noise stand-in.
                x = 3.9 * x * (1.0 - x);
                bm.push(x);
            }
            bm.ci_halfwidth()
        };
        let small = gen(2_000);
        let large = gen(200_000);
        assert!(large < small, "{large} !< {small}");
        assert!(large > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.61).cos() * 3.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let (a, b) = data.split_at(73);
        let mut w1 = Welford::new();
        let mut w2 = Welford::new();
        a.iter().for_each(|&x| w1.push(x));
        b.iter().for_each(|&x| w2.push(x));
        w1.merge(&w2);
        assert_eq!(w1.count(), whole.count());
        assert!((w1.mean() - whole.mean()).abs() < 1e-12);
        assert!((w1.variance() - whole.variance()).abs() < 1e-12);
        // Merging an empty accumulator is the identity, either way round.
        let snapshot = w1;
        w1.merge(&Welford::new());
        assert_eq!(w1, snapshot);
        let mut empty = Welford::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn batch_means_merge_pools_batches() {
        let mut a = BatchMeans::new(10);
        let mut b = BatchMeans::new(10);
        for i in 0..45 {
            a.push(i as f64);
        }
        for i in 0..37 {
            b.push(100.0 + i as f64);
        }
        let (ca, cb) = (a.count(), b.count());
        let (ba, bb) = (a.batch_count(), b.batch_count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.batch_count(), ba + bb);
        assert!(a.ci_halfwidth() > 0.0);
    }

    #[test]
    #[should_panic(expected = "different batch sizes")]
    fn batch_means_merge_rejects_mismatch() {
        let mut a = BatchMeans::new(10);
        a.merge(&BatchMeans::new(20));
    }

    #[test]
    fn welford_push_block_matches_scalar_statistics() {
        let data: Vec<f64> = (0..517)
            .map(|i| (i as f64 * 0.29).sin() * 2.0 + 1.0)
            .collect();
        let mut scalar = Welford::new();
        data.iter().for_each(|&x| scalar.push(x));
        // One big block, and a ragged sequence of blocks, both agree
        // with the scalar stream to fp tolerance.
        for splits in [vec![data.len()], vec![3, 128, 5, 256, 125]] {
            let mut blocked = Welford::new();
            let mut rest = data.as_slice();
            for len in splits {
                blocked.push_block(&rest[..len]);
                rest = &rest[len..];
            }
            assert!(rest.is_empty());
            assert_eq!(blocked.count(), scalar.count());
            assert!((blocked.mean() - scalar.mean()).abs() < 1e-12);
            assert!((blocked.variance() - scalar.variance()).abs() < 1e-12);
        }
        let mut noop = Welford::new();
        noop.push_block(&[]);
        assert_eq!(noop, Welford::new());
    }

    #[test]
    fn batch_means_push_block_matches_scalar_batching() {
        let data: Vec<f64> = (0..437).map(|i| (i as f64 * 0.83).cos() + 2.0).collect();
        let mut scalar = BatchMeans::new(25);
        data.iter().for_each(|&x| scalar.push(x));
        // Ragged blocks that straddle batch boundaries in every way:
        // mid-batch, exactly on a boundary, several batches at once.
        let mut blocked = BatchMeans::new(25);
        let mut rest = data.as_slice();
        for len in [7, 18, 25, 110, 1, 276] {
            blocked.push_block(&rest[..len]);
            rest = &rest[len..];
        }
        assert!(rest.is_empty());
        assert_eq!(blocked.count(), scalar.count());
        assert_eq!(blocked.batch_count(), scalar.batch_count());
        assert!((blocked.mean() - scalar.mean()).abs() < 1e-12);
        assert!((blocked.ci_halfwidth() - scalar.ci_halfwidth()).abs() < 1e-12);
    }

    #[test]
    fn histogram_push_block_matches_scalar_bins() {
        let data: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.37).sin().abs() * 5.0 - 0.1)
            .collect();
        let mut scalar = DelayHistogram::new(0.02);
        data.iter().for_each(|&x| scalar.push(x));
        let mut blocked = DelayHistogram::new(0.02);
        blocked.push_block(&data[..171]);
        blocked.push_block(&data[171..]);
        // Identical bins bit for bit: binning goes through one shared
        // classifier.
        assert_eq!(blocked, scalar);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = DelayHistogram::new(0.5);
        let mut b = DelayHistogram::new(0.5);
        for x in [0.1, 1.2, 3.0] {
            a.push(x);
        }
        for x in [0.2, 5.5] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert!(a.survival(5.0) > 0.0); // b's tail observation arrived
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = DelayHistogram::new(0.5);
        a.merge(&DelayHistogram::new(0.25));
    }

    #[test]
    fn histogram_quantiles_of_uniform_grid() {
        // 1000 evenly spaced points on (0, 10]: quantiles are linear.
        let mut h = DelayHistogram::new(0.01);
        for i in 1..=1000 {
            h.push(i as f64 * 0.01);
        }
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            let q = h.quantile(p).unwrap();
            assert!((q - 10.0 * p).abs() < 0.03, "p={p}: {q}");
        }
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_survival_consistency() {
        let mut h = DelayHistogram::new(0.1);
        for i in 0..100 {
            h.push(i as f64 * 0.1);
        }
        // Survival is monotone decreasing from 1 to 0.
        let mut prev = 1.0 + 1e-12;
        for i in 0..=110 {
            let s = h.survival(i as f64 * 0.1);
            assert!(s <= prev + 1e-12, "survival not monotone at {i}");
            prev = s;
        }
        assert_eq!(h.survival(100.0), 0.0);
        // Quantile and survival are consistent: P(X > q_p) ≈ 1 − p.
        let q = h.quantile(0.7).unwrap();
        assert!((h.survival(q) - 0.3).abs() < 0.02);
    }

    #[test]
    fn histogram_empty_and_negative() {
        let mut h = DelayHistogram::new(1.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.survival(3.0), 0.0);
        assert_eq!(h.quantile(0.5), None);
        h.push(-2.0); // clamps to bin 0
        assert_eq!(h.total(), 1);
        assert!(h.survival(2.0) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_rejected() {
        let _ = DelayHistogram::new(0.0);
    }
}
