//! The discrete-event simulation engine.
//!
//! The hot path is a *flat next-event core* instead of the classic
//! binary-heap event list. Because service is FIFO within a server, only
//! the head-of-line job of each server ever has a scheduled departure, so
//! at any instant exactly `N + 1` candidate events exist: one pending
//! arrival plus one next-departure per server (`+∞` when idle). The
//! engine keeps the departures in a dense array reduced by an indexed
//! tournament tree — O(log N) when a server's departure changes, O(1) to
//! find the earliest, zero allocation and no heap churn.
//!
//! Tie rule (also pinned by a unit test below): at equal timestamps a
//! **departure precedes the arrival** — the rule the seed engine's
//! reversed heap `Ord` encoded. Among simultaneous departures the
//! lowest server index fires first; that half is *stricter* than the
//! seed engine, whose `Ord` returned `Equal` for two departures and
//! left their pop order to heap internals. These are zero-probability
//! events under continuous laws; the rule only keeps replay
//! deterministic.
//!
//! Per-server FIFO queues live in one contiguous ring arena
//! ([`crate::queue::Queues`]), queue lengths are maintained
//! incrementally, and the event loop is monomorphized per dispatch
//! policy ([`crate::policy::DispatchCore`]), with per-length server
//! buckets maintained only for the policies that read them (JSQ/JIQ).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimResult};
use crate::map_arrivals::MapSampler;
use crate::policy::{DispatchCore, PolicyCore};
use crate::queue::{Buckets, Queues};
use crate::stats::{BatchMeans, DelayHistogram, Welford};

/// The earliest pending event of the flat core (diagnostics and the
/// tie-order test; the monomorphized loop branches directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NextEvent {
    Arrival,
    Departure { server: usize },
}

/// Indexed tournament tree over the per-server next-departure times:
/// a perfect binary tree whose internal nodes hold the index of the
/// earlier child, left-biased on ties so equal departure times resolve
/// to the lowest server index.
#[derive(Debug, Clone)]
struct DepartureTree {
    /// `node[1]` = overall winner; leaves occupy `[base, base + n)`.
    /// Padding leaves point at `u32::MAX` (time `+∞` by convention).
    node: Vec<u32>,
    /// Leaf offset (power of two, `≥ n`).
    base: usize,
}

const NO_SERVER: u32 = u32::MAX;

impl DepartureTree {
    fn new(n: usize) -> Self {
        let base = n.next_power_of_two();
        let mut node = vec![NO_SERVER; 2 * base];
        for s in 0..n {
            node[base + s] = s as u32;
        }
        // All departures start at +∞; left bias makes server 0 the
        // initial winner everywhere.
        for i in (1..base).rev() {
            node[i] = node[2 * i];
        }
        DepartureTree { node, base }
    }

    /// The server with the earliest departure (ties → lowest index).
    #[inline]
    fn min_server(&self) -> usize {
        self.node[1] as usize
    }

    /// Re-runs the matches on the path above server `s` after its
    /// departure time changed.
    #[inline]
    fn update(&mut self, dep: &[f64], s: usize) {
        let time = |idx: u32| -> f64 {
            if idx == NO_SERVER {
                f64::INFINITY
            } else {
                dep[idx as usize]
            }
        };
        let mut i = (self.base + s) >> 1;
        while i >= 1 {
            let l = self.node[2 * i];
            let r = self.node[2 * i + 1];
            // Strict `<` keeps the left child on ties: lower server
            // indices and real servers (over padding) win.
            self.node[i] = if time(r) < time(l) { r } else { l };
            i >>= 1;
        }
    }
}

/// A running simulation; usually driven to completion via
/// [`SimConfig::run`], but exposed for step-wise inspection in tests and
/// examples.
#[derive(Debug)]
pub struct Simulation {
    core: Core,
    policy: PolicyCore,
}

/// Everything of the simulation except the dispatch policy, so the
/// event loop can be monomorphized over the policy type while the
/// public [`Simulation`] stays a single concrete type.
#[derive(Debug)]
struct Core {
    config: SimConfig,
    rng: SmallRng,
    /// Stateful MAP sampler when the configuration carries one.
    map_sampler: Option<MapSampler>,
    /// Total arrival rate `λN` (ignored when a MAP drives arrivals).
    arrival_rate: f64,
    /// Time of the one pending arrival.
    next_arrival: f64,
    /// Next departure per server; `+∞` when the server is idle.
    departure: Vec<f64>,
    tree: DepartureTree,
    /// Arrival timestamps of queued jobs (head = in service).
    queues: Queues,
    /// Per-length server buckets; maintained only when the policy's
    /// `NEEDS_BUCKETS` is set.
    buckets: Buckets,
    clock: f64,
    arrivals_seen: u64,
    completed: u64,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    /// Total jobs in the system, maintained incrementally.
    total_jobs: usize,
    /// `len_counts[l]` = number of servers currently holding exactly `l`
    /// jobs, maintained incrementally.
    len_counts: Vec<u32>,
    /// `area_hist[l]` = time-integral of `len_counts[l]`, folded lazily:
    /// a level's integral is brought up to date only when its count is
    /// about to change (and once at the end of the run), so the
    /// per-event cost is O(1) instead of O(max occupancy).
    area_hist: Vec<f64>,
    /// Per-level time up to which `area_hist` has been folded.
    hist_stamp: Vec<f64>,
    /// Time-averaged total queue length accumulator.
    area_jobs: f64,
    last_event_time: f64,
    max_queue: u32,
}

impl Simulation {
    /// Initializes the simulation (first arrival scheduled).
    pub(crate) fn new(config: SimConfig) -> Self {
        let n = config.n;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut map_sampler = config.map.as_ref().map(|m| MapSampler::new(m, &mut rng));
        let arrival_rate = config.lambda * n as f64;
        let first = match map_sampler.as_mut() {
            Some(s) => s.next_interarrival(&mut rng),
            None => config.arrival.sample(&mut rng, arrival_rate),
        };
        let batch = (config.jobs.saturating_sub(config.warmup) / 64).max(1);
        let mut len_counts = vec![0u32; 8];
        len_counts[0] = n as u32;
        let policy = PolicyCore::new(config.policy, n);
        let needs_buckets = policy.needs_buckets();
        Simulation {
            core: Core {
                rng,
                map_sampler,
                arrival_rate,
                next_arrival: first,
                departure: vec![f64::INFINITY; n],
                tree: DepartureTree::new(n),
                queues: Queues::new(n),
                buckets: if needs_buckets {
                    Buckets::new(n)
                } else {
                    Buckets::default()
                },
                clock: 0.0,
                arrivals_seen: 0,
                completed: 0,
                delay_stats: BatchMeans::new(batch),
                delay_hist: DelayHistogram::new(0.02),
                wait_stats: Welford::new(),
                total_jobs: 0,
                len_counts,
                area_hist: vec![0.0; 8],
                hist_stamp: vec![0.0; 8],
                area_jobs: 0.0,
                last_event_time: 0.0,
                max_queue: 0,
                config,
            },
            policy,
        }
    }

    /// Total jobs currently in the system.
    pub fn jobs_in_system(&self) -> usize {
        self.core.total_jobs
    }

    /// Completed jobs so far.
    pub fn jobs_completed(&self) -> u64 {
        self.core.completed
    }

    /// Arrivals observed so far.
    pub fn arrivals_seen(&self) -> u64 {
        self.core.arrivals_seen
    }

    /// Advances the simulation by one event (tests and step-wise
    /// inspection; [`SimConfig::run`] drives the monomorphized loop
    /// instead).
    pub fn step(&mut self) {
        match &mut self.policy {
            PolicyCore::Random(p) => self.core.step(p),
            PolicyCore::RoundRobin(p) => self.core.step(p),
            PolicyCore::Jsq(p) => self.core.step(p),
            PolicyCore::Jiq(p) => self.core.step(p),
            PolicyCore::SqD(p) => self.core.step(p),
            PolicyCore::SqDReplace(p) => self.core.step(p),
            PolicyCore::SqDMemory(p) => self.core.step(p),
        }
    }

    /// Runs to completion and returns the collected statistics.
    pub(crate) fn run_to_end(self) -> SimResult {
        self.run_collect().finalize()
    }

    /// Runs to completion, returning the raw accumulators — the
    /// replication-level output that [`RunStats::merge`] folds across
    /// independent runs before a single [`RunStats::finalize`].
    pub(crate) fn run_collect(self) -> RunStats {
        let Simulation {
            mut core,
            mut policy,
        } = self;
        match &mut policy {
            PolicyCore::Random(p) => core.run(p),
            PolicyCore::RoundRobin(p) => core.run(p),
            PolicyCore::Jsq(p) => core.run(p),
            PolicyCore::Jiq(p) => core.run(p),
            PolicyCore::SqD(p) => core.run(p),
            PolicyCore::SqDReplace(p) => core.run(p),
            PolicyCore::SqDMemory(p) => core.run(p),
        }
        core.into_stats()
    }
}

impl Core {
    /// The earliest pending event under the deterministic tie rule:
    /// departures fire before a simultaneous arrival.
    #[inline]
    fn next_event(&self) -> NextEvent {
        let s = self.tree.min_server();
        if self.departure[s] <= self.next_arrival {
            NextEvent::Departure { server: s }
        } else {
            NextEvent::Arrival
        }
    }

    /// The monomorphized event loop: drives the simulation to its
    /// configured completion count with all policy dispatch inlined.
    fn run<P: DispatchCore>(&mut self, policy: &mut P) {
        while self.completed < self.config.jobs {
            self.step(policy);
        }
    }

    #[inline]
    fn step<P: DispatchCore>(&mut self, policy: &mut P) {
        let (event, time) = match self.next_event() {
            NextEvent::Departure { server } => {
                (NextEvent::Departure { server }, self.departure[server])
            }
            NextEvent::Arrival => (NextEvent::Arrival, self.next_arrival),
        };
        // Accumulate the time-averaged job count; the occupancy
        // histogram folds lazily inside `reclassify`.
        let dt = time - self.last_event_time;
        self.area_jobs += self.total_jobs as f64 * dt;
        self.last_event_time = time;
        self.clock = time;

        match event {
            NextEvent::Arrival => {
                self.arrivals_seen += 1;
                // Dispatch on the incrementally maintained lengths (and
                // buckets, for the policies that read them).
                let server = policy.pick(&mut self.rng, self.queues.lens(), &self.buckets);
                let old_len = self.queues.len(server);
                self.queues.push_back(server, self.clock);
                if P::NEEDS_BUCKETS {
                    self.buckets.on_push(server, old_len);
                }
                let qlen = old_len as usize + 1;
                self.reclassify(qlen - 1, qlen);
                self.total_jobs += 1;
                self.max_queue = self.max_queue.max(qlen as u32);
                if old_len == 0 {
                    self.schedule_departure(server);
                }
                // Next arrival.
                let gap = match self.map_sampler.as_mut() {
                    Some(s) => s.next_interarrival(&mut self.rng),
                    None => self.config.arrival.sample(&mut self.rng, self.arrival_rate),
                };
                self.next_arrival = self.clock + gap;
            }
            NextEvent::Departure { server } => {
                let arrived_at = self.queues.pop_front(server);
                let old_len = self.queues.len(server) + 1;
                if P::NEEDS_BUCKETS {
                    self.buckets.on_pop(server, old_len);
                }
                let qlen = old_len as usize - 1;
                self.reclassify(qlen + 1, qlen);
                self.total_jobs -= 1;
                self.completed += 1;
                if self.completed > self.config.warmup {
                    let sojourn = self.clock - arrived_at;
                    self.delay_stats.push(sojourn);
                    self.delay_hist.push(sojourn);
                }
                if qlen > 0 {
                    // Waiting time of the job now entering service.
                    let head_arrival = self.queues.front(server);
                    if self.completed > self.config.warmup {
                        self.wait_stats.push(self.clock - head_arrival);
                    }
                    self.schedule_departure(server);
                } else {
                    self.departure[server] = f64::INFINITY;
                    self.tree.update(&self.departure, server);
                }
            }
        }
    }

    /// Moves one server from occupancy `from` to `from ± 1` in the
    /// incremental histogram, folding the two touched levels' time
    /// integrals up to the current clock first.
    #[inline]
    fn reclassify(&mut self, from: usize, to: usize) {
        let need = from.max(to) + 1;
        if self.len_counts.len() < need {
            self.len_counts.resize(need, 0);
            self.area_hist.resize(need, 0.0);
            self.hist_stamp.resize(need, 0.0);
        }
        for l in [from, to] {
            self.area_hist[l] += f64::from(self.len_counts[l]) * (self.clock - self.hist_stamp[l]);
            self.hist_stamp[l] = self.clock;
        }
        self.len_counts[from] -= 1;
        self.len_counts[to] += 1;
    }

    #[inline]
    fn schedule_departure(&mut self, server: usize) {
        let mut service = self.config.service.sample(&mut self.rng);
        if let Some(speeds) = &self.config.speeds {
            service /= speeds[server];
        }
        self.departure[server] = self.clock + service;
        self.tree.update(&self.departure, server);
    }

    fn into_stats(mut self) -> RunStats {
        // Final fold: bring every level's lazy integral up to the end of
        // the simulated horizon.
        for l in 0..self.area_hist.len() {
            self.area_hist[l] += f64::from(self.len_counts[l]) * (self.clock - self.hist_stamp[l]);
            self.hist_stamp[l] = self.clock;
        }
        RunStats {
            n: self.config.n,
            delay_stats: self.delay_stats,
            delay_hist: self.delay_hist,
            wait_stats: self.wait_stats,
            area_hist: self.area_hist,
            area_jobs: self.area_jobs,
            clock: self.clock,
            max_queue: self.max_queue,
        }
    }
}

/// Raw accumulators of one completed run (or of several merged
/// replications): everything needed to produce a [`SimResult`], in a form
/// that is still mergeable.
#[derive(Debug, Clone)]
pub(crate) struct RunStats {
    n: usize,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    area_hist: Vec<f64>,
    area_jobs: f64,
    clock: f64,
    max_queue: u32,
}

impl RunStats {
    /// Folds an independent replication into this one. Sojourn/wait
    /// statistics pool their observations; time-averaged quantities
    /// (occupancy histogram, job-count integral) add their time integrals
    /// so the final averages weight each replication by its simulated
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics if the replications disagree on server count, batch size or
    /// histogram bin width — i.e. if they did not come from the same
    /// configuration.
    pub(crate) fn merge(&mut self, other: &RunStats) {
        assert_eq!(self.n, other.n, "replications disagree on server count");
        self.delay_stats.merge(&other.delay_stats);
        self.delay_hist.merge(&other.delay_hist);
        self.wait_stats.merge(&other.wait_stats);
        if self.area_hist.len() < other.area_hist.len() {
            self.area_hist.resize(other.area_hist.len(), 0.0);
        }
        for (a, &o) in self.area_hist.iter_mut().zip(&other.area_hist) {
            *a += o;
        }
        self.area_jobs += other.area_jobs;
        self.clock += other.clock;
        self.max_queue = self.max_queue.max(other.max_queue);
    }

    /// Collapses the accumulators into the user-facing [`SimResult`].
    pub(crate) fn finalize(self) -> SimResult {
        // Time-averaged tail fractions P(queue length >= k) from the
        // occupancy histogram.
        let n = self.n as f64;
        let queue_tail: Vec<f64> = if self.clock > 0.0 {
            let mut suffix = 0.0;
            let mut tail: Vec<f64> = self
                .area_hist
                .iter()
                .rev()
                .map(|a| {
                    suffix += a;
                    suffix / (self.clock * n)
                })
                .collect();
            tail.reverse();
            // Trim trailing zero-probability levels.
            while tail.len() > 1 && *tail.last().expect("nonempty") == 0.0 {
                tail.pop();
            }
            tail
        } else {
            vec![1.0]
        };
        SimResult {
            mean_delay: self.delay_stats.mean(),
            ci_halfwidth: self.delay_stats.ci_halfwidth(),
            mean_wait: self.wait_stats.mean(),
            jobs_measured: self.delay_stats.count(),
            mean_jobs_in_system: if self.clock > 0.0 {
                self.area_jobs / self.clock
            } else {
                0.0
            },
            max_queue_len: self.max_queue,
            queue_tail,
            delay_hist: self.delay_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    /// The tie rule of the flat event core, pinned: at equal timestamps
    /// a departure precedes the arrival — inherited from the seed
    /// engine, whose reversed heap `Ord` returned `Greater` for a
    /// departure against an equal-time arrival so the departure popped
    /// first. Among equal departure times the lowest server index fires
    /// first — new here: the seed `Ord` compared two departures as
    /// `Equal` and left their order to heap internals.
    #[test]
    fn tie_order_departure_before_arrival_lowest_server_first() {
        let cfg = SimConfig::new(3, 0.5).unwrap();
        let mut sim = Simulation::new(cfg);
        // Force a three-way tie by hand: two departures and the arrival
        // all at t = 1.0.
        sim.core.next_arrival = 1.0;
        sim.core.departure[1] = 1.0;
        sim.core.tree.update(&sim.core.departure, 1);
        sim.core.departure[2] = 1.0;
        sim.core.tree.update(&sim.core.departure, 2);
        assert_eq!(sim.core.next_event(), NextEvent::Departure { server: 1 });
        // The lower-indexed simultaneous departure wins; once it clears,
        // the next one fires, and only then the arrival.
        sim.core.departure[1] = f64::INFINITY;
        sim.core.tree.update(&sim.core.departure, 1);
        assert_eq!(sim.core.next_event(), NextEvent::Departure { server: 2 });
        sim.core.departure[2] = f64::INFINITY;
        sim.core.tree.update(&sim.core.departure, 2);
        assert_eq!(sim.core.next_event(), NextEvent::Arrival);
    }

    #[test]
    fn tournament_tree_tracks_minimum() {
        let n = 11; // deliberately not a power of two
        let mut dep = vec![f64::INFINITY; n];
        let mut tree = DepartureTree::new(n);
        assert_eq!(tree.min_server(), 0, "all-idle tie resolves to server 0");
        dep[7] = 3.0;
        tree.update(&dep, 7);
        assert_eq!(tree.min_server(), 7);
        dep[2] = 1.5;
        tree.update(&dep, 2);
        assert_eq!(tree.min_server(), 2);
        dep[10] = 1.5; // equal time: lower index keeps winning
        tree.update(&dep, 10);
        assert_eq!(tree.min_server(), 2);
        dep[2] = f64::INFINITY;
        tree.update(&dep, 2);
        assert_eq!(tree.min_server(), 10);
        dep[10] = f64::INFINITY;
        tree.update(&dep, 10);
        assert_eq!(tree.min_server(), 7);
    }

    #[test]
    fn conservation_no_lost_jobs() {
        let cfg = SimConfig::new(4, 0.8)
            .unwrap()
            .policy(Policy::SqD { d: 2 })
            .jobs(20_000)
            .warmup(1_000)
            .seed(11)
            .clone();
        let mut sim = Simulation::new(cfg);
        while sim.jobs_completed() < 20_000 {
            sim.step();
        }
        assert_eq!(
            sim.arrivals_seen() as usize,
            20_000 + sim.jobs_in_system(),
            "arrivals must equal departures plus in-flight jobs"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            SimConfig::new(3, 0.7)
                .unwrap()
                .policy(Policy::SqD { d: 2 })
                .jobs(30_000)
                .warmup(3_000)
                .seed(seed)
                .run()
                .unwrap()
                .mean_delay
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn stepwise_equals_monomorphized_run() {
        // The per-event `step` dispatch and the monomorphized `run`
        // loop must trace identical trajectories.
        let cfg = SimConfig::new(4, 0.85)
            .unwrap()
            .policy(Policy::Jsq)
            .jobs(15_000)
            .warmup(1_500)
            .seed(33)
            .clone();
        let via_run = cfg.run().unwrap();
        let mut sim = Simulation::new(cfg);
        while sim.jobs_completed() < 15_000 {
            sim.step();
        }
        let via_step = sim.run_collect().finalize();
        assert_eq!(via_step, via_run);
    }
}
