//! The discrete-event simulation engine.
//!
//! Classic event-list design: a binary heap of timestamped events
//! (arrivals and departures), per-server FIFO job queues storing arrival
//! timestamps, and streaming statistics. Because service is FIFO within a
//! server, only the head-of-line job of each server needs a scheduled
//! departure event; queued jobs are scheduled when they reach the head.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::{SimConfig, SimResult};
use crate::map_arrivals::MapSampler;
use crate::policy::Dispatcher;
use crate::stats::{BatchMeans, DelayHistogram, Welford};

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival,
    Departure { server: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time via reversed comparison; ties broken so
        // departures precede arrivals (matters only for zero-probability
        // simultaneous events, but keeps the order deterministic).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| match (self.kind, other.kind) {
                (EventKind::Departure { .. }, EventKind::Arrival) => Ordering::Greater,
                (EventKind::Arrival, EventKind::Departure { .. }) => Ordering::Less,
                _ => Ordering::Equal,
            })
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A running simulation; usually driven to completion via
/// [`SimConfig::run`], but exposed for step-wise inspection in tests and
/// examples.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    rng: SmallRng,
    dispatcher: Dispatcher,
    /// Stateful MAP sampler when the configuration carries one.
    map_sampler: Option<MapSampler>,
    events: BinaryHeap<Event>,
    /// Arrival timestamps of the jobs in each server's FIFO queue
    /// (head = in service).
    queues: Vec<VecDeque<f64>>,
    clock: f64,
    arrivals_seen: u64,
    completed: u64,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    /// Total jobs in the system, maintained incrementally.
    total_jobs: usize,
    /// `len_counts[l]` = number of servers currently holding exactly `l`
    /// jobs, maintained incrementally.
    len_counts: Vec<u32>,
    /// `area_hist[l]` = time-integral of `len_counts[l]`.
    area_hist: Vec<f64>,
    /// Time-averaged total queue length accumulator.
    area_jobs: f64,
    last_event_time: f64,
    max_queue: u32,
}

impl Simulation {
    /// Initializes the simulation (first arrival scheduled).
    pub(crate) fn new(config: SimConfig) -> Self {
        let n = config.n;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut map_sampler = config.map.as_ref().map(|m| MapSampler::new(m, &mut rng));
        let mut events = BinaryHeap::with_capacity(n + 2);
        let rate = config.lambda * n as f64;
        let first = match map_sampler.as_mut() {
            Some(s) => s.next_interarrival(&mut rng),
            None => config.arrival.sample(&mut rng, rate),
        };
        events.push(Event {
            time: first,
            kind: EventKind::Arrival,
        });
        let batch = (config.jobs.saturating_sub(config.warmup) / 64).max(1);
        let mut len_counts = vec![0u32; 8];
        len_counts[0] = n as u32;
        Simulation {
            dispatcher: Dispatcher::new(config.policy, n),
            map_sampler,
            rng,
            events,
            queues: vec![VecDeque::new(); n],
            clock: 0.0,
            arrivals_seen: 0,
            completed: 0,
            delay_stats: BatchMeans::new(batch),
            delay_hist: DelayHistogram::new(0.02),
            wait_stats: Welford::new(),
            total_jobs: 0,
            len_counts,
            area_hist: vec![0.0; 8],
            area_jobs: 0.0,
            last_event_time: 0.0,
            max_queue: 0,
            config,
        }
    }

    /// Total jobs currently in the system.
    pub fn jobs_in_system(&self) -> usize {
        self.total_jobs
    }

    /// Moves one server from occupancy `from` to `from ± 1` in the
    /// incremental histogram.
    fn reclassify(&mut self, from: usize, to: usize) {
        let need = from.max(to) + 1;
        if self.len_counts.len() < need {
            self.len_counts.resize(need, 0);
            self.area_hist.resize(need, 0.0);
        }
        self.len_counts[from] -= 1;
        self.len_counts[to] += 1;
    }

    /// Runs to completion and returns the collected statistics.
    pub(crate) fn run_to_end(self) -> SimResult {
        self.run_collect().finalize()
    }

    /// Runs to completion, returning the raw accumulators — the
    /// replication-level output that [`RunStats::merge`] folds across
    /// independent runs before a single [`RunStats::finalize`].
    pub(crate) fn run_collect(mut self) -> RunStats {
        while self.completed < self.config.jobs {
            self.step();
        }
        RunStats {
            n: self.config.n,
            delay_stats: self.delay_stats,
            delay_hist: self.delay_hist,
            wait_stats: self.wait_stats,
            area_hist: self.area_hist,
            area_jobs: self.area_jobs,
            clock: self.clock,
            max_queue: self.max_queue,
        }
    }

    fn step(&mut self) {
        let ev = self.events.pop().expect("event list never empties");
        // Accumulate the time-averaged job count and occupancy histogram.
        let dt = ev.time - self.last_event_time;
        self.area_jobs += self.total_jobs as f64 * dt;
        if dt > 0.0 {
            for (a, &c) in self.area_hist.iter_mut().zip(&self.len_counts) {
                if c > 0 {
                    *a += f64::from(c) * dt;
                }
            }
        }
        self.last_event_time = ev.time;
        self.clock = ev.time;

        match ev.kind {
            EventKind::Arrival => {
                self.arrivals_seen += 1;
                // Dispatch.
                let lens: Vec<u32> = self.queues.iter().map(|q| q.len() as u32).collect();
                let server = self.dispatcher.dispatch(&mut self.rng, &lens);
                let was_idle = self.queues[server].is_empty();
                self.queues[server].push_back(self.clock);
                let qlen = self.queues[server].len();
                self.reclassify(qlen - 1, qlen);
                self.total_jobs += 1;
                self.max_queue = self.max_queue.max(qlen as u32);
                if was_idle {
                    self.schedule_departure(server);
                }
                // Next arrival.
                let rate = self.config.lambda * self.config.n as f64;
                let gap = match self.map_sampler.as_mut() {
                    Some(s) => s.next_interarrival(&mut self.rng),
                    None => self.config.arrival.sample(&mut self.rng, rate),
                };
                self.events.push(Event {
                    time: self.clock + gap,
                    kind: EventKind::Arrival,
                });
            }
            EventKind::Departure { server } => {
                let arrived_at = self.queues[server]
                    .pop_front()
                    .expect("departure from nonempty queue");
                let qlen = self.queues[server].len();
                self.reclassify(qlen + 1, qlen);
                self.total_jobs -= 1;
                self.completed += 1;
                if self.completed > self.config.warmup {
                    let sojourn = self.clock - arrived_at;
                    self.delay_stats.push(sojourn);
                    self.delay_hist.push(sojourn);
                }
                if !self.queues[server].is_empty() {
                    // Waiting time of the job now entering service.
                    let head_arrival = self.queues[server][0];
                    if self.completed > self.config.warmup {
                        self.wait_stats.push(self.clock - head_arrival);
                    }
                    self.schedule_departure(server);
                }
            }
        }
    }

    fn schedule_departure(&mut self, server: usize) {
        let mut service = self.config.service.sample(&mut self.rng);
        if let Some(speeds) = &self.config.speeds {
            service /= speeds[server];
        }
        self.events.push(Event {
            time: self.clock + service,
            kind: EventKind::Departure { server },
        });
    }
}

/// Raw accumulators of one completed run (or of several merged
/// replications): everything needed to produce a [`SimResult`], in a form
/// that is still mergeable.
#[derive(Debug, Clone)]
pub(crate) struct RunStats {
    n: usize,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    area_hist: Vec<f64>,
    area_jobs: f64,
    clock: f64,
    max_queue: u32,
}

impl RunStats {
    /// Folds an independent replication into this one. Sojourn/wait
    /// statistics pool their observations; time-averaged quantities
    /// (occupancy histogram, job-count integral) add their time integrals
    /// so the final averages weight each replication by its simulated
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics if the replications disagree on server count, batch size or
    /// histogram bin width — i.e. if they did not come from the same
    /// configuration.
    pub(crate) fn merge(&mut self, other: &RunStats) {
        assert_eq!(self.n, other.n, "replications disagree on server count");
        self.delay_stats.merge(&other.delay_stats);
        self.delay_hist.merge(&other.delay_hist);
        self.wait_stats.merge(&other.wait_stats);
        if self.area_hist.len() < other.area_hist.len() {
            self.area_hist.resize(other.area_hist.len(), 0.0);
        }
        for (a, &o) in self.area_hist.iter_mut().zip(&other.area_hist) {
            *a += o;
        }
        self.area_jobs += other.area_jobs;
        self.clock += other.clock;
        self.max_queue = self.max_queue.max(other.max_queue);
    }

    /// Collapses the accumulators into the user-facing [`SimResult`].
    pub(crate) fn finalize(self) -> SimResult {
        // Time-averaged tail fractions P(queue length >= k) from the
        // occupancy histogram.
        let n = self.n as f64;
        let queue_tail: Vec<f64> = if self.clock > 0.0 {
            let mut suffix = 0.0;
            let mut tail: Vec<f64> = self
                .area_hist
                .iter()
                .rev()
                .map(|a| {
                    suffix += a;
                    suffix / (self.clock * n)
                })
                .collect();
            tail.reverse();
            // Trim trailing zero-probability levels.
            while tail.len() > 1 && *tail.last().expect("nonempty") == 0.0 {
                tail.pop();
            }
            tail
        } else {
            vec![1.0]
        };
        SimResult {
            mean_delay: self.delay_stats.mean(),
            ci_halfwidth: self.delay_stats.ci_halfwidth(),
            mean_wait: self.wait_stats.mean(),
            jobs_measured: self.delay_stats.count(),
            mean_jobs_in_system: if self.clock > 0.0 {
                self.area_jobs / self.clock
            } else {
                0.0
            },
            max_queue_len: self.max_queue,
            queue_tail,
            delay_hist: self.delay_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    #[test]
    fn event_ordering_is_time_then_kind() {
        let a = Event {
            time: 1.0,
            kind: EventKind::Arrival,
        };
        let d = Event {
            time: 1.0,
            kind: EventKind::Departure { server: 0 },
        };
        let later = Event {
            time: 2.0,
            kind: EventKind::Arrival,
        };
        let mut heap = BinaryHeap::new();
        heap.push(later);
        heap.push(a);
        heap.push(d);
        assert_eq!(heap.pop().unwrap(), d); // departure first at equal time
        assert_eq!(heap.pop().unwrap(), a);
        assert_eq!(heap.pop().unwrap(), later);
    }

    #[test]
    fn conservation_no_lost_jobs() {
        let cfg = SimConfig::new(4, 0.8)
            .unwrap()
            .policy(Policy::SqD { d: 2 })
            .jobs(20_000)
            .warmup(1_000)
            .seed(11)
            .clone();
        let mut sim = Simulation::new(cfg);
        while sim.completed < 20_000 {
            sim.step();
        }
        assert_eq!(
            sim.arrivals_seen as usize,
            20_000 + sim.jobs_in_system(),
            "arrivals must equal departures plus in-flight jobs"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            SimConfig::new(3, 0.7)
                .unwrap()
                .policy(Policy::SqD { d: 2 })
                .jobs(30_000)
                .warmup(3_000)
                .seed(seed)
                .run()
                .unwrap()
                .mean_delay
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
