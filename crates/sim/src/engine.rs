//! The discrete-event simulation engine.
//!
//! The hot path is a *flat next-event core* instead of the classic
//! binary-heap event list. Because service is FIFO within a server, only
//! the head-of-line job of each server ever has a scheduled departure, so
//! at any instant exactly `N + 1` candidate events exist: one pending
//! arrival plus one next-departure per server (`+∞` when idle). The
//! engine keeps the departures in the leaves of an indexed tournament
//! tree whose nodes cache the winning *time* next to the winning
//! index, so match re-runs compare sibling nodes directly with no
//! dependent-load chain through a separate departure array — O(log N)
//! when a server's departure changes, O(1) to find the earliest, zero
//! allocation and no heap churn.
//!
//! Tie rule (also pinned by a unit test below): at equal timestamps a
//! **departure precedes the arrival** — the rule the seed engine's
//! reversed heap `Ord` encoded. Among simultaneous departures the
//! lowest server index fires first; that half is *stricter* than the
//! seed engine, whose `Ord` returned `Equal` for two departures and
//! left their pop order to heap internals. These are zero-probability
//! events under continuous laws; the rule only keeps replay
//! deterministic.
//!
//! Per-server FIFO queues live in one contiguous ring arena
//! ([`crate::queue::Queues`]), queue lengths are maintained
//! incrementally, and the event loop is monomorphized per dispatch
//! policy ([`crate::policy::DispatchCore`]), with per-length server
//! buckets maintained only for the policies that read them (JSQ/JIQ).
//!
//! The per-event *cost model* is batched. Service times and renewal
//! interarrival gaps are not sampled one at a time: refill buffers of
//! `DRAW_BLOCK` variates are filled through the ziggurat block path
//! ([`crate::distributions`]) so the distribution dispatch, table
//! resolution and scale factors are paid per block, and the hot loop's
//! "draw" is an array read plus a cursor bump. (A stateful MAP arrival
//! stream cannot be pre-drawn and keeps the scalar path.) Symmetrically,
//! measured sojourn/wait observations are not folded into
//! Welford/batch-means/histogram accumulators per event: they land in
//! flat scratch buffers with plain stores and are reduced in bulk at
//! block boundaries ([`crate::stats`] block APIs), so the loop body
//! carries no dividing, serially-dependent statistics chains.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use slb_linalg::Budget;

use crate::config::{SimConfig, SimResult};
use crate::map_arrivals::MapSampler;
use crate::policy::{DispatchCore, PolicyCore};
use crate::queue::{Buckets, Queues};
use crate::stats::{BatchMeans, DelayHistogram, Welford};

/// The earliest pending event of the flat core (diagnostics and the
/// tie-order test; the monomorphized loop branches directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NextEvent {
    Arrival,
    Departure { server: usize },
}

/// Indexed tournament tree over the per-server next-departure times:
/// a perfect binary tree whose internal nodes hold the earlier child's
/// `(time, index)`, left-biased on ties so equal departure times
/// resolve to the lowest server index.
#[derive(Debug, Clone)]
struct DepartureTree {
    /// `node[1]` = overall winner; leaves occupy `[base, base + n)`.
    /// Padding leaves hold `(+∞, NO_SERVER)`.
    node: Vec<TreeNode>,
    /// Leaf offset (power of two, `≥ n`).
    base: usize,
}

/// One tournament-tree node: the winning departure time with the server
/// index it belongs to, cached together so match re-runs never touch
/// the departure array.
#[derive(Debug, Clone, Copy)]
struct TreeNode {
    time: f64,
    idx: u32,
}

const NO_SERVER: u32 = u32::MAX;

/// One occupancy level of the incremental queue-length histogram,
/// event-sourced: alongside the live server count it accumulates
/// `Σ Δcount · t_event`, from which the exact time-integral falls out
/// at the end of the run as `∫ count dt = T·count(T) − Σ Δ·t` — so the
/// per-event maintenance is one add and one increment per touched
/// level, with no interval folding, no stamps and no multiplies on the
/// hot path.
#[derive(Debug, Clone, Copy, Default)]
struct OccLevel {
    /// Servers currently holding exactly this many jobs.
    count: u32,
    /// `Σ Δcount · t_event` over all count changes so far.
    sum_td: f64,
}

/// Variates pre-drawn per refill of the service / interarrival buffers
/// (2 KiB of f64 each — comfortably L1-resident next to the queue
/// arena).
const DRAW_BLOCK: usize = 256;

/// Measured observations buffered per scratch before a bulk reduction
/// into the statistics accumulators.
const STAT_BLOCK: usize = 1024;

impl DepartureTree {
    fn new(n: usize) -> Self {
        let base = n.next_power_of_two();
        let mut node = vec![
            TreeNode {
                time: f64::INFINITY,
                idx: NO_SERVER,
            };
            2 * base
        ];
        for s in 0..n {
            node[base + s].idx = s as u32;
        }
        // All departures start at +∞; left bias makes server 0 the
        // initial winner everywhere.
        for i in (1..base).rev() {
            node[i] = node[2 * i];
        }
        DepartureTree { node, base }
    }

    /// The winning node: the earliest departure time with its server
    /// (ties → lowest index; all idle → `(+∞, server 0)`).
    #[inline]
    fn min(&self) -> TreeNode {
        self.node[1]
    }

    /// The server with the earliest departure (ties → lowest index).
    #[cfg(test)]
    fn min_server(&self) -> usize {
        self.node[1].idx as usize
    }

    /// Re-runs the matches on the path above server `s` after its
    /// departure time changed to `time`.
    #[inline]
    fn update(&mut self, time: f64, s: usize) {
        let leaf = self.base + s;
        self.node[leaf].time = time;
        let mut i = leaf >> 1;
        while i >= 1 {
            let l = self.node[2 * i];
            let r = self.node[2 * i + 1];
            // Strict `<` keeps the left child on ties: lower server
            // indices and real servers (over padding) win.
            self.node[i] = if r.time < l.time { r } else { l };
            i >>= 1;
        }
    }
}

/// A running simulation; usually driven to completion via
/// [`SimConfig::run`], but exposed for step-wise inspection in tests and
/// examples.
#[derive(Debug)]
pub struct Simulation {
    core: Core,
    policy: PolicyCore,
}

/// Everything of the simulation except the dispatch policy, so the
/// event loop can be monomorphized over the policy type while the
/// public [`Simulation`] stays a single concrete type.
#[derive(Debug)]
struct Core {
    config: SimConfig,
    rng: SmallRng,
    /// Stateful MAP sampler when the configuration carries one.
    map_sampler: Option<MapSampler>,
    /// Total arrival rate `λN` (ignored when a MAP drives arrivals).
    arrival_rate: f64,
    /// Time of the one pending arrival.
    next_arrival: f64,
    /// Refill buffer of pre-drawn raw service times (before the
    /// per-server speed scaling); exhausted when `service_pos` reaches
    /// the buffer length.
    service_buf: Vec<f64>,
    service_pos: usize,
    /// Refill buffer of pre-drawn interarrival gaps; left empty when a
    /// stateful MAP drives arrivals (that path cannot be pre-drawn).
    arrival_buf: Vec<f64>,
    arrival_pos: usize,
    /// Precomputed `1 / speeds[s]` so heterogeneous scaling is a
    /// multiply in the hot path.
    inv_speeds: Option<Vec<f64>>,
    /// Post-warmup sojourn observations awaiting a bulk reduction.
    sojourn_scratch: Vec<f64>,
    /// Post-warmup waiting-time observations awaiting a bulk reduction.
    wait_scratch: Vec<f64>,
    /// Per-server next departures, reduced by the tournament tree; a
    /// server's current departure time lives in its leaf (`+∞` when
    /// idle).
    tree: DepartureTree,
    /// Arrival timestamps of queued jobs (head = in service).
    queues: Queues,
    /// Per-length server buckets; maintained only when the policy's
    /// `NEEDS_BUCKETS` is set.
    buckets: Buckets,
    clock: f64,
    arrivals_seen: u64,
    completed: u64,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    /// Total jobs in the system, maintained incrementally.
    total_jobs: usize,
    /// Occupancy level `l`'s live state, event-sourced (see
    /// [`OccLevel`]). The time-averaged *total* job count needs no
    /// accumulator of its own: it is recovered as `Σ l · area(l)` at
    /// the end of the run.
    levels: Vec<OccLevel>,
    max_queue: u32,
}

impl Simulation {
    /// Initializes the simulation (first arrival scheduled).
    pub(crate) fn new(config: SimConfig) -> Self {
        let n = config.n;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut map_sampler = config.map.as_ref().map(|m| MapSampler::new(m, &mut rng));
        let arrival_rate = config.lambda * n as f64;
        let first = match map_sampler.as_mut() {
            Some(s) => s.next_interarrival(&mut rng),
            None => config.arrival.sample(&mut rng, arrival_rate),
        };
        let batch = (config.jobs.saturating_sub(config.warmup) / 64).max(1);
        let mut levels = vec![OccLevel::default(); 8];
        levels[0].count = n as u32;
        let policy = PolicyCore::new(config.policy, n);
        let needs_buckets = policy.needs_buckets();
        // Buffers start exhausted (`pos == len`) so the first draw
        // triggers a refill; the MAP path never reads the arrival
        // buffer, so it stays empty there.
        let arrival_buf = if map_sampler.is_some() {
            Vec::new()
        } else {
            vec![0.0; DRAW_BLOCK]
        };
        let arrival_pos = arrival_buf.len();
        let inv_speeds = config
            .speeds
            .as_ref()
            .map(|s| s.iter().map(|&v| 1.0 / v).collect());
        Simulation {
            core: Core {
                rng,
                map_sampler,
                arrival_rate,
                next_arrival: first,
                service_buf: vec![0.0; DRAW_BLOCK],
                service_pos: DRAW_BLOCK,
                arrival_buf,
                arrival_pos,
                inv_speeds,
                sojourn_scratch: Vec::with_capacity(STAT_BLOCK),
                wait_scratch: Vec::with_capacity(STAT_BLOCK),
                tree: DepartureTree::new(n),
                queues: Queues::new(n),
                buckets: if needs_buckets {
                    Buckets::new(n)
                } else {
                    Buckets::default()
                },
                clock: 0.0,
                arrivals_seen: 0,
                completed: 0,
                delay_stats: BatchMeans::new(batch),
                delay_hist: DelayHistogram::new(0.02),
                wait_stats: Welford::new(),
                total_jobs: 0,
                levels,
                max_queue: 0,
                config,
            },
            policy,
        }
    }

    /// Total jobs currently in the system.
    pub fn jobs_in_system(&self) -> usize {
        self.core.total_jobs
    }

    /// Completed jobs so far.
    pub fn jobs_completed(&self) -> u64 {
        self.core.completed
    }

    /// Arrivals observed so far.
    pub fn arrivals_seen(&self) -> u64 {
        self.core.arrivals_seen
    }

    /// Advances the simulation by one event (tests and step-wise
    /// inspection; [`SimConfig::run`] drives the monomorphized loop
    /// instead).
    pub fn step(&mut self) {
        match &mut self.policy {
            PolicyCore::Random(p) => self.core.step(p),
            PolicyCore::RoundRobin(p) => self.core.step(p),
            PolicyCore::Jsq(p) => self.core.step(p),
            PolicyCore::Jiq(p) => self.core.step(p),
            PolicyCore::SqD(p) => self.core.step(p),
            PolicyCore::SqDReplace(p) => self.core.step(p),
            PolicyCore::SqDMemory(p) => self.core.step(p),
        }
    }

    /// Runs to completion and returns the collected statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::Interrupted`](crate::SimError::Interrupted) when
    /// `budget` trips mid-run.
    pub(crate) fn run_to_end(self, budget: &Budget) -> crate::Result<SimResult> {
        Ok(self.run_collect(budget)?.finalize())
    }

    /// Runs to completion, returning the raw accumulators — the
    /// replication-level output that [`RunStats::merge`] folds across
    /// independent runs before a single [`RunStats::finalize`].
    ///
    /// # Errors
    ///
    /// [`SimError::Interrupted`](crate::SimError::Interrupted) when
    /// `budget` trips mid-run.
    pub(crate) fn run_collect(self, budget: &Budget) -> crate::Result<RunStats> {
        let Simulation {
            mut core,
            mut policy,
        } = self;
        match &mut policy {
            PolicyCore::Random(p) => core.run(p, budget),
            PolicyCore::RoundRobin(p) => core.run(p, budget),
            PolicyCore::Jsq(p) => core.run(p, budget),
            PolicyCore::Jiq(p) => core.run(p, budget),
            PolicyCore::SqD(p) => core.run(p, budget),
            PolicyCore::SqDReplace(p) => core.run(p, budget),
            PolicyCore::SqDMemory(p) => core.run(p, budget),
        }?;
        Ok(core.into_stats())
    }
}

impl Core {
    /// The earliest pending event under the deterministic tie rule:
    /// departures fire before a simultaneous arrival. `step` inlines
    /// this comparison to reuse the winning time; tests call it to
    /// probe event order directly.
    #[cfg(test)]
    fn next_event(&self) -> NextEvent {
        let w = self.tree.min();
        if w.time <= self.next_arrival {
            NextEvent::Departure {
                server: w.idx as usize,
            }
        } else {
            NextEvent::Arrival
        }
    }

    /// The monomorphized event loop: drives the simulation to its
    /// configured completion count with all policy dispatch inlined.
    ///
    /// The budget is polled once per `4096` events — long sweeps at
    /// production job counts run minutes, and the poll keeps them
    /// responsive to deadlines and SIGINT without a measurable per-event
    /// cost (one counter increment on the fast path).
    fn run<P: DispatchCore>(&mut self, policy: &mut P, budget: &Budget) -> crate::Result<()> {
        const EVENT_BATCH: u32 = 4096;
        let mut batch: u32 = 0;
        while self.completed < self.config.jobs {
            self.step(policy);
            batch += 1;
            if batch == EVENT_BATCH {
                batch = 0;
                if let Err(e) = budget.check("simulation", self.completed as usize, f64::NAN) {
                    let elapsed = match e {
                        slb_linalg::LinalgError::Interrupted { elapsed, .. } => elapsed,
                        _ => std::time::Duration::ZERO,
                    };
                    return Err(crate::SimError::Interrupted {
                        events: self.completed,
                        elapsed_ms: elapsed.as_millis() as u64,
                    });
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn step<P: DispatchCore>(&mut self, policy: &mut P) {
        let w = self.tree.min();
        let (event, time) = if w.time <= self.next_arrival {
            (
                NextEvent::Departure {
                    server: w.idx as usize,
                },
                w.time,
            )
        } else {
            (NextEvent::Arrival, self.next_arrival)
        };
        self.clock = time;

        match event {
            NextEvent::Arrival => {
                self.arrivals_seen += 1;
                // Dispatch on the incrementally maintained lengths (and
                // buckets, for the policies that read them).
                let server = policy.pick(&mut self.rng, self.queues.lens(), &self.buckets);
                let old_len = self.queues.len(server);
                self.queues.push_back(server, self.clock);
                if P::NEEDS_BUCKETS {
                    self.buckets.on_push(server, old_len);
                }
                let qlen = old_len as usize + 1;
                self.reclassify(qlen - 1, qlen);
                self.total_jobs += 1;
                self.max_queue = self.max_queue.max(qlen as u32);
                if old_len == 0 {
                    self.schedule_departure(server);
                }
                // Next arrival: from the pre-drawn gap buffer, except
                // for the stateful MAP path.
                let gap = match &mut self.map_sampler {
                    Some(s) => s.next_interarrival(&mut self.rng),
                    None => {
                        if self.arrival_pos == self.arrival_buf.len() {
                            self.config.arrival.fill(
                                &mut self.rng,
                                self.arrival_rate,
                                &mut self.arrival_buf,
                            );
                            self.arrival_pos = 0;
                        }
                        let g = self.arrival_buf[self.arrival_pos];
                        self.arrival_pos += 1;
                        g
                    }
                };
                self.next_arrival = self.clock + gap;
            }
            NextEvent::Departure { server } => {
                let arrived_at = self.queues.pop_front(server);
                let old_len = self.queues.len(server) + 1;
                if P::NEEDS_BUCKETS {
                    self.buckets.on_pop(server, old_len);
                }
                let qlen = old_len as usize - 1;
                self.reclassify(qlen + 1, qlen);
                self.total_jobs -= 1;
                self.completed += 1;
                if self.completed > self.config.warmup {
                    self.sojourn_scratch.push(self.clock - arrived_at);
                    if self.sojourn_scratch.len() == STAT_BLOCK {
                        self.flush_sojourns();
                    }
                }
                if qlen > 0 {
                    // Waiting time of the job now entering service.
                    let head_arrival = self.queues.front(server);
                    if self.completed > self.config.warmup {
                        self.wait_scratch.push(self.clock - head_arrival);
                        if self.wait_scratch.len() == STAT_BLOCK {
                            self.flush_waits();
                        }
                    }
                    self.schedule_departure(server);
                } else {
                    self.tree.update(f64::INFINITY, server);
                }
            }
        }
    }

    /// Moves one server from occupancy `from` to `from ± 1` in the
    /// incremental histogram: a signed timestamp accumulation per
    /// touched level.
    #[inline]
    fn reclassify(&mut self, from: usize, to: usize) {
        let need = from.max(to) + 1;
        if self.levels.len() < need {
            self.levels.resize(need, OccLevel::default());
        }
        let lv = &mut self.levels[from];
        lv.sum_td -= self.clock;
        lv.count -= 1;
        let lv = &mut self.levels[to];
        lv.sum_td += self.clock;
        lv.count += 1;
    }

    #[inline]
    fn schedule_departure(&mut self, server: usize) {
        if self.service_pos == self.service_buf.len() {
            self.config
                .service
                .fill(&mut self.rng, &mut self.service_buf);
            self.service_pos = 0;
        }
        let mut service = self.service_buf[self.service_pos];
        self.service_pos += 1;
        if let Some(inv) = &self.inv_speeds {
            service *= inv[server];
        }
        self.tree.update(self.clock + service, server);
    }

    /// Bulk-reduces the sojourn scratch into the batch-means and
    /// histogram accumulators.
    fn flush_sojourns(&mut self) {
        self.delay_stats.push_block(&self.sojourn_scratch);
        self.delay_hist.push_block(&self.sojourn_scratch);
        self.sojourn_scratch.clear();
    }

    /// Bulk-reduces the waiting-time scratch into its accumulator.
    fn flush_waits(&mut self) {
        self.wait_stats.push_block(&self.wait_scratch);
        self.wait_scratch.clear();
    }

    fn into_stats(mut self) -> RunStats {
        // Drain the partial statistics scratches before reading any
        // accumulator.
        self.flush_sojourns();
        self.flush_waits();
        // Recover each level's time-integral from its event-sourced
        // accumulator: ∫ count dt = T·count(T) − Σ Δ·t. Rounding can
        // leave a tiny negative where the true integral is ~0; clamp.
        let area_hist: Vec<f64> = self
            .levels
            .iter()
            .map(|lv| (self.clock * f64::from(lv.count) - lv.sum_td).max(0.0))
            .collect();
        // ∫ total_jobs dt falls out of the histogram: level l holds
        // count_l servers, and Σ_l l·count_l is the total job count.
        let area_jobs = area_hist
            .iter()
            .enumerate()
            .map(|(l, &a)| l as f64 * a)
            .sum();
        RunStats {
            n: self.config.n,
            delay_stats: self.delay_stats,
            delay_hist: self.delay_hist,
            wait_stats: self.wait_stats,
            area_hist,
            area_jobs,
            clock: self.clock,
            max_queue: self.max_queue,
        }
    }
}

/// Raw accumulators of one completed run (or of several merged
/// replications): everything needed to produce a [`SimResult`], in a form
/// that is still mergeable.
#[derive(Debug, Clone)]
pub(crate) struct RunStats {
    n: usize,
    delay_stats: BatchMeans,
    delay_hist: DelayHistogram,
    wait_stats: Welford,
    area_hist: Vec<f64>,
    area_jobs: f64,
    clock: f64,
    max_queue: u32,
}

impl RunStats {
    /// Folds an independent replication into this one. Sojourn/wait
    /// statistics pool their observations; time-averaged quantities
    /// (occupancy histogram, job-count integral) add their time integrals
    /// so the final averages weight each replication by its simulated
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics if the replications disagree on server count, batch size or
    /// histogram bin width — i.e. if they did not come from the same
    /// configuration.
    pub(crate) fn merge(&mut self, other: &RunStats) {
        assert_eq!(self.n, other.n, "replications disagree on server count");
        self.delay_stats.merge(&other.delay_stats);
        self.delay_hist.merge(&other.delay_hist);
        self.wait_stats.merge(&other.wait_stats);
        if self.area_hist.len() < other.area_hist.len() {
            self.area_hist.resize(other.area_hist.len(), 0.0);
        }
        for (a, &o) in self.area_hist.iter_mut().zip(&other.area_hist) {
            *a += o;
        }
        self.area_jobs += other.area_jobs;
        self.clock += other.clock;
        self.max_queue = self.max_queue.max(other.max_queue);
    }

    /// Collapses the accumulators into the user-facing [`SimResult`].
    pub(crate) fn finalize(self) -> SimResult {
        // Time-averaged tail fractions P(queue length >= k) from the
        // occupancy histogram.
        let n = self.n as f64;
        let queue_tail: Vec<f64> = if self.clock > 0.0 {
            let mut suffix = 0.0;
            let mut tail: Vec<f64> = self
                .area_hist
                .iter()
                .rev()
                .map(|a| {
                    suffix += a;
                    suffix / (self.clock * n)
                })
                .collect();
            tail.reverse();
            // Trim trailing zero-probability levels.
            while tail.len() > 1 && *tail.last().expect("nonempty") == 0.0 {
                tail.pop();
            }
            tail
        } else {
            vec![1.0]
        };
        SimResult {
            mean_delay: self.delay_stats.mean(),
            ci_halfwidth: self.delay_stats.ci_halfwidth(),
            mean_wait: self.wait_stats.mean(),
            jobs_measured: self.delay_stats.count(),
            mean_jobs_in_system: if self.clock > 0.0 {
                self.area_jobs / self.clock
            } else {
                0.0
            },
            max_queue_len: self.max_queue,
            queue_tail,
            delay_hist: self.delay_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    /// The tie rule of the flat event core, pinned: at equal timestamps
    /// a departure precedes the arrival — inherited from the seed
    /// engine, whose reversed heap `Ord` returned `Greater` for a
    /// departure against an equal-time arrival so the departure popped
    /// first. Among equal departure times the lowest server index fires
    /// first — new here: the seed `Ord` compared two departures as
    /// `Equal` and left their order to heap internals.
    #[test]
    fn tie_order_departure_before_arrival_lowest_server_first() {
        let cfg = SimConfig::new(3, 0.5).unwrap();
        let mut sim = Simulation::new(cfg);
        // Force a three-way tie by hand: two departures and the arrival
        // all at t = 1.0.
        sim.core.next_arrival = 1.0;
        sim.core.tree.update(1.0, 1);
        sim.core.tree.update(1.0, 2);
        assert_eq!(sim.core.next_event(), NextEvent::Departure { server: 1 });
        // The lower-indexed simultaneous departure wins; once it clears,
        // the next one fires, and only then the arrival.
        sim.core.tree.update(f64::INFINITY, 1);
        assert_eq!(sim.core.next_event(), NextEvent::Departure { server: 2 });
        sim.core.tree.update(f64::INFINITY, 2);
        assert_eq!(sim.core.next_event(), NextEvent::Arrival);
    }

    /// The time-caching tree against a brute-force argmin on a random
    /// update stream, pinning the lowest-index tie rule at several
    /// (non-power-of-two) sizes.
    #[test]
    fn tree_agrees_with_brute_force() {
        use rand::Rng;
        for n in [1usize, 3, 11, 64, 65, 200] {
            let mut dep = vec![f64::INFINITY; n];
            let mut tree = DepartureTree::new(n);
            let mut rng = SmallRng::seed_from_u64(n as u64);
            for round in 0..500 {
                let s = rng.gen_range(0..n);
                // Coarse grid so equal times actually occur; every
                // fourth round parks the server at +∞.
                dep[s] = if round % 4 == 3 {
                    f64::INFINITY
                } else {
                    f64::from(rng.gen_range(0u32..8))
                };
                tree.update(dep[s], s);
                let brute = dep
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap();
                assert_eq!(tree.min_server(), brute, "tree, n={n}");
            }
        }
    }

    #[test]
    fn tournament_tree_tracks_minimum() {
        let n = 11; // deliberately not a power of two
        let mut tree = DepartureTree::new(n);
        assert_eq!(tree.min_server(), 0, "all-idle tie resolves to server 0");
        tree.update(3.0, 7);
        assert_eq!(tree.min_server(), 7);
        tree.update(1.5, 2);
        assert_eq!(tree.min_server(), 2);
        tree.update(1.5, 10); // equal time: lower index keeps winning
        assert_eq!(tree.min_server(), 2);
        tree.update(f64::INFINITY, 2);
        assert_eq!(tree.min_server(), 10);
        tree.update(f64::INFINITY, 10);
        assert_eq!(tree.min_server(), 7);
    }

    #[test]
    fn conservation_no_lost_jobs() {
        let cfg = SimConfig::new(4, 0.8)
            .unwrap()
            .policy(Policy::SqD { d: 2 })
            .jobs(20_000)
            .warmup(1_000)
            .seed(11)
            .clone();
        let mut sim = Simulation::new(cfg);
        while sim.jobs_completed() < 20_000 {
            sim.step();
        }
        assert_eq!(
            sim.arrivals_seen() as usize,
            20_000 + sim.jobs_in_system(),
            "arrivals must equal departures plus in-flight jobs"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            SimConfig::new(3, 0.7)
                .unwrap()
                .policy(Policy::SqD { d: 2 })
                .jobs(30_000)
                .warmup(3_000)
                .seed(seed)
                .run()
                .unwrap()
                .mean_delay
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn stepwise_equals_monomorphized_run() {
        // The per-event `step` dispatch and the monomorphized `run`
        // loop must trace identical trajectories.
        let cfg = SimConfig::new(4, 0.85)
            .unwrap()
            .policy(Policy::Jsq)
            .jobs(15_000)
            .warmup(1_500)
            .seed(33)
            .clone();
        let via_run = cfg.run().unwrap();
        let mut sim = Simulation::new(cfg);
        while sim.jobs_completed() < 15_000 {
            sim.step();
        }
        let via_step = sim.run_collect(&Budget::unlimited()).unwrap().finalize();
        assert_eq!(via_step, via_run);
    }
}
