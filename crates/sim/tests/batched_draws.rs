//! Property tests for the batched-draw hot path: a block refill must be
//! **byte-identical** to the same number of scalar draws from an equal
//! RNG state, for every distribution law. This is what lets the engine
//! swap its one-at-a-time sampling for refill buffers without the block
//! size becoming an observable parameter — only the (re-pinned) draw
//! *order* across streams changed in this PR, never any drawn value.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use slb_sim::{ArrivalProcess, ServiceDistribution};

/// One of the four service laws, parameters drawn from wide valid
/// ranges (the vendored proptest shim has no `prop_oneof!`, so the
/// variant is an index).
fn service_law() -> impl Strategy<Value = ServiceDistribution> {
    (
        0usize..4,
        0.05f64..20.0,
        1u32..8,
        0.0f64..1.0,
        0.05f64..10.0,
    )
        .prop_map(|(which, mean, k, p, rate2)| match which {
            0 => ServiceDistribution::Exponential { mean },
            1 => ServiceDistribution::Deterministic { value: mean },
            2 => ServiceDistribution::Erlang { k, mean },
            _ => ServiceDistribution::HyperExp {
                p,
                rate1: mean,
                rate2,
            },
        })
}

/// One of the four arrival laws.
fn arrival_law() -> impl Strategy<Value = ArrivalProcess> {
    (0usize..4, 1u32..8, 0u8..101, 1u8..32).prop_map(|(which, k, p_percent, ratio)| match which {
        0 => ArrivalProcess::Poisson,
        1 => ArrivalProcess::Deterministic,
        2 => ArrivalProcess::Erlang { k },
        _ => ArrivalProcess::HyperExp { p_percent, ratio },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `fill` over a block == the same count of scalar `sample` calls,
    /// bit for bit, and both leave the RNG in the same end state.
    #[test]
    fn service_fill_is_bitwise_equal_to_scalar_samples(
        dist in service_law(),
        seed in 0u64..u64::MAX,
        len in 1usize..600,
    ) {
        let mut scalar_rng = SmallRng::seed_from_u64(seed);
        let scalar: Vec<f64> = (0..len).map(|_| dist.sample(&mut scalar_rng)).collect();

        let mut block_rng = SmallRng::seed_from_u64(seed);
        let mut block = vec![0.0f64; len];
        dist.fill(&mut block_rng, &mut block);

        for (i, (s, b)) in scalar.iter().zip(&block).enumerate() {
            prop_assert_eq!(
                s.to_bits(), b.to_bits(),
                "{:?} draw {}: scalar {} vs block {}", dist, i, s, b
            );
        }
        // Equal end states: the next draw agrees too.
        prop_assert_eq!(
            dist.sample(&mut scalar_rng).to_bits(),
            dist.sample(&mut block_rng).to_bits()
        );
    }

    /// Same bitwise identity for the arrival-gap laws at an arbitrary
    /// total rate.
    #[test]
    fn arrival_fill_is_bitwise_equal_to_scalar_samples(
        proc in arrival_law(),
        rate in 0.01f64..500.0,
        seed in 0u64..u64::MAX,
        len in 1usize..600,
    ) {
        let mut scalar_rng = SmallRng::seed_from_u64(seed);
        let scalar: Vec<f64> = (0..len).map(|_| proc.sample(&mut scalar_rng, rate)).collect();

        let mut block_rng = SmallRng::seed_from_u64(seed);
        let mut block = vec![0.0f64; len];
        proc.fill(&mut block_rng, rate, &mut block);

        for (i, (s, b)) in scalar.iter().zip(&block).enumerate() {
            prop_assert_eq!(
                s.to_bits(), b.to_bits(),
                "{:?} gap {}: scalar {} vs block {}", proc, i, s, b
            );
        }
        prop_assert_eq!(
            proc.sample(&mut scalar_rng, rate).to_bits(),
            proc.sample(&mut block_rng, rate).to_bits()
        );
    }

    /// Splitting one block into two back-to-back fills changes nothing:
    /// refill boundaries are unobservable in the drawn stream.
    #[test]
    fn fill_is_prefix_stable_across_refill_boundaries(
        dist in service_law(),
        seed in 0u64..u64::MAX,
        len in 2usize..600,
        cut in 1usize..599,
    ) {
        let cut = cut.min(len - 1);
        let mut one_rng = SmallRng::seed_from_u64(seed);
        let mut one = vec![0.0f64; len];
        dist.fill(&mut one_rng, &mut one);

        let mut two_rng = SmallRng::seed_from_u64(seed);
        let mut two = vec![0.0f64; len];
        let (head, tail) = two.split_at_mut(cut);
        dist.fill(&mut two_rng, head);
        dist.fill(&mut two_rng, tail);

        for (i, (a, b)) in one.iter().zip(&two).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "draw {}: {} vs {}", i, a, b);
        }
    }
}
