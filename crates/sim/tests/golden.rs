//! Golden-value pins for the flat-event-core engine: a small fixed-seed
//! configuration under every [`Policy`] variant, with the key
//! [`slb_sim::SimResult`] fields pinned to 12 significant digits.
//!
//! These pins freeze the engine's *exact* trajectory — event order (the
//! departure-before-arrival tie rule), RNG draw order, dispatch
//! decisions and statistics accumulation. Any unintended semantic
//! change to the hot path shows up here immediately, long before it
//! would be visible through statistical tolerances.
//!
//! Regenerate after an *intended* engine change with:
//!
//! ```text
//! cargo test -p slb-sim --test golden -- --nocapture  # failures print actual values
//! ```

use slb_sim::{Policy, SimConfig, SimResult};

fn run(policy: Policy) -> SimResult {
    SimConfig::new(5, 0.8)
        .unwrap()
        .policy(policy)
        .jobs(20_000)
        .warmup(2_000)
        .seed(7)
        .run()
        .unwrap()
}

/// One pinned scalar, compared through its 12-significant-digit
/// rendering so the assertion output is copy-pasteable on intended
/// regenerations.
fn pin(name: &str, actual: f64, expected: &str) {
    let got = format!("{actual:.12e}");
    assert_eq!(got, expected, "{name}: engine trajectory changed");
}

struct Golden {
    policy: Policy,
    mean_delay: &'static str,
    mean_wait: &'static str,
    mean_jobs: &'static str,
    busy_fraction: &'static str,
    max_queue: u32,
}

/// N = 5, λ = 0.8, 20k jobs, 2k warm-up, seed 7 — small enough to run
/// in milliseconds, long enough that every code path (growth of the
/// queue arena, bucket churn, batch-means batching) executes.
const GOLDENS: &[Golden] = &[
    Golden {
        policy: Policy::Random,
        mean_delay: "5.357481948629e0",
        mean_wait: "5.391175531342e0",
        mean_jobs: "2.096056175128e1",
        busy_fraction: "8.068680728546e-1",
        max_queue: 29,
    },
    Golden {
        policy: Policy::RoundRobin,
        mean_delay: "2.934914770891e0",
        mean_wait: "2.916734238813e0",
        mean_jobs: "1.151921660145e1",
        busy_fraction: "7.865694187822e-1",
        max_queue: 18,
    },
    Golden {
        policy: Policy::Jsq,
        mean_delay: "1.761590618622e0",
        mean_wait: "1.499197016728e0",
        mean_jobs: "6.851858787352e0",
        busy_fraction: "7.986522929583e-1",
        max_queue: 10,
    },
    Golden {
        policy: Policy::Jiq,
        mean_delay: "1.935427496192e0",
        mean_wait: "2.094941146500e0",
        mean_jobs: "7.553529148486e0",
        busy_fraction: "7.946182104609e-1",
        max_queue: 18,
    },
    Golden {
        policy: Policy::SqD { d: 2 },
        mean_delay: "2.238950118558e0",
        mean_wait: "1.873136157408e0",
        mean_jobs: "8.820708392530e0",
        busy_fraction: "7.967695610564e-1",
        max_queue: 9,
    },
    Golden {
        policy: Policy::SqDReplace { d: 2 },
        mean_delay: "2.561885364904e0",
        mean_wait: "2.217364535809e0",
        mean_jobs: "9.990047538054e0",
        busy_fraction: "8.036333110036e-1",
        max_queue: 13,
    },
    Golden {
        policy: Policy::SqDMemory { d: 2 },
        mean_delay: "2.052534443603e0",
        mean_wait: "1.667564254017e0",
        mean_jobs: "8.058858987131e0",
        busy_fraction: "8.042388452658e-1",
        max_queue: 6,
    },
];

#[test]
fn golden_results_per_policy() {
    for g in GOLDENS {
        let r = run(g.policy);
        let name = format!("{:?}", g.policy);
        pin(&format!("{name}.mean_delay"), r.mean_delay, g.mean_delay);
        pin(&format!("{name}.mean_wait"), r.mean_wait, g.mean_wait);
        pin(
            &format!("{name}.mean_jobs_in_system"),
            r.mean_jobs_in_system,
            g.mean_jobs,
        );
        pin(
            &format!("{name}.queue_tail[1]"),
            r.queue_tail[1],
            g.busy_fraction,
        );
        assert_eq!(r.max_queue_len, g.max_queue, "{name}.max_queue_len");
        assert_eq!(r.jobs_measured, 18_000, "{name}.jobs_measured");
    }
}

#[test]
fn golden_policy_hierarchy_holds() {
    // The pins above also encode the qualitative ordering the paper
    // studies; assert it explicitly so a wholesale regeneration cannot
    // silently pin a broken engine.
    let d = |p| run(p).mean_delay;
    let (random, rr) = (d(Policy::Random), d(Policy::RoundRobin));
    let (jsq, sq2) = (d(Policy::Jsq), d(Policy::SqD { d: 2 }));
    let sq2m = d(Policy::SqDMemory { d: 2 });
    assert!(jsq < sq2 && sq2 < rr && rr < random, "feedback helps");
    assert!(sq2m < sq2, "memory helps at equal poll cost");
}

#[test]
fn golden_parallel_merge() {
    // The replication-merge path, pinned end to end (3 replications on
    // 2 threads; thread count must not matter).
    let merged = SimConfig::new(5, 0.8)
        .unwrap()
        .policy(Policy::SqD { d: 2 })
        .jobs(20_000)
        .warmup(2_000)
        .seed(7)
        .run_parallel(3, 2)
        .unwrap();
    pin("par3.mean_delay", merged.mean_delay, "2.234099265500e0");
    assert_eq!(merged.jobs_measured, 54_000);
}

#[test]
fn golden_is_reproducible_within_process() {
    // Two identical runs inside one process are bit-identical — the
    // engine holds no hidden global state.
    let a = run(Policy::SqD { d: 2 });
    let b = run(Policy::SqD { d: 2 });
    assert_eq!(a, b);
}
