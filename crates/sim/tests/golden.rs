//! Golden-value pins for the flat-event-core engine: a small fixed-seed
//! configuration under every [`Policy`] variant, with the key
//! [`slb_sim::SimResult`] fields pinned to 12 significant digits.
//!
//! These pins freeze the engine's *exact* trajectory — event order (the
//! departure-before-arrival tie rule), RNG draw order, dispatch
//! decisions and statistics accumulation. Any unintended semantic
//! change to the hot path shows up here immediately, long before it
//! would be visible through statistical tolerances.
//!
//! Regenerate after an *intended* engine change with:
//!
//! ```text
//! cargo test -p slb-sim --test golden -- --ignored --nocapture
//! ```
//!
//! which runs [`print_golden_table`] and prints the whole `GOLDENS`
//! table (and the parallel-merge pin) in copy-pasteable form.

use slb_sim::{Policy, SimConfig, SimResult};

fn run(policy: Policy) -> SimResult {
    SimConfig::new(5, 0.8)
        .unwrap()
        .policy(policy)
        .jobs(20_000)
        .warmup(2_000)
        .seed(7)
        .run()
        .unwrap()
}

/// One pinned scalar, compared through its 12-significant-digit
/// rendering so the assertion output is copy-pasteable on intended
/// regenerations.
fn pin(name: &str, actual: f64, expected: &str) {
    let got = format!("{actual:.12e}");
    assert_eq!(got, expected, "{name}: engine trajectory changed");
}

struct Golden {
    policy: Policy,
    mean_delay: &'static str,
    mean_wait: &'static str,
    mean_jobs: &'static str,
    busy_fraction: &'static str,
    max_queue: u32,
}

/// N = 5, λ = 0.8, 20k jobs, 2k warm-up, seed 7 — small enough to run
/// in milliseconds, long enough that every code path (growth of the
/// queue arena, bucket churn, batch-means batching) executes.
const GOLDENS: &[Golden] = &[
    Golden {
        policy: Policy::Random,
        mean_delay: "5.162938191627e0",
        mean_wait: "5.203810638796e0",
        mean_jobs: "1.981056938090e1",
        busy_fraction: "7.976329605239e-1",
        max_queue: 37,
    },
    Golden {
        policy: Policy::RoundRobin,
        mean_delay: "3.051079775564e0",
        mean_wait: "2.981138135468e0",
        mean_jobs: "1.203279720317e1",
        busy_fraction: "7.992652391330e-1",
        max_queue: 17,
    },
    Golden {
        policy: Policy::Jsq,
        mean_delay: "1.679432157880e0",
        mean_wait: "1.448008753786e0",
        mean_jobs: "6.510172337877e0",
        busy_fraction: "7.856461403415e-1",
        max_queue: 6,
    },
    Golden {
        policy: Policy::Jiq,
        mean_delay: "2.130081322951e0",
        mean_wait: "2.407069809592e0",
        mean_jobs: "8.250091697516e0",
        busy_fraction: "7.980275631266e-1",
        max_queue: 20,
    },
    Golden {
        policy: Policy::SqD { d: 2 },
        mean_delay: "2.319374947190e0",
        mean_wait: "1.927568936580e0",
        mean_jobs: "9.361174888084e0",
        busy_fraction: "8.094713967928e-1",
        max_queue: 10,
    },
    Golden {
        policy: Policy::SqDReplace { d: 2 },
        mean_delay: "2.400699959368e0",
        mean_wait: "2.040631025630e0",
        mean_jobs: "9.550077589565e0",
        busy_fraction: "7.986874536180e-1",
        max_queue: 10,
    },
    Golden {
        policy: Policy::SqDMemory { d: 2 },
        mean_delay: "2.038788084472e0",
        mean_wait: "1.666942424200e0",
        mean_jobs: "7.944914461955e0",
        busy_fraction: "8.030512891549e-1",
        max_queue: 8,
    },
];

#[test]
fn golden_results_per_policy() {
    for g in GOLDENS {
        let r = run(g.policy);
        let name = format!("{:?}", g.policy);
        pin(&format!("{name}.mean_delay"), r.mean_delay, g.mean_delay);
        pin(&format!("{name}.mean_wait"), r.mean_wait, g.mean_wait);
        pin(
            &format!("{name}.mean_jobs_in_system"),
            r.mean_jobs_in_system,
            g.mean_jobs,
        );
        pin(
            &format!("{name}.queue_tail[1]"),
            r.queue_tail[1],
            g.busy_fraction,
        );
        assert_eq!(r.max_queue_len, g.max_queue, "{name}.max_queue_len");
        assert_eq!(r.jobs_measured, 18_000, "{name}.jobs_measured");
    }
}

#[test]
fn golden_policy_hierarchy_holds() {
    // The pins above also encode the qualitative ordering the paper
    // studies; assert it explicitly so a wholesale regeneration cannot
    // silently pin a broken engine.
    let d = |p| run(p).mean_delay;
    let (random, rr) = (d(Policy::Random), d(Policy::RoundRobin));
    let (jsq, sq2) = (d(Policy::Jsq), d(Policy::SqD { d: 2 }));
    let sq2m = d(Policy::SqDMemory { d: 2 });
    assert!(jsq < sq2 && sq2 < rr && rr < random, "feedback helps");
    assert!(sq2m < sq2, "memory helps at equal poll cost");
}

#[test]
fn golden_parallel_merge() {
    // The replication-merge path, pinned end to end (3 replications on
    // 2 threads; thread count must not matter).
    let merged = SimConfig::new(5, 0.8)
        .unwrap()
        .policy(Policy::SqD { d: 2 })
        .jobs(20_000)
        .warmup(2_000)
        .seed(7)
        .run_parallel(3, 2)
        .unwrap();
    pin("par3.mean_delay", merged.mean_delay, "2.220003641879e0");
    assert_eq!(merged.jobs_measured, 54_000);
}

/// Regeneration helper (run with `-- --ignored --nocapture`): prints
/// the `GOLDENS` table and the parallel-merge pin in the exact source
/// form above, for copy-pasting after an intended engine change.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_golden_table() {
    for g in GOLDENS {
        let r = run(g.policy);
        println!("    Golden {{");
        println!("        policy: Policy::{:?},", g.policy);
        println!("        mean_delay: \"{:.12e}\",", r.mean_delay);
        println!("        mean_wait: \"{:.12e}\",", r.mean_wait);
        println!("        mean_jobs: \"{:.12e}\",", r.mean_jobs_in_system);
        println!("        busy_fraction: \"{:.12e}\",", r.queue_tail[1]);
        println!("        max_queue: {},", r.max_queue_len);
        println!("    }},");
    }
    let merged = SimConfig::new(5, 0.8)
        .unwrap()
        .policy(Policy::SqD { d: 2 })
        .jobs(20_000)
        .warmup(2_000)
        .seed(7)
        .run_parallel(3, 2)
        .unwrap();
    println!("    par3.mean_delay: \"{:.12e}\"", merged.mean_delay);
}

#[test]
fn golden_is_reproducible_within_process() {
    // Two identical runs inside one process are bit-identical — the
    // engine holds no hidden global state.
    let a = run(Policy::SqD { d: 2 });
    let b = run(Policy::SqD { d: 2 });
    assert_eq!(a, b);
}
