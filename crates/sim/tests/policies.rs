//! Behavioral validation of the extended policy set and the delay
//! histogram, against closed forms and known policy orderings.

use slb_sim::{Policy, SimConfig};

fn run(n: usize, lam: f64, policy: Policy, jobs: u64, seed: u64) -> slb_sim::SimResult {
    SimConfig::new(n, lam)
        .unwrap()
        .policy(policy)
        .jobs(jobs)
        .warmup(jobs / 10)
        .seed(seed)
        .run()
        .unwrap()
}

#[test]
fn mm1_delay_quantiles_match_exponential() {
    // M/M/1 sojourn is exp(1 − ρ): q_p = −ln(1 − p)/(1 − ρ).
    let rho = 0.6;
    let res = run(1, rho, Policy::Random, 400_000, 11);
    for &p in &[0.5, 0.9, 0.99] {
        let want = -(1.0_f64 - p).ln() / (1.0 - rho);
        let got = res.delay_quantile(p).unwrap();
        assert!((got - want).abs() / want < 0.06, "p={p}: {got} vs {want}");
    }
    // Survival at the analytic median is 1/2.
    let median = -(0.5f64).ln() / (1.0 - rho);
    assert!((res.delay_survival(median) - 0.5).abs() < 0.02);
}

#[test]
fn jiq_between_random_and_jsq() {
    let (n, lam, jobs) = (8usize, 0.8f64, 300_000u64);
    let random = run(n, lam, Policy::Random, jobs, 1).mean_delay;
    let jiq = run(n, lam, Policy::Jiq, jobs, 1).mean_delay;
    let jsq = run(n, lam, Policy::Jsq, jobs, 1).mean_delay;
    assert!(jiq < random * 0.8, "JIQ {jiq} should beat Random {random}");
    assert!(jsq <= jiq + 0.05, "JSQ {jsq} should not lose to JIQ {jiq}");
}

#[test]
fn memory_improves_on_plain_sqd() {
    // At equal poll cost d, one unit of memory strictly helps (MPS 2002).
    let (n, lam, jobs) = (8usize, 0.9f64, 400_000u64);
    let plain = run(n, lam, Policy::SqD { d: 2 }, jobs, 3).mean_delay;
    let with_mem = run(n, lam, Policy::SqDMemory { d: 2 }, jobs, 3).mean_delay;
    assert!(
        with_mem < plain,
        "memory {with_mem} should beat plain {plain}"
    );
    // And memory d=1 beats random routing by a wide margin.
    let random = run(n, lam, Policy::Random, jobs, 3).mean_delay;
    let mem1 = run(n, lam, Policy::SqDMemory { d: 1 }, jobs, 3).mean_delay;
    assert!(mem1 < random * 0.75, "mem-1 {mem1} vs random {random}");
}

#[test]
fn sqd_delay_tail_matches_analytic_mixture() {
    // The simulator's delay histogram must agree with the exact
    // mixture-of-Erlangs law from the brute-force chain.
    let (n, d, lam) = (3usize, 2usize, 0.7f64);
    let exact = slb_core::brute::BruteForce::solve(n, d, lam, 30)
        .unwrap()
        .delay_distribution()
        .unwrap();
    let res = run(n, lam, Policy::SqD { d }, 600_000, 21);
    for i in 1..=20 {
        let t = i as f64 * 0.5;
        let (sim_s, exact_s) = (res.delay_survival(t), exact.survival(t));
        assert!(
            (sim_s - exact_s).abs() < 0.01,
            "t={t}: sim {sim_s} vs exact {exact_s}"
        );
    }
    for &p in &[0.5, 0.9, 0.99] {
        let got = res.delay_quantile(p).unwrap();
        let want = exact.quantile(p).unwrap();
        assert!((got - want).abs() / want < 0.05, "p={p}: {got} vs {want}");
    }
}

#[test]
fn histogram_total_matches_measured_jobs() {
    let res = run(4, 0.7, Policy::SqD { d: 2 }, 50_000, 2);
    assert_eq!(res.delay_hist.total(), res.jobs_measured);
}
