//! Determinism and statistical-sanity tests for parallel replications.

use slb_sim::{Policy, SimConfig};

fn base_config(jobs: u64) -> SimConfig {
    SimConfig::new(4, 0.8)
        .unwrap()
        .policy(Policy::SqD { d: 2 })
        .jobs(jobs)
        .warmup(jobs / 10)
        .seed(42)
        .clone()
}

/// The merged result is a pure function of `(config, replications)`:
/// every thread count — including the fully serial `n_threads = 1` merge
/// — produces identical bits.
#[test]
fn thread_count_does_not_change_result() {
    let cfg = base_config(40_000);
    let serial = cfg.run_parallel(3, 1).unwrap();
    for threads in [2, 3, 4, 7] {
        let parallel = cfg.run_parallel(3, threads).unwrap();
        assert_eq!(parallel, serial, "diverged at {threads} threads");
    }
}

/// One replication on any number of threads is exactly the serial run:
/// replication 0 uses the base seed.
#[test]
fn single_replication_matches_run() {
    let cfg = base_config(30_000);
    let serial = cfg.run().unwrap();
    assert_eq!(cfg.run_parallel(1, 4).unwrap(), serial);
    assert_eq!(cfg.run_parallel(1, 1).unwrap(), serial);
}

/// Replications use distinct seed streams: adding one changes the merged
/// statistics, and the pooled sample count is the sum over replications.
#[test]
fn replications_pool_observations() {
    let cfg = base_config(30_000);
    let one = cfg.run_parallel(1, 2).unwrap();
    let four = cfg.run_parallel(4, 2).unwrap();
    assert_eq!(four.jobs_measured, 4 * one.jobs_measured);
    assert_ne!(four.mean_delay, one.mean_delay);
    // More replications, same estimand: both estimates agree loosely and
    // the pooled confidence interval is tighter.
    assert!((four.mean_delay - one.mean_delay).abs() < 0.5);
    assert!(four.ci_halfwidth < one.ci_halfwidth);
}

/// The merged estimate converges to the right value: SQ(1) random
/// dispatch on N servers is N independent M/M/1 queues.
#[test]
fn parallel_replications_hit_mm1_truth() {
    let rho = 0.7;
    let res = SimConfig::new(2, rho)
        .unwrap()
        .policy(Policy::Random)
        .jobs(150_000)
        .warmup(15_000)
        .seed(7)
        .run_parallel(4, 4)
        .unwrap();
    let exact = 1.0 / (1.0 - rho);
    assert!(
        (res.mean_delay - exact).abs() < 0.08,
        "delay {} vs {exact}",
        res.mean_delay
    );
    // Utilization identity holds for the time-weighted merge.
    assert!((res.queue_tail[1] - rho).abs() < 0.02);
}

/// Degenerate parameters are rejected, not deadlocked on.
#[test]
fn zero_replications_or_threads_rejected() {
    let cfg = base_config(10_000);
    assert!(cfg.run_parallel(0, 2).is_err());
    assert!(cfg.run_parallel(2, 0).is_err());
}
