//! Scratch profiling harness: wall-times one serial run per policy so
//! hot-path costs can be attributed by differencing (RoundRobin draws
//! no dispatch randomness, Random draws one index, SqD two).
//!
//! ```sh
//! cargo run --release -p slb-sim --example profile
//! ```

use slb_sim::{Policy, SimConfig};
use std::time::Instant;

fn time(policy: Policy, warmup: u64) -> f64 {
    let mut cfg = SimConfig::new(16, 0.9).unwrap();
    cfg.policy(policy).jobs(100_000).warmup(warmup).seed(42);
    let cfg = cfg;
    // One throwaway run to warm caches, then the min of 15 — the
    // noise-robust statistic on this shared single-core box.
    let _ = cfg.clone().run().unwrap();
    (0..15)
        .map(|_| {
            let t = Instant::now();
            let r = cfg.clone().run().unwrap();
            let dt = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(r.mean_delay);
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    for (name, policy) in [
        ("round_robin", Policy::RoundRobin),
        ("random", Policy::Random),
        ("sq2", Policy::SqD { d: 2 }),
        ("jsq", Policy::Jsq),
        ("jiq", Policy::Jiq),
    ] {
        let normal = time(policy, 10_000);
        let no_stats = time(policy, 99_999);
        println!("{name:12} {normal:7.3} ms   (all-warmup: {no_stats:7.3} ms)");
    }
}
