//! Concurrency contract of the persistent [`CacheStore`]: many threads
//! hammering the same and distinct keys must never observe a torn
//! entry, must deduplicate identical in-flight computations down to a
//! single solve, and must treat schema-mismatched entries as misses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use slb_exp::{CacheStore, Row, Source};

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slb-store-conc-{tag}-{}", std::process::id()))
}

fn payload(key: &str) -> Vec<Row> {
    // Multi-row, multi-cell payload so torn writes would be visible.
    (0..8)
        .map(|i| vec![key.to_string(), i.to_string(), format!("cell-{key}-{i}")])
        .collect()
}

#[test]
fn identical_keys_compute_once_across_threads() {
    let root = temp_root("same-key");
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(CacheStore::open(root.clone()));
    let solves = Arc::new(AtomicUsize::new(0));
    const THREADS: usize = 16;
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let store = Arc::clone(&store);
            let solves = Arc::clone(&solves);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                store
                    .get_or_compute("shared-key", || {
                        solves.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that every
                        // sibling thread arrives while it is in flight.
                        std::thread::sleep(Duration::from_millis(30));
                        Ok(payload("shared-key"))
                    })
                    .unwrap()
            })
        })
        .collect();

    let mut computed = 0;
    let mut joined_or_hit = 0;
    for handle in handles {
        let (rows, source) = handle.join().unwrap();
        assert_eq!(*rows, payload("shared-key"), "no torn or partial entry");
        match source {
            Source::Computed => computed += 1,
            _ => joined_or_hit += 1,
        }
    }
    assert_eq!(
        solves.load(Ordering::SeqCst),
        1,
        "in-flight dedup must run the solve exactly once"
    );
    assert_eq!(computed, 1);
    assert_eq!(joined_or_hit, THREADS - 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn distinct_keys_under_contention_stay_intact() {
    let root = temp_root("distinct");
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(CacheStore::open(root.clone()));
    const THREADS: usize = 8;
    const KEYS: usize = 24;
    let barrier = Arc::new(Barrier::new(THREADS));

    // Every thread walks every key in a different order: plenty of
    // same-key races and plenty of disjoint traffic.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..KEYS {
                    let k = (i * (t + 1)) % KEYS;
                    let key = format!("key-{k}");
                    let (rows, _) = store.get_or_compute(&key, || Ok(payload(&key))).unwrap();
                    assert_eq!(*rows, payload(&key), "thread {t} read a torn entry");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Every key is now a persistent, intact disk entry: a fresh store
    // (new process, cold index) replays all of them without computing.
    let reopened = CacheStore::open(root.clone());
    for k in 0..KEYS {
        let key = format!("key-{k}");
        let (rows, source) = reopened
            .get_or_compute(&key, || panic!("disk entry for {key} must exist"))
            .unwrap();
        assert_eq!(*rows, payload(&key));
        assert_eq!(source, Source::Disk);
    }
    assert_eq!(reopened.indexed(), KEYS);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn schema_mismatch_forces_recompute() {
    let root = temp_root("schema");
    let _ = std::fs::remove_dir_all(&root);
    let store = CacheStore::open(root.clone());
    let key = "schema-key";
    let (_, source) = store.get_or_compute(key, || Ok(payload(key))).unwrap();
    assert_eq!(source, Source::Computed);

    // Rewrite the entry as if produced by an older engine: same file
    // name, same key string, stale schema number.
    let path = root.join(format!("{:016x}.json", slb_exp::cache::fnv64(key)));
    let entry = std::fs::read_to_string(&path).unwrap();
    let stale = entry.replace(
        &format!("\"schema\":{}", slb_exp::cache::CACHE_SCHEMA),
        "\"schema\":1",
    );
    assert_ne!(entry, stale, "the entry must carry the schema field");
    std::fs::write(&path, stale).unwrap();

    // A cold store treats the stale entry as a miss and recomputes;
    // the recompute overwrites it with the current schema.
    let reopened = CacheStore::open(root.clone());
    let fresh = vec![vec!["recomputed".to_string()]];
    let fresh_clone = fresh.clone();
    let (rows, source) = reopened
        .get_or_compute(key, move || Ok(fresh_clone))
        .unwrap();
    assert_eq!(source, Source::Computed);
    assert_eq!(*rows, fresh);
    let again = CacheStore::open(root.clone());
    let (rows, source) = again
        .get_or_compute(key, || panic!("entry must be valid again"))
        .unwrap();
    assert_eq!(source, Source::Disk);
    assert_eq!(*rows, fresh);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn eviction_is_bounded_and_lossless() {
    let root = temp_root("evict");
    let _ = std::fs::remove_dir_all(&root);
    const CAP: usize = 4;
    const KEYS: usize = 10;
    let store = CacheStore::open_with_cap(root.clone(), CAP);
    assert_eq!(store.index_cap(), CAP);

    for k in 0..KEYS {
        let key = format!("key-{k}");
        let (_, source) = store.get_or_compute(&key, || Ok(payload(&key))).unwrap();
        assert_eq!(source, Source::Computed);
        assert!(
            store.indexed() <= CAP,
            "index grew past its cap: {} > {CAP}",
            store.indexed()
        );
    }
    assert!(
        store.evicted() >= (KEYS - CAP) as u64,
        "evicted only {}",
        store.evicted()
    );

    // Every key — including every evicted one — still answers
    // byte-identically, reloaded from the durable disk tier without
    // recomputing.
    for k in 0..KEYS {
        let key = format!("key-{k}");
        let (rows, source) = store
            .get_or_compute(&key, || panic!("{key} must not recompute"))
            .unwrap();
        assert_eq!(*rows, payload(&key), "evicted {key} lost data");
        assert!(
            matches!(source, Source::Memory | Source::Disk),
            "{key} was {source:?}"
        );
        assert!(store.indexed() <= CAP);
    }
    // At least one of those reloads crossed the disk tier: with
    // KEYS > CAP they cannot all have stayed resident.
    let disk_reloads = (0..KEYS)
        .filter(|k| {
            let key = format!("key-{k}");
            store.lookup(&key).is_some()
        })
        .count();
    assert!(disk_reloads == KEYS, "lookup must see every key");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_entry_is_quarantined_once_and_recomputed() {
    let root = temp_root("quarantine");
    let _ = std::fs::remove_dir_all(&root);
    let key = "victim";
    {
        let store = CacheStore::open(root.clone());
        let (_, source) = store.get_or_compute(key, || Ok(payload(key))).unwrap();
        assert_eq!(source, Source::Computed);
    }

    // Truncate the entry mid-file: the classic torn write of a crashed
    // process (the atomic-rename protocol prevents this from the store
    // itself, but not from external interference or disk rot).
    let entry = root.join(format!("{:016x}.json", slb_exp::cache::fnv64(key)));
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();

    let store = CacheStore::open(root.clone());
    let fresh = vec![vec!["recomputed".to_string()]];
    let fresh_clone = fresh.clone();
    let (rows, source) = store.get_or_compute(key, move || Ok(fresh_clone)).unwrap();
    assert_eq!(source, Source::Computed, "corruption must force recompute");
    assert_eq!(*rows, fresh);
    assert_eq!(store.quarantined(), 1);

    // The broken file moved aside, and the recompute republished a
    // valid entry in its place.
    let bad = root.join(format!("{:016x}.bad", slb_exp::cache::fnv64(key)));
    assert!(bad.is_file(), "quarantined file must exist at {bad:?}");
    let reopened = CacheStore::open(root.clone());
    let (rows, source) = reopened
        .get_or_compute(key, || panic!("entry must be valid again"))
        .unwrap();
    assert_eq!(source, Source::Disk);
    assert_eq!(*rows, fresh);
    assert_eq!(reopened.quarantined(), 0, "no further quarantines");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failed_compute_is_shared_by_waiters_but_not_cached() {
    let root = temp_root("fail");
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(CacheStore::open(root.clone()));
    const THREADS: usize = 6;
    let barrier = Arc::new(Barrier::new(THREADS));
    let attempts = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let attempts = Arc::clone(&attempts);
            std::thread::spawn(move || {
                barrier.wait();
                store.get_or_compute("doomed", move || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    Err("solver exploded".to_string())
                })
            })
        })
        .collect();
    let mut failures = 0;
    for handle in handles {
        match handle.join().unwrap() {
            Err(e) => {
                assert_eq!(e, "solver exploded");
                failures += 1;
            }
            Ok((_, source)) => panic!("unexpected success from {source:?}"),
        }
    }
    // At least the first flight failed and its error reached every
    // waiter of that flight; errors are never written to disk.
    assert!((1..=THREADS).contains(&failures));
    assert!(attempts.load(Ordering::SeqCst) <= THREADS);
    assert!(store.lookup("doomed").is_none(), "failures must not cache");
    let (_, source) = store
        .get_or_compute("doomed", || Ok(payload("ok-now")))
        .unwrap();
    assert_eq!(source, Source::Computed, "a retry recomputes cleanly");
    let _ = std::fs::remove_dir_all(&root);
}
