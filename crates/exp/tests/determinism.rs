//! End-to-end guarantees over the *committed* scenario files: every
//! spec under `experiments/` parses and expands, sweep output is
//! independent of the worker-thread count, and a cache hit replays
//! byte-identical rows.

use std::path::PathBuf;

use slb_exp::{output, run_sweep, ScenarioSpec, SweepOptions, Value};

/// The committed scenario files (kept in sync with `experiments/`).
const SPECS: [&str; 7] = [
    "burstiness",
    "delay_tails",
    "fig9",
    "fig10",
    "logred_iters",
    "scaling",
    "theorem3",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

fn load(name: &str) -> ScenarioSpec {
    let path = workspace_root()
        .join("experiments")
        .join(format!("{name}.toml"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    ScenarioSpec::parse(&src).unwrap_or_else(|e| panic!("{name}.toml: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slb-exp-determinism-{tag}-{}", std::process::id()))
}

#[test]
fn committed_specs_parse_and_expand() {
    for name in SPECS {
        let spec = load(name);
        assert_eq!(spec.name, name, "spec name should match its file name");
        let full = spec.expand(false).unwrap_or_else(|e| panic!("{name}: {e}"));
        let smoke = spec.expand(true).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!full.is_empty(), "{name}: empty full grid");
        assert!(!smoke.is_empty(), "{name}: empty smoke grid");
        assert!(
            smoke.len() <= full.len(),
            "{name}: smoke grid ({}) larger than full grid ({})",
            smoke.len(),
            full.len()
        );
    }
}

#[test]
fn thread_count_invariance_on_committed_spec() {
    // logred-iters: solver-only, fast enough for a debug-profile test.
    let spec = load("logred_iters");
    let base = SweepOptions {
        threads: 1,
        smoke: true,
        cache: false,
        ..SweepOptions::default()
    };
    let serial = run_sweep(&spec, &base).unwrap();
    let parallel = run_sweep(
        &spec,
        &SweepOptions {
            threads: 8,
            ..base.clone()
        },
    )
    .unwrap();
    assert_eq!(serial.rows, parallel.rows);
    assert_eq!(
        output::to_csv(&serial.columns, &serial.rows),
        output::to_csv(&parallel.columns, &parallel.rows)
    );
}

#[test]
fn simulation_family_is_thread_invariant_and_cache_replays() {
    // A miniature bounds sweep (the fig10 family) exercising the
    // simulator: thread-count invariance and byte-identical cache
    // replay together, against a disposable cache directory.
    let spec = ScenarioSpec::parse(
        "[scenario]\n\
         name = \"mini-bounds\"\n\
         family = \"bounds\"\n\
         d = 2\n\
         jobs = 20000\n\
         replications = 2\n\
         [axes]\n\
         n = [3, 3]\n\
         t = [2, 3]\n\
         rho = [0.4, 0.7]\n\
         zip = [\"n\", \"t\"]\n",
    )
    .unwrap();
    let dir = temp_dir("sim");
    let _ = std::fs::remove_dir_all(&dir);

    let cold_serial = run_sweep(
        &spec,
        &SweepOptions {
            threads: 1,
            cache: false,
            check: true,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert_eq!(cold_serial.rows.len(), 4);
    assert_eq!(
        cold_serial.checked_rows, 4,
        "all bounds rows carry the sandwich"
    );

    let cached_opts = SweepOptions {
        threads: 8,
        cache: true,
        cache_dir: Some(dir.clone()),
        check: true,
        ..SweepOptions::default()
    };
    let cold_parallel = run_sweep(&spec, &cached_opts).unwrap();
    assert_eq!(cold_parallel.cache_hits, 0);
    assert_eq!(
        cold_parallel.rows, cold_serial.rows,
        "threads must not change rows"
    );

    let warm = run_sweep(&spec, &cached_opts).unwrap();
    assert_eq!(
        warm.cache_hits, warm.jobs,
        "second run must be all cache hits"
    );
    assert_eq!(
        output::to_csv(&warm.columns, &warm.rows),
        output::to_csv(&cold_serial.columns, &cold_serial.rows),
        "cache replay must be byte-identical to the cold run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_axis_only_invalidates_changed_points() {
    let spec = load("theorem3");
    let dir = temp_dir("invalidate");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        threads: 2,
        smoke: true,
        cache: true,
        cache_dir: Some(dir.clone()),
        ..SweepOptions::default()
    };
    let cold = run_sweep(&spec, &opts).unwrap();
    assert_eq!(cold.cache_hits, 0);

    // Re-expanding the same spec hits every point; the same grid with
    // one extra zipped configuration recomputes only the new point.
    let smoke_jobs = spec.expand(true).unwrap();
    let mut grown =
        String::from("[scenario]\nname = \"theorem3\"\nfamily = \"theorem3\"\n[axes]\n");
    let axis = |key: &str| {
        let vals: Vec<String> = smoke_jobs
            .iter()
            .map(|j| match j.get(key).unwrap() {
                Value::Int(i) => i.to_string(),
                Value::Float(x) => format!("{x}"),
                other => panic!("unexpected axis value {other:?}"),
            })
            .collect();
        vals.join(", ")
    };
    grown.push_str(&format!("n   = [{}, 6]\n", axis("n")));
    grown.push_str(&format!("d   = [{}, 2]\n", axis("d")));
    grown.push_str(&format!("rho = [{}, 0.8]\n", axis("rho")));
    grown.push_str(&format!("t   = [{}, 3]\n", axis("t")));
    grown.push_str("zip = [\"n\", \"d\", \"rho\", \"t\"]\n");
    let grown_spec = ScenarioSpec::parse(&grown).unwrap();

    let grown_run = run_sweep(
        &grown_spec,
        &SweepOptions {
            smoke: false,
            ..opts.clone()
        },
    )
    .unwrap();
    assert_eq!(grown_run.jobs, cold.jobs + 1);
    assert_eq!(
        grown_run.cache_hits, cold.jobs,
        "every unchanged grid point must replay from cache"
    );
    assert_eq!(grown_run.rows[..cold.rows.len()], cold.rows[..]);
    let _ = std::fs::remove_dir_all(&dir);
}
