//! Hand-rolled parser for the scenario-spec format — a small TOML
//! subset, vendored-shim style (the build environment has no network,
//! so a real TOML crate is not an option).
//!
//! Supported syntax:
//!
//! * `[section]` headers;
//! * `key = value` assignments, where a value is an integer, float,
//!   `true`/`false`, a double-quoted string (`\"`, `\\`, `\n`, `\t`
//!   escapes) or an array `[v, v, ...]` (trailing comma allowed);
//! * arrays may span lines — an assignment continues onto following
//!   lines until its brackets balance;
//! * `#` comments (outside strings) and blank lines.
//!
//! Not supported (and not needed by any spec): dotted keys, inline
//! tables, multi-line strings, dates.

use crate::value::Value;

/// One `[name]` section with its assignments in file order.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (the text between the brackets).
    pub name: String,
    /// Line number of the header, for error messages.
    pub line: usize,
    /// `key = value` entries in file order.
    pub entries: Vec<(String, Value)>,
}

impl Section {
    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }
}

/// Strips a `#` comment, honouring string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Net bracket depth of a line (outside string literals) — used to join
/// multi-line arrays.
fn bracket_delta(line: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth
}

fn valid_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses a whole spec file into its sections.
///
/// # Errors
///
/// Returns a message naming the offending line on any syntax error,
/// duplicate key, or assignment outside a section.
pub fn parse_document(src: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    let mut lines = src.lines().enumerate();

    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(header) = line.strip_prefix('[') {
            // A value never starts a line, so a leading '[' is a header.
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: unterminated section header"))?
                .trim();
            if !valid_bare_key(name) {
                return Err(format!("line {line_no}: invalid section name '{name}'"));
            }
            if sections.iter().any(|s| s.name == name) {
                return Err(format!("line {line_no}: duplicate section [{name}]"));
            }
            sections.push(Section {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }

        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected 'key = value' or '[section]'"))?;
        let key = key.trim();
        if !valid_bare_key(key) {
            return Err(format!("line {line_no}: invalid key '{key}'"));
        }

        // Join continuation lines until the array brackets balance.
        let mut text = rest.trim().to_string();
        let mut depth = bracket_delta(&text);
        while depth > 0 {
            let Some((_, cont)) = lines.next() else {
                return Err(format!(
                    "line {line_no}: unterminated array for key '{key}'"
                ));
            };
            let cont = strip_comment(cont).trim();
            text.push(' ');
            text.push_str(cont);
            depth += bracket_delta(cont);
        }

        let value =
            parse_value_str(&text).map_err(|e| format!("line {line_no}: value of '{key}': {e}"))?;

        let section = sections
            .last_mut()
            .ok_or_else(|| format!("line {line_no}: '{key}' appears before any [section]"))?;
        if section.entries.iter().any(|(k, _)| k == key) {
            return Err(format!(
                "line {line_no}: duplicate key '{key}' in [{}]",
                section.name
            ));
        }
        section.entries.push((key.to_string(), value));
    }

    Ok(sections)
}

/// Parses a single value (the text after `=`), rejecting trailing junk.
pub fn parse_value_str(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!(
            "trailing characters after value: '{}'",
            chars[pos..].iter().collect::<String>()
        ));
    }
    Ok(v)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("empty value".into()),
        Some('"') => parse_string(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some(_) => parse_scalar(chars, pos),
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *pos += 1;
                return Ok(Value::Str(out));
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => return Err(format!("unsupported escape '\\{c}'")),
                    None => return Err("unterminated escape".into()),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // opening bracket
    let mut items = Vec::new();
    loop {
        skip_ws(chars, pos);
        match chars.get(*pos) {
            None => return Err("unterminated array".into()),
            Some(']') => {
                *pos += 1;
                return Ok(Value::List(items));
            }
            Some(_) => {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                    }
                    Some(']') => {}
                    Some(c) => return Err(format!("expected ',' or ']' in array, found '{c}'")),
                    None => return Err("unterminated array".into()),
                }
            }
        }
    }
}

fn parse_scalar(chars: &[char], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|&c| !c.is_whitespace() && c != ',' && c != ']')
    {
        *pos += 1;
    }
    let token: String = chars[start..*pos].iter().collect();
    match token.as_str() {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        return i64::from_str_radix(hex, 16)
            .map(Value::Int)
            .map_err(|_| format!("cannot parse '{token}' as a hex integer"));
    }
    let looks_float = token.contains(['.', 'e', 'E']);
    if !looks_float {
        if let Ok(i) = token.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    token
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("cannot parse '{token}' as a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_types() {
        let doc = parse_document(
            r##"
# a comment
[scenario]
name = "fig10"   # trailing comment
family = "bounds"
d = 2
rho = 0.95
quick = false

[axes]
n = [3, 6, 12]
kind = ["lower", "upper"]
"##,
        )
        .unwrap();
        assert_eq!(doc.len(), 2);
        let sc = &doc[0];
        assert_eq!(sc.name, "scenario");
        assert_eq!(sc.get("name"), Some(&Value::Str("fig10".into())));
        assert_eq!(sc.get("d"), Some(&Value::Int(2)));
        assert_eq!(sc.get("rho"), Some(&Value::Float(0.95)));
        assert_eq!(sc.get("quick"), Some(&Value::Bool(false)));
        let ax = &doc[1];
        assert_eq!(
            ax.get("n"),
            Some(&Value::List(vec![
                Value::Int(3),
                Value::Int(6),
                Value::Int(12)
            ]))
        );
    }

    #[test]
    fn multiline_arrays_join() {
        let doc = parse_document("[axes]\nrho = [0.1, # low\n       0.5,\n       0.9]\nn = [3]\n")
            .unwrap();
        let rho = doc[0].get("rho").unwrap().as_list().unwrap();
        assert_eq!(rho.len(), 3);
        assert_eq!(doc[0].get("n").unwrap().as_list().unwrap().len(), 1);
    }

    #[test]
    fn string_escapes_and_hash_in_string() {
        let doc = parse_document("[s]\nk = \"a#b\\\"c\"\n").unwrap();
        assert_eq!(doc[0].get("k"), Some(&Value::Str("a#b\"c".into())));
    }

    #[test]
    fn errors_are_located() {
        assert!(parse_document("x = 1\n")
            .unwrap_err()
            .contains("before any"));
        assert!(parse_document("[a]\nx 1\n").unwrap_err().contains("line 2"));
        assert!(parse_document("[a]\nx = 1\nx = 2\n")
            .unwrap_err()
            .contains("duplicate key"));
        assert!(parse_document("[a]\n[a]\n")
            .unwrap_err()
            .contains("duplicate section"));
        assert!(parse_document("[a]\nx = [1, 2\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_document("[a]\nx = 1 2\n")
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn scientific_notation_is_float() {
        assert_eq!(parse_value_str("1e-3").unwrap(), Value::Float(1e-3));
        assert_eq!(parse_value_str("-4").unwrap(), Value::Int(-4));
    }

    #[test]
    fn hex_integers() {
        assert_eq!(parse_value_str("0xD1A7").unwrap(), Value::Int(0xD1A7));
        assert!(parse_value_str("0xZZ").is_err());
    }
}
