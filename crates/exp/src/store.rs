//! Persistent, concurrency-safe result store shared by `slb sweep`,
//! `slb query` and `slb serve`.
//!
//! [`CacheStore`] promotes the per-sweep cache files of [`crate::cache`]
//! to a long-lived cross-request store under one shared root
//! (`target/sweep-cache` by default). The keys, the on-disk schema and
//! the schema-version gating are unchanged — an entry written by a
//! sweep is replayed byte-identically by the server and vice versa —
//! but three layers make it safe and fast under concurrent access:
//!
//! 1. **In-process index**: an `RwLock` map from canonical key to the
//!    parsed rows. A repeat query never touches the filesystem; a hit
//!    is an `Arc` clone behind a read lock (microseconds). The index is
//!    **bounded** (configurable entry cap, second-chance eviction in
//!    insertion-clock order): under millions of distinct keys the
//!    daemon's memory stays flat, and because every evicted entry still
//!    has its durable disk file, eviction never loses a result — the
//!    next request for an evicted key reloads it from disk
//!    byte-identically.
//! 2. **In-flight dedup**: concurrent requests for the *same* key block
//!    on the first request's computation instead of solving twice; the
//!    solve runs exactly once per process per key.
//! 3. **Atomic publication**: disk writes go through
//!    [`crate::cache::store`]'s unique-temp-file + `rename` protocol,
//!    so concurrent writers (even across processes) can never produce
//!    a torn entry — a reader sees a complete entry or a miss.
//!
//! A disk entry that exists but cannot be decoded (torn by a crashed
//! process, bit-rotted, hand-edited) is **quarantined**: renamed to
//! `<hash>.bad` and warned about once, instead of being re-parsed —
//! and re-failing — on every subsequent miss. The key is then
//! recomputed and republished cleanly.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use crate::cache;
use crate::runner::Row;

/// Default bound on the in-process index. Entries are a few hundred
/// bytes of parsed rows each, so the default keeps the warm set of a
/// busy daemon around a couple of MB while still caching far more
/// points than any committed sweep produces.
pub const DEFAULT_INDEX_CAP: usize = 4096;

/// How a [`CacheStore`] request was satisfied — the store's analogue of
/// a cache hit/miss counter, kept per call so callers can aggregate
/// whichever way suits them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the in-process index (no filesystem access).
    Memory,
    /// Loaded from a persistent entry on disk.
    Disk,
    /// Computed by this call (and published to index + disk).
    Computed,
    /// Another thread was already computing the same key; this call
    /// waited and shares its result.
    Joined,
}

impl Source {
    /// Whether the request was answered without running the solver.
    pub fn is_hit(self) -> bool {
        !matches!(self, Source::Computed)
    }
}

/// One in-flight computation: the first requester of a key parks a
/// flight here; followers wait on the condvar and share the outcome.
struct Flight {
    done: Mutex<Option<Result<Arc<Vec<Row>>, String>>>,
    cv: Condvar,
}

/// Clears an abandoned flight (compute panicked before finalizing) so
/// waiters fail with a message instead of blocking forever.
struct FlightGuard<'a> {
    store: &'a CacheStore,
    key: &'a str,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.finish_flight(
                self.key,
                self.flight,
                Err("cache compute panicked".to_string()),
            );
        }
    }
}

/// One indexed entry plus its second-chance bit: set on every hit,
/// cleared (one reprieve) when the eviction clock sweeps past.
struct IndexSlot {
    rows: Arc<Vec<Row>>,
    referenced: AtomicBool,
}

/// The index map plus the eviction clock (keys in insertion order; each
/// key appears exactly once while it is in the map).
struct IndexInner {
    map: HashMap<String, IndexSlot>,
    clock: VecDeque<String>,
}

/// The persistent concurrent cache. See the module docs for the layer
/// structure; construction is cheap (no eager directory scan — entries
/// load lazily on first lookup).
pub struct CacheStore {
    root: PathBuf,
    index: RwLock<IndexInner>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    cap: usize,
    evicted: AtomicU64,
    quarantined: AtomicU64,
    quarantine_warned: AtomicBool,
}

impl std::fmt::Debug for CacheStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStore")
            .field("root", &self.root)
            .field("indexed", &self.indexed())
            .field("cap", &self.cap)
            .finish()
    }
}

impl CacheStore {
    /// Opens (lazily) the store rooted at `root` with the default index
    /// cap. The directory is created on first write, not here.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        CacheStore::open_with_cap(root, DEFAULT_INDEX_CAP)
    }

    /// Opens the store with an explicit bound on the in-process index
    /// (clamped to at least 1). Disk entries are unaffected by the cap:
    /// an evicted key reloads from its durable file on the next request.
    pub fn open_with_cap(root: impl Into<PathBuf>, cap: usize) -> Self {
        CacheStore {
            root: root.into(),
            index: RwLock::new(IndexInner {
                map: HashMap::new(),
                clock: VecDeque::new(),
            }),
            inflight: Mutex::new(HashMap::new()),
            cap: cap.max(1),
            evicted: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            quarantine_warned: AtomicBool::new(false),
        }
    }

    /// Opens the store at the workspace-default root
    /// (`<workspace>/target/sweep-cache`, the same directory every
    /// `slb sweep` has always used).
    pub fn open_default() -> Self {
        CacheStore::open(cache::default_cache_dir())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of entries currently held in the in-process index.
    pub fn indexed(&self) -> usize {
        self.index.read().expect("index lock").map.len()
    }

    /// The configured bound on the in-process index.
    pub fn index_cap(&self) -> usize {
        self.cap
    }

    /// How many index entries the cap has evicted so far. Evictions
    /// never lose results — the durable disk tier still has them.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// How many corrupt disk entries have been quarantined (renamed to
    /// `<hash>.bad`) so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Index hit: clone the rows and mark the slot recently used.
    fn index_get(&self, key: &str) -> Option<Arc<Vec<Row>>> {
        let inner = self.index.read().expect("index lock");
        let slot = inner.map.get(key)?;
        slot.referenced.store(true, Ordering::Relaxed);
        Some(Arc::clone(&slot.rows))
    }

    /// Inserts (or refreshes) an index entry, evicting via second
    /// chance when the cap is reached: the clock hand sweeps insertion
    /// order, granting one reprieve to entries hit since the last sweep.
    fn index_insert(&self, key: &str, rows: Arc<Vec<Row>>) {
        let mut inner = self.index.write().expect("index lock");
        if let Some(slot) = inner.map.get_mut(key) {
            slot.rows = rows;
            slot.referenced.store(true, Ordering::Relaxed);
            return;
        }
        while inner.map.len() >= self.cap {
            let Some(victim) = inner.clock.pop_front() else {
                break; // unreachable: clock and map stay in sync
            };
            let referenced = inner
                .map
                .get(&victim)
                .is_some_and(|slot| slot.referenced.swap(false, Ordering::Relaxed));
            if referenced {
                inner.clock.push_back(victim);
            } else {
                inner.map.remove(&victim);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.clock.push_back(key.to_string());
        inner.map.insert(
            key.to_string(),
            IndexSlot {
                rows,
                referenced: AtomicBool::new(true),
            },
        );
    }

    /// Probes the disk tier, promoting a hit into the index and
    /// quarantining a corrupt entry (renamed to `<hash>.bad`, warned
    /// about once per store) so it is recomputed instead of re-parsed
    /// on every subsequent miss.
    fn disk_probe(&self, key: &str) -> Option<Arc<Vec<Row>>> {
        match cache::load_entry(&self.root, key) {
            cache::Entry::Hit(rows) => {
                let rows = Arc::new(rows);
                self.index_insert(key, Arc::clone(&rows));
                Some(rows)
            }
            cache::Entry::Miss => None,
            cache::Entry::Corrupt => {
                self.quarantine(key);
                None
            }
        }
    }

    /// Moves `key`'s unreadable disk entry out of the lookup path.
    fn quarantine(&self, key: &str) {
        let entry = cache::entry_path(&self.root, key);
        let bad = cache::quarantine_path(&self.root, key);
        let moved = std::fs::rename(&entry, &bad)
            .or_else(|_| std::fs::remove_file(&entry))
            .is_ok();
        if moved {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        if !self.quarantine_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: corrupt cache entry quarantined to {} (recomputing; further \
                 quarantines are silent)",
                bad.display()
            );
        }
    }

    /// Publishes `rows` under `key` to both the index and (best-effort)
    /// the disk entry. A failed disk write degrades to a warning: the
    /// result is already in hand and indexed.
    pub fn publish(&self, key: &str, rows: Arc<Vec<Row>>) {
        if let Err(e) = cache::store(&self.root, key, &rows) {
            eprintln!("warning: cannot write sweep cache: {e}");
        }
        self.index_insert(key, rows);
    }

    /// Index-then-disk lookup without computing. A disk hit is promoted
    /// into the index so the next lookup is memory-speed.
    pub fn lookup(&self, key: &str) -> Option<Arc<Vec<Row>>> {
        if let Some(rows) = self.index_get(key) {
            return Some(rows);
        }
        self.disk_probe(key)
    }

    /// The core request path: answers `key` from the index, then disk,
    /// then — deduplicated across threads — by running `compute` once
    /// and publishing its result.
    ///
    /// # Errors
    ///
    /// Propagates the compute error (shared verbatim by every caller
    /// that joined the same in-flight computation).
    pub fn get_or_compute<F>(
        &self,
        key: &str,
        compute: F,
    ) -> Result<(Arc<Vec<Row>>, Source), String>
    where
        F: FnOnce() -> Result<Vec<Row>, String>,
    {
        if let Some(rows) = self.index_get(key) {
            return Ok((rows, Source::Memory));
        }

        // Register interest under the in-flight lock: exactly one
        // requester per key proceeds to the slow path.
        let flight = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            // Double-check the index: the previous holder may have
            // published between our read miss and this lock.
            if let Some(rows) = self.index_get(key) {
                return Ok((rows, Source::Memory));
            }
            if let Some(flight) = inflight.get(key) {
                let flight = Arc::clone(flight);
                drop(inflight);
                return self.join_flight(&flight);
            }
            let flight = Arc::new(Flight {
                done: Mutex::new(None),
                cv: Condvar::new(),
            });
            inflight.insert(key.to_string(), Arc::clone(&flight));
            flight
        };

        let mut guard = FlightGuard {
            store: self,
            key,
            flight: &flight,
            armed: true,
        };

        // Disk may already hold the entry (a previous process, or a
        // sweep sharing the root): schema/key-gated load, no compute.
        // A corrupt entry is quarantined inside the probe and falls
        // through to a clean recompute.
        if let Some(rows) = self.disk_probe(key) {
            guard.armed = false;
            self.finish_flight(key, &flight, Ok(Arc::clone(&rows)));
            return Ok((rows, Source::Disk));
        }

        let outcome = compute().map(Arc::new);
        if let Ok(rows) = &outcome {
            self.publish(key, Arc::clone(rows));
        }
        guard.armed = false;
        self.finish_flight(key, &flight, outcome.clone());
        outcome.map(|rows| (rows, Source::Computed))
    }

    /// Waits for another thread's computation of the same key.
    fn join_flight(&self, flight: &Arc<Flight>) -> Result<(Arc<Vec<Row>>, Source), String> {
        let mut done = flight.done.lock().expect("flight lock");
        while done.is_none() {
            done = flight.cv.wait(done).expect("flight wait");
        }
        done.as_ref()
            .expect("loop invariant")
            .clone()
            .map(|rows| (rows, Source::Joined))
    }

    /// Records a flight's outcome, wakes every waiter, and retires the
    /// flight so later requests go through index/disk.
    fn finish_flight(
        &self,
        key: &str,
        flight: &Arc<Flight>,
        outcome: Result<Arc<Vec<Row>>, String>,
    ) {
        self.inflight.lock().expect("inflight lock").remove(key);
        *flight.done.lock().expect("flight lock") = Some(outcome);
        flight.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store(tag: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!("slb-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::open(dir)
    }

    fn rows(tag: &str) -> Vec<Row> {
        vec![vec![tag.to_string(), "1.25".to_string()]]
    }

    #[test]
    fn compute_then_memory_then_disk() {
        let store = temp_store("basic");
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(rows("a"))
        };
        let (r1, s1) = store.get_or_compute("k", compute).unwrap();
        assert_eq!(s1, Source::Computed);
        assert_eq!(*r1, rows("a"));
        let (r2, s2) = store
            .get_or_compute("k", || panic!("must not run"))
            .unwrap();
        assert_eq!(s2, Source::Memory);
        assert_eq!(r2, r1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);

        // A fresh store over the same root answers from disk.
        let reopened = CacheStore::open(store.root().to_path_buf());
        let (r3, s3) = reopened
            .get_or_compute("k", || panic!("must not run"))
            .unwrap();
        assert_eq!(s3, Source::Disk);
        assert_eq!(*r3, rows("a"));
        assert_eq!(reopened.indexed(), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let store = temp_store("err");
        let err = store
            .get_or_compute("k", || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The failure was not published: a retry recomputes.
        let (r, s) = store.get_or_compute("k", || Ok(rows("fixed"))).unwrap();
        assert_eq!(s, Source::Computed);
        assert_eq!(*r, rows("fixed"));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn lookup_does_not_compute() {
        let store = temp_store("lookup");
        assert!(store.lookup("missing").is_none());
        store.publish("k", Arc::new(rows("x")));
        assert_eq!(*store.lookup("k").unwrap(), rows("x"));
        let _ = std::fs::remove_dir_all(store.root());
    }
}
