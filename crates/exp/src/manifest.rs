//! Crash-resume checkpoint manifests for sweeps.
//!
//! A sweep over an expanded grid writes a small run manifest next to
//! its cache entries (`<cache-dir>/<spec-hash>.run.json`) recording
//! which job indices have completed and been published. The manifest is
//! updated with the same unique-temp-file + atomic-rename protocol as
//! the cache entries themselves, so a reader — or a crashed process's
//! successor — sees either the previous checkpoint or the new one,
//! never a torn file.
//!
//! The durable results live in the [`crate::store::CacheStore`]; the
//! manifest is the *bookkeeping* layer on top: it identifies an
//! interrupted run (a finished sweep deletes its manifest), lets
//! `slb sweep --resume` report how many points the previous run already
//! banked, and survives repeated interruptions by unioning the
//! completed sets. Replay correctness never depends on it — every
//! completed point is in the store and replays byte-identically — so a
//! lost manifest costs a log line, not a recompute.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{escape, Json};

/// Bump when the manifest layout changes; a mismatched file is ignored
/// (treated as no checkpoint), never misread.
pub const MANIFEST_SCHEMA: u32 = 1;

/// How many completions may accumulate between checkpoint writes. A
/// crash loses at most this much *bookkeeping* (the results themselves
/// are already in the store), while a 100k-point sweep is not rewriting
/// its manifest on every job.
const FLUSH_EVERY: usize = 16;

/// The on-disk location of the manifest for a sweep whose expanded grid
/// hashes to `spec_hash`.
pub fn manifest_path(dir: &Path, spec_hash: u64) -> PathBuf {
    dir.join(format!("{spec_hash:016x}.run.json"))
}

struct State {
    completed: BTreeSet<usize>,
    /// Completions since the last persisted checkpoint.
    unflushed: usize,
}

/// One sweep run's checkpoint: identity (name, smoke flag, grid hash,
/// grid size) plus the set of completed job indices, persisted
/// atomically as workers finish jobs.
pub struct RunManifest {
    path: PathBuf,
    name: String,
    smoke: bool,
    total: usize,
    state: Mutex<State>,
}

impl std::fmt::Debug for RunManifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunManifest")
            .field("path", &self.path)
            .field("total", &self.total)
            .field("completed", &self.completed())
            .finish()
    }
}

impl RunManifest {
    /// Opens the manifest for one run. With `resume = true` an existing
    /// checkpoint for the *same* grid (schema, name, smoke flag and
    /// total all match) seeds the completed set; anything else — no
    /// file, a different grid, an unreadable file — starts empty.
    /// Returns the manifest and the number of points resumed from the
    /// previous run.
    pub fn open(
        dir: &Path,
        spec_hash: u64,
        name: &str,
        smoke: bool,
        total: usize,
        resume: bool,
    ) -> (RunManifest, usize) {
        let path = manifest_path(dir, spec_hash);
        let mut completed = BTreeSet::new();
        if resume {
            if let Some(prev) = load(&path, name, smoke, total) {
                completed = prev;
            }
        }
        let resumed = completed.len();
        (
            RunManifest {
                path,
                name: name.to_string(),
                smoke,
                total,
                state: Mutex::new(State {
                    completed,
                    unflushed: 0,
                }),
            },
            resumed,
        )
    }

    /// Records job `index` as completed-and-published, checkpointing to
    /// disk every [`FLUSH_EVERY`] completions (and on the final one).
    pub fn complete(&self, index: usize) {
        let snapshot = {
            let mut state = self.state.lock().expect("manifest lock");
            if !state.completed.insert(index) {
                return; // resumed point replayed: already recorded
            }
            state.unflushed += 1;
            let due = state.unflushed >= FLUSH_EVERY || state.completed.len() == self.total;
            if !due {
                return;
            }
            state.unflushed = 0;
            state.completed.clone()
        };
        self.persist(&snapshot);
    }

    /// Number of completed points recorded so far.
    pub fn completed(&self) -> usize {
        self.state.lock().expect("manifest lock").completed.len()
    }

    /// Forces a checkpoint write (the interrupt path: in-flight results
    /// have drained and the process is about to exit).
    pub fn flush(&self) {
        let snapshot = {
            let mut state = self.state.lock().expect("manifest lock");
            state.unflushed = 0;
            state.completed.clone()
        };
        self.persist(&snapshot);
    }

    /// Retires the manifest after a fully successful sweep: no file
    /// means no interrupted run to resume.
    pub fn finish(&self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn persist(&self, completed: &BTreeSet<usize>) {
        if let Err(e) = self.write(completed) {
            // Non-fatal by design: the results are already in the
            // store; only the resume bookkeeping is degraded.
            eprintln!("warning: cannot write sweep manifest: {e}");
        }
    }

    fn write(&self, completed: &BTreeSet<usize>) -> std::io::Result<()> {
        let dir = self.path.parent().unwrap_or_else(|| Path::new("."));
        std::fs::create_dir_all(dir)?;
        let indices: Vec<String> = completed.iter().map(usize::to_string).collect();
        let body = format!(
            "{{\"schema\":{MANIFEST_SCHEMA},\"name\":\"{}\",\"smoke\":{},\"total\":{},\
             \"completed\":[{}]}}\n",
            escape(&self.name),
            self.smoke,
            self.total,
            indices.join(",")
        );
        let tmp = dir.join(format!(
            "{}.tmp-{}",
            self.path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            std::process::id()
        ));
        std::fs::write(&tmp, body)?;
        match std::fs::rename(&tmp, &self.path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Reads a checkpoint, returning its completed set only when it
/// describes the same run (schema, name, smoke, total).
fn load(path: &Path, name: &str, smoke: bool, total: usize) -> Option<BTreeSet<usize>> {
    let src = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&src).ok()?;
    if doc.get("schema").and_then(Json::as_f64) != Some(f64::from(MANIFEST_SCHEMA))
        || doc.get("name").and_then(Json::as_str) != Some(name)
        || doc.get("smoke") != Some(&Json::Bool(smoke))
        || doc.get("total").and_then(Json::as_f64) != Some(total as f64)
    {
        return None;
    }
    let completed: BTreeSet<usize> = doc
        .get("completed")?
        .as_arr()?
        .iter()
        .filter_map(|v| v.as_f64().map(|x| x as usize))
        .filter(|&i| i < total)
        .collect();
    Some(completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slb-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_roundtrip_and_resume() {
        let dir = temp_dir("roundtrip");
        let (m, resumed) = RunManifest::open(&dir, 0xabcd, "demo", true, 40, false);
        assert_eq!(resumed, 0);
        for i in 0..20 {
            m.complete(i);
        }
        m.flush();
        // A resuming run over the same grid sees the checkpoint...
        let (m2, resumed) = RunManifest::open(&dir, 0xabcd, "demo", true, 40, true);
        assert_eq!(resumed, 20);
        assert_eq!(m2.completed(), 20);
        // ...and a second interruption unions the sets.
        m2.complete(25);
        m2.flush();
        let (_, resumed) = RunManifest::open(&dir, 0xabcd, "demo", true, 40, true);
        assert_eq!(resumed, 21);
        // A *different* grid (total changed) ignores the stale file.
        let (_, resumed) = RunManifest::open(&dir, 0xabcd, "demo", true, 41, true);
        assert_eq!(resumed, 0);
        // Without --resume the checkpoint is ignored too.
        let (_, resumed) = RunManifest::open(&dir, 0xabcd, "demo", true, 40, false);
        assert_eq!(resumed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_retires_the_checkpoint() {
        let dir = temp_dir("finish");
        let (m, _) = RunManifest::open(&dir, 0x1, "demo", false, 4, false);
        m.complete(0);
        m.flush();
        assert!(manifest_path(&dir, 0x1).is_file());
        m.finish();
        assert!(!manifest_path(&dir, 0x1).is_file());
        let (_, resumed) = RunManifest::open(&dir, 0x1, "demo", false, 4, true);
        assert_eq!(resumed, 0, "a finished run leaves nothing to resume");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_manifest_is_ignored() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(manifest_path(&dir, 0x2), "{not json").unwrap();
        let (_, resumed) = RunManifest::open(&dir, 0x2, "demo", false, 4, true);
        assert_eq!(resumed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
