//! Content-hash result cache for sweep jobs.
//!
//! Every expanded job has a canonical key (family + sorted parameters +
//! schema version); its rows are stored under
//! `<workspace-root>/target/sweep-cache/<fnv64(key)>.json`. Re-running a
//! grid after editing one axis therefore only recomputes the points
//! whose keys changed — unchanged points are byte-identical replays.
//!
//! The stored file carries the full key, so a hash collision (or a stale
//! schema) degrades to a cache miss, never to wrong rows.

use std::path::{Path, PathBuf};

use crate::json::{escape, Json};

/// Bump when a runner's output semantics change: invalidates every
/// cached row at once.
///
/// v2: the flat-event-core simulator rewrite (new RNG draw order and
/// ziggurat exponential sampling) changed every simulated cell, so
/// rows cached by the heap-based engine must not replay as if they
/// were produced by the current one.
///
/// v3: the batched-draw engine (block-refilled service/interarrival
/// buffers, block-reduced statistics) interleaves the RNG streams
/// differently and reduces sums in a different — still deterministic —
/// order, changing every simulated cell again.
///
/// v4: the `scaling` family's bound columns changed meaning — the O(1)
/// mean-field/M-M-1 sandwich was replaced by the exact lumped-QBD
/// lower/upper bounds (with a new `t` column), so every cached scaling
/// row describes a different quantity than the current runner emits.
///
/// v5: the `bounds` family routes `n > 12` through the occupancy-lumped
/// solvers (same quantities, but only equal to the dense path to solver
/// tolerance), and bound cells can now carry the `nonconverged` status
/// where an iterative solve exhausts its cap instead of silently
/// reporting its last iterate.
pub const CACHE_SCHEMA: u32 = 5;

/// 64-bit FNV-1a — the workspace-standard small stable hash.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Walks up from `start` to the first directory containing `Cargo.lock`
/// — the workspace root, whichever crate directory a binary was spawned
/// in. Falls back to `start` itself when no lock file exists (e.g. an
/// installed binary far from any checkout).
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

/// The default cache directory: `target/sweep-cache` under the
/// workspace root resolved from the current directory — robust to
/// being invoked from a crate root instead of the workspace root (the
/// same discipline the criterion shim applies to `CRITERION_JSON`).
pub fn default_cache_dir() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    find_workspace_root(&cwd).join("target").join("sweep-cache")
}

/// The on-disk file holding `key`'s entry.
pub fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.json", fnv64(key)))
}

/// Where a corrupt entry is quarantined (same name, `.bad` suffix).
pub fn quarantine_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.bad", fnv64(key)))
}

/// Outcome of probing the disk for `key` — distinguishing a legitimate
/// miss (absent entry, or one written under another schema/key, which a
/// recompute will overwrite in place) from a *corrupt* entry (the file
/// is there but unparsable), which the store quarantines so it is not
/// re-parsed on every subsequent miss.
#[derive(Debug, PartialEq, Eq)]
pub enum Entry {
    /// A valid entry for this key under the current schema.
    Hit(Vec<Vec<String>>),
    /// No entry, or a stale-schema / different-key entry: recompute.
    Miss,
    /// The file exists but cannot be decoded (truncated write by a
    /// crashed process, bit rot, manual editing): quarantine it.
    Corrupt,
}

/// Probes the disk entry for `key`. See [`Entry`] for the outcomes.
pub fn load_entry(dir: &Path, key: &str) -> Entry {
    let path = entry_path(dir, key);
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        // Absent is the common miss; any other read error (not UTF-8,
        // permissions) on an existing file means the entry is unusable.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Entry::Miss,
        Err(_) => return Entry::Corrupt,
    };
    let Ok(doc) = Json::parse(&src) else {
        return Entry::Corrupt;
    };
    // A structurally valid document with the wrong schema or key is a
    // clean miss (older engine, hash collision) — not corruption.
    let (Some(schema), Some(entry_key)) = (
        doc.get("schema").and_then(Json::as_f64),
        doc.get("key").and_then(Json::as_str),
    ) else {
        return Entry::Corrupt;
    };
    if schema != f64::from(CACHE_SCHEMA) || entry_key != key {
        return Entry::Miss;
    }
    let Some(raw_rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Entry::Corrupt;
    };
    let mut rows = Vec::new();
    for row in raw_rows {
        let cells: Option<Vec<String>> = row
            .as_arr()
            .into_iter()
            .flatten()
            .map(|c| c.as_str().map(str::to_string))
            .collect();
        match (row.as_arr().is_some(), cells) {
            (true, Some(cells)) => rows.push(cells),
            _ => return Entry::Corrupt,
        }
    }
    Entry::Hit(rows)
}

/// Loads the cached rows for `key`, or `None` on miss / mismatch /
/// unreadable entry. (Thin wrapper over [`load_entry`] for callers
/// that do not care about quarantining.)
pub fn load(dir: &Path, key: &str) -> Option<Vec<Vec<String>>> {
    match load_entry(dir, key) {
        Entry::Hit(rows) => Some(rows),
        Entry::Miss | Entry::Corrupt => None,
    }
}

/// Stores `rows` under `key`, creating the cache directory on demand.
///
/// The entry is written to a uniquely named temporary file in the same
/// directory and atomically renamed into place, so a concurrent reader
/// (another sweep, a running `slb serve`) can never observe a torn
/// entry: it sees either the old file, the new file, or a miss.
///
/// # Errors
///
/// Propagates filesystem errors (callers treat a failed store as
/// non-fatal: the sweep result is already in hand).
pub fn store(dir: &Path, key: &str, rows: &[Vec<String>]) -> std::io::Result<()> {
    if slb_fault::fires("store.disk_write") {
        return Err(std::io::Error::other("injected: store.disk_write"));
    }
    std::fs::create_dir_all(dir)?;
    // Hand-rendered with one row per line: diffable, and the cache
    // entry doubles as a human-readable record of the job.
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":{CACHE_SCHEMA},\"key\":\"{}\",\"rows\":[\n",
        escape(key)
    ));
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", escape(c))).collect();
        out.push_str(&format!(
            " [{}]{}\n",
            cells.join(","),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]}\n");
    let tmp = dir.join(format!(
        "{:016x}.tmp-{}-{}",
        fnv64(key),
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::write(&tmp, out)?;
    match std::fs::rename(&tmp, entry_path(dir, key)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Disambiguates temp-file names when several threads of one process
/// store entries concurrently (the pid alone is not unique then).
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the cache file naming scheme must never drift.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64("fig10"), fnv64("fig9"));
    }

    #[test]
    fn store_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("slb-exp-cache-{}", std::process::id()));
        let rows = vec![
            vec!["0.5".to_string(), "inf".to_string()],
            vec!["0.9".to_string(), "1.25\"x".to_string()],
        ];
        store(&dir, "k1", &rows).unwrap();
        assert_eq!(load(&dir, "k1"), Some(rows));
        assert_eq!(load(&dir, "k2"), None); // different key hashes elsewhere
                                            // A key whose file exists but holds a different key string is a miss.
        store(&dir, "k3", &[]).unwrap();
        assert_eq!(load(&dir, "k3"), Some(vec![]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workspace_root_detection() {
        // The test binary runs somewhere under the workspace; walking up
        // from the crate dir must find the root that holds Cargo.lock.
        let crate_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&crate_dir);
        assert!(root.join("Cargo.lock").is_file());
        assert!(crate_dir.starts_with(&root));
    }
}
