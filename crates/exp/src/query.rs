//! Typed point queries: the `Query → Answer` API behind `slb query`
//! and `slb serve`.
//!
//! PR 4/5 could only evaluate a grid point through a TOML spec file;
//! this module exposes the same per-point evaluation as a typed API —
//! no spec required — while keeping the *identical* execution path: a
//! query builds the same [`Job`], with the same canonical cache key,
//! that a sweep over the same parameters would build, and answers it
//! through the shared [`CacheStore`]. Sweep results and query/serve
//! results are therefore byte-identical for identical keys, and repeat
//! queries answer from the store in microseconds.
//!
//! Three query kinds:
//!
//! - [`Query::Bounds`] — the QBD lower/upper mean-delay bounds, the
//!   simulation estimate, and the asymptotic (Eq. 16) value at one
//!   `(N, d, ρ, T)` (the `bounds` family row).
//! - [`Query::Service`] — the simulated mean delay plus p50/p90/p99
//!   sojourn percentiles at one `(policy, N, d, ρ)`, sandwiched by the
//!   O(1) mean-field / M/M/1 references (the `service` family row).
//! - [`Query::Capacity`] — the capacity planner: the smallest `N` that
//!   serves total arrival rate `λ` with a delay metric (mean or a
//!   percentile) at or below an SLO. Answered by exponential search +
//!   bisection over `N`, each probe a cached `service` evaluation, so
//!   repeated and overlapping capacity queries reuse each other's
//!   probes.
//!
//! Every answer carries a sandwich verdict where the family has bound
//! columns (the paper's Theorem-1 invariant, checked on the served
//! rows exactly as `slb sweep --check` checks swept rows).

use crate::check::check_sandwich;
use crate::json::Json;
use crate::runner::{run_job_pooled_budgeted, Family, Row};
use crate::spec::Job;
use crate::store::{CacheStore, Source};
use crate::value::Value;
use slb_linalg::Budget;

/// Simulation budget of one query: total jobs split over replications,
/// plus the base seed. Defaults match the sweep engine's injected
/// defaults ([`crate::spec`]'s `SIM_KEYS`), so an unqualified query
/// shares cache entries with an unqualified spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBudget {
    /// Total simulated jobs across all replications.
    pub jobs: u64,
    /// Independent replications merged into the estimate.
    pub replications: usize,
    /// Base RNG seed (per-point streams derive from it).
    pub seed: u64,
}

impl Default for SimBudget {
    fn default() -> Self {
        SimBudget {
            jobs: 1_000_000,
            replications: 4,
            seed: 1,
        }
    }
}

/// The delay metric a capacity query compares against its SLO — the
/// mean or one of the percentile columns of the `service` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean sojourn time.
    Mean,
    /// Median sojourn time.
    P50,
    /// 90th-percentile sojourn time.
    P90,
    /// 99th-percentile sojourn time.
    P99,
}

impl Metric {
    /// Parses a metric name (`mean`, `p50`, `p90`, `p99`).
    ///
    /// # Errors
    ///
    /// Lists the valid names when the input matches none.
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "mean" => Ok(Metric::Mean),
            "p50" => Ok(Metric::P50),
            "p90" => Ok(Metric::P90),
            "p99" => Ok(Metric::P99),
            other => Err(format!(
                "unknown metric '{other}' (expected mean, p50, p90 or p99)"
            )),
        }
    }

    /// The metric's name (also its wire encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Metric::Mean => "mean",
            Metric::P50 => "p50",
            Metric::P90 => "p90",
            Metric::P99 => "p99",
        }
    }

    /// The `service`-family column holding this metric.
    fn column(self) -> &'static str {
        match self {
            Metric::Mean => "sim",
            Metric::P50 => "p50",
            Metric::P90 => "p90",
            Metric::P99 => "p99",
        }
    }
}

/// Hard default ceiling for the capacity search: beyond this the
/// request is reported infeasible rather than simulated unboundedly.
pub const DEFAULT_N_MAX: usize = 65_536;

/// A typed point query. See the module docs for the three kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// QBD bounds + simulation + asymptotics at one `(N, d, ρ, T)`.
    Bounds {
        /// Number of servers.
        n: usize,
        /// Choices sampled per arrival.
        d: usize,
        /// Per-server utilization.
        rho: f64,
        /// QBD truncation threshold.
        t: u32,
        /// Simulation budget.
        budget: SimBudget,
    },
    /// Mean + percentiles at one `(policy, N, d, ρ)`.
    Service {
        /// Dispatch policy (`sqd` or `jsq`).
        policy: String,
        /// Number of servers.
        n: usize,
        /// Choices sampled per arrival (ignored by `jsq`).
        d: usize,
        /// Per-server utilization.
        rho: f64,
        /// Simulation budget.
        budget: SimBudget,
    },
    /// Smallest `N` meeting a delay SLO at total arrival rate `λ`.
    Capacity {
        /// Dispatch policy (`sqd` or `jsq`).
        policy: String,
        /// Total arrival rate (jobs per unit service time).
        lambda: f64,
        /// Choices sampled per arrival (ignored by `jsq`).
        d: usize,
        /// Delay metric compared against `slo`.
        metric: Metric,
        /// The delay target in unit service times.
        slo: f64,
        /// Search ceiling on `N`.
        n_max: usize,
        /// Simulation budget per probe.
        budget: SimBudget,
    },
}

/// The capacity-planner part of an [`Answer`].
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityAnswer {
    /// Smallest probed `N` meeting the SLO; `None` when even `n_max`
    /// misses it (infeasible within the ceiling).
    pub n_required: Option<usize>,
    /// The metric value achieved at `n_required`.
    pub achieved: Option<f64>,
    /// Every probe of the search, in probe order: `(N, metric value)`.
    pub evaluations: Vec<(usize, f64)>,
}

/// The sandwich verdict attached to answers whose family carries bound
/// columns: `Ok(checked_rows)` or the violation report.
pub type SandwichVerdict = Result<usize, String>;

/// The result of answering one [`Query`].
#[derive(Debug, Clone)]
pub struct Answer {
    /// Wire name of the query kind (`bounds` / `service` / `capacity`).
    pub kind: &'static str,
    /// Column names of `rows`.
    pub columns: Vec<&'static str>,
    /// The result rows — byte-identical to the rows an `slb sweep`
    /// over the same parameters emits. For capacity queries: the
    /// service row at the answering `N` (empty when infeasible).
    pub rows: Vec<Row>,
    /// Evaluations answered from the store (memory, disk, or joined
    /// with a concurrent identical request).
    pub cache_hits: usize,
    /// Evaluations that ran the solver/simulator.
    pub computed: usize,
    /// Theorem-1 sandwich verdict on `rows` (`None` when the family
    /// carries no bound columns).
    pub sandwich: Option<SandwichVerdict>,
    /// Capacity-search report (capacity queries only).
    pub capacity: Option<CapacityAnswer>,
}

impl Query {
    /// Wire name of the query kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Bounds { .. } => "bounds",
            Query::Service { .. } => "service",
            Query::Capacity { .. } => "capacity",
        }
    }

    /// The budget shared by every evaluation this query makes.
    pub fn budget(&self) -> SimBudget {
        match self {
            Query::Bounds { budget, .. }
            | Query::Service { budget, .. }
            | Query::Capacity { budget, .. } => *budget,
        }
    }

    /// Decodes a query from its JSON wire form (the body of a
    /// `POST /v1/query`). Unknown kinds and missing/mistyped fields
    /// produce descriptive errors (the server's 400 bodies).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(doc: &Json) -> Result<Query, String> {
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("query needs a string 'kind' field")?;
        let budget = SimBudget {
            jobs: get_u64(doc, "jobs")?.unwrap_or(SimBudget::default().jobs),
            replications: get_usize(doc, "replications")?
                .unwrap_or(SimBudget::default().replications),
            seed: get_u64(doc, "seed")?.unwrap_or(SimBudget::default().seed),
        };
        match kind {
            "bounds" => Ok(Query::Bounds {
                n: req_usize(doc, "n")?,
                d: req_usize(doc, "d")?,
                rho: req_f64(doc, "rho")?,
                t: u32::try_from(req_usize(doc, "t")?).map_err(|_| "field 't' out of range")?,
                budget,
            }),
            "service" => Ok(Query::Service {
                policy: get_policy(doc)?,
                n: req_usize(doc, "n")?,
                d: req_usize(doc, "d")?,
                rho: req_f64(doc, "rho")?,
                budget,
            }),
            "capacity" => Ok(Query::Capacity {
                policy: get_policy(doc)?,
                lambda: req_f64(doc, "lambda")?,
                d: get_usize(doc, "d")?.unwrap_or(2),
                metric: Metric::from_name(
                    doc.get("metric").and_then(Json::as_str).unwrap_or("p99"),
                )?,
                slo: req_f64(doc, "slo")?,
                n_max: get_usize(doc, "n_max")?.unwrap_or(DEFAULT_N_MAX),
                budget,
            }),
            other => Err(format!(
                "unknown query kind '{other}' (expected bounds, service or capacity)"
            )),
        }
    }

    /// Encodes the query in its JSON wire form (what `slb query --addr`
    /// sends). Round-trips through [`Query::from_json`].
    pub fn to_json(&self) -> Json {
        let budget = self.budget();
        let mut fields = vec![("kind".to_string(), Json::Str(self.kind().to_string()))];
        match self {
            Query::Bounds { n, d, rho, t, .. } => {
                fields.push(("n".into(), Json::Num(*n as f64)));
                fields.push(("d".into(), Json::Num(*d as f64)));
                fields.push(("rho".into(), Json::Num(*rho)));
                fields.push(("t".into(), Json::Num(f64::from(*t))));
            }
            Query::Service {
                policy, n, d, rho, ..
            } => {
                fields.push(("policy".into(), Json::Str(policy.clone())));
                fields.push(("n".into(), Json::Num(*n as f64)));
                fields.push(("d".into(), Json::Num(*d as f64)));
                fields.push(("rho".into(), Json::Num(*rho)));
            }
            Query::Capacity {
                policy,
                lambda,
                d,
                metric,
                slo,
                n_max,
                ..
            } => {
                fields.push(("policy".into(), Json::Str(policy.clone())));
                fields.push(("lambda".into(), Json::Num(*lambda)));
                fields.push(("d".into(), Json::Num(*d as f64)));
                fields.push(("metric".into(), Json::Str(metric.as_str().to_string())));
                fields.push(("slo".into(), Json::Num(*slo)));
                fields.push(("n_max".into(), Json::Num(*n_max as f64)));
            }
        }
        fields.push(("jobs".into(), Json::Num(budget.jobs as f64)));
        fields.push(("replications".into(), Json::Num(budget.replications as f64)));
        fields.push(("seed".into(), Json::Num(budget.seed as f64)));
        Json::Obj(fields)
    }

    /// The family whose rows answer this query.
    pub fn family(&self) -> Family {
        match self {
            Query::Bounds { .. } => Family::Bounds,
            Query::Service { .. } | Query::Capacity { .. } => Family::Service,
        }
    }
}

fn get_policy(doc: &Json) -> Result<String, String> {
    match doc.get("policy") {
        None => Ok("sqd".to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| "field 'policy' must be a string".to_string()),
    }
}

fn get_num(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match get_num(doc, key)? {
        None => Ok(None),
        Some(x) if x.fract() == 0.0 && (0.0..9.0e15).contains(&x) => Ok(Some(x as u64)),
        Some(_) => Err(format!("field '{key}' must be a non-negative integer")),
    }
}

fn get_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    Ok(get_u64(doc, key)?.map(|x| x as usize))
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, String> {
    get_num(doc, key)?.ok_or_else(|| format!("missing required field '{key}'"))
}

fn req_usize(doc: &Json, key: &str) -> Result<usize, String> {
    get_usize(doc, key)?.ok_or_else(|| format!("missing required field '{key}'"))
}

/// Builds the [`Job`] a point evaluation runs — with exactly the
/// parameter set a sweep over the same values would expand to, so the
/// canonical cache key (and therefore the cached rows) coincide.
fn point_job(family: Family, params: Vec<(String, Value)>, budget: SimBudget) -> Job {
    let mut params = params;
    params.push(("jobs".into(), Value::Int(budget.jobs as i64)));
    params.push((
        "replications".into(),
        Value::Int(budget.replications.max(1) as i64),
    ));
    params.push(("seed".into(), Value::Int(budget.seed as i64)));
    Job::new(family, 0, params)
}

/// A `service`-family job at one `(policy, n, d, ρ)`.
fn service_job(policy: &str, n: usize, d: usize, rho: f64, budget: SimBudget) -> Job {
    point_job(
        Family::Service,
        vec![
            ("policy".into(), Value::Str(policy.to_string())),
            ("n".into(), Value::Int(n as i64)),
            ("d".into(), Value::Int(d as i64)),
            ("rho".into(), Value::Float(rho)),
        ],
        budget,
    )
}

/// Evaluates one job through the store, tallying hit/computed counts.
/// The budget only gates the *compute* path — a cache hit answers even
/// an already-expired budget (the work is in hand; nothing to abort).
fn eval(
    store: &CacheStore,
    job: &Job,
    budget: &Budget,
    hits: &mut usize,
    computed: &mut usize,
) -> Result<std::sync::Arc<Vec<Row>>, String> {
    let (rows, source) = store.get_or_compute(&job.canonical_key(), || {
        run_job_pooled_budgeted(job, budget)
    })?;
    if source.is_hit() {
        *hits += 1;
    } else {
        *computed += 1;
    }
    let _ = Source::Memory; // (exhaustive use; sources are aggregated)
    Ok(rows)
}

/// Answers a query through the shared store. This is the single
/// evaluation path behind `slb query`, `slb serve` and (point-wise)
/// `slb sweep`.
///
/// # Errors
///
/// Returns a message when a parameter is invalid or an evaluation
/// fails; capacity infeasibility is *not* an error (see
/// [`CapacityAnswer::n_required`]).
pub fn answer(query: &Query, store: &CacheStore) -> Result<Answer, String> {
    answer_with_budget(query, store, &Budget::unlimited())
}

/// [`answer`] under a cooperative [`Budget`] — what `slb serve` calls
/// with the request deadline so an over-budget solve aborts
/// mid-iteration (freeing the worker) instead of completing work whose
/// answer will be discarded. An interrupted evaluation surfaces as an
/// `interrupted: ...` error and is never cached.
///
/// # Errors
///
/// As [`answer`], plus `interrupted: ...` messages on budget trips.
pub fn answer_with_budget(
    query: &Query,
    store: &CacheStore,
    budget: &Budget,
) -> Result<Answer, String> {
    let mut hits = 0usize;
    let mut computed = 0usize;
    let family = query.family();
    let (rows, capacity) = match query {
        Query::Bounds {
            n,
            d,
            rho,
            t,
            budget: sim_budget,
        } => {
            let job = point_job(
                Family::Bounds,
                vec![
                    ("n".into(), Value::Int(*n as i64)),
                    ("d".into(), Value::Int(*d as i64)),
                    ("rho".into(), Value::Float(*rho)),
                    ("t".into(), Value::Int(i64::from(*t))),
                ],
                *sim_budget,
            );
            let rows = eval(store, &job, budget, &mut hits, &mut computed)?;
            (rows.as_ref().clone(), None)
        }
        Query::Service {
            policy,
            n,
            d,
            rho,
            budget: sim_budget,
        } => {
            let job = service_job(policy, *n, *d, *rho, *sim_budget);
            let rows = eval(store, &job, budget, &mut hits, &mut computed)?;
            if rows.is_empty() {
                return Err(format!(
                    "infeasible point: policy '{policy}' with d = {d} needs at least d servers \
                     (n = {n})"
                ));
            }
            (rows.as_ref().clone(), None)
        }
        Query::Capacity {
            policy,
            lambda,
            d,
            metric,
            slo,
            n_max,
            budget: sim_budget,
        } => capacity_search(
            store,
            policy,
            *lambda,
            *d,
            *metric,
            *slo,
            *n_max,
            *sim_budget,
            budget,
            &mut hits,
            &mut computed,
        )?,
    };

    let sandwich = (family.columns().contains(&"lower"))
        .then(|| check_sandwich(family, family.columns(), &rows));
    Ok(Answer {
        kind: query.kind(),
        columns: family.columns().to_vec(),
        rows,
        cache_hits: hits,
        computed,
        sandwich,
        capacity,
    })
}

/// The capacity planner: exponential search upward from the stability
/// floor until the SLO holds, then bisection on the bracket. The delay
/// metric is decreasing in `N` at fixed `λ` (utilization `ρ = λ/N`
/// falls), so bisection is sound up to simulation noise; every probe is
/// a cached `service` evaluation at `ρ = λ/N`.
#[allow(clippy::too_many_arguments)]
fn capacity_search(
    store: &CacheStore,
    policy: &str,
    lambda: f64,
    d: usize,
    metric: Metric,
    slo: f64,
    n_max: usize,
    sim_budget: SimBudget,
    budget: &Budget,
    hits: &mut usize,
    computed: &mut usize,
) -> Result<(Vec<Row>, Option<CapacityAnswer>), String> {
    if !(lambda > 0.0 && lambda.is_finite()) {
        return Err(format!("lambda must be positive and finite, got {lambda}"));
    }
    if !(slo > 0.0 && slo.is_finite()) {
        return Err(format!("slo must be positive and finite, got {slo}"));
    }
    // Stability floor: ρ = λ/N < 1, and SQ(d) needs at least d servers.
    let n_floor = ((lambda.floor() as usize) + 1).max(if policy == "sqd" { d } else { 1 });
    if n_floor > n_max {
        return Err(format!(
            "stability needs at least N = {n_floor} servers but n_max = {n_max}"
        ));
    }

    let metric_col = Family::Service
        .columns()
        .iter()
        .position(|c| *c == metric.column())
        .expect("service family carries every metric column");
    let mut evaluations: Vec<(usize, f64)> = Vec::new();
    let mut probe = |n: usize,
                     hits: &mut usize,
                     computed: &mut usize|
     -> Result<(f64, std::sync::Arc<Vec<Row>>), String> {
        let rho = lambda / n as f64;
        let job = service_job(policy, n, d, rho, sim_budget);
        let rows = eval(store, &job, budget, hits, computed)?;
        let row = rows
            .first()
            .ok_or_else(|| format!("capacity probe at N = {n}: infeasible point"))?;
        let value: f64 = row
            .get(metric_col)
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| format!("capacity probe at N = {n}: unreadable metric cell"))?;
        evaluations.push((n, value));
        Ok((value, rows))
    };

    // Exponential phase: double until the SLO holds or the cap is hit.
    let (mut val, mut rows) = probe(n_floor, hits, computed)?;
    let mut hi = n_floor;
    let mut lo = None; // largest N known to miss the SLO
    while val > slo {
        if hi >= n_max {
            // Infeasible within the ceiling: report, don't error.
            return Ok((
                Vec::new(),
                Some(CapacityAnswer {
                    n_required: None,
                    achieved: None,
                    evaluations,
                }),
            ));
        }
        lo = Some(hi);
        hi = (hi * 2).min(n_max);
        (val, rows) = probe(hi, hits, computed)?;
    }

    // Bisection on (lo, hi]: metric(hi) ≤ slo throughout.
    if let Some(mut lo) = lo {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let (mid_val, mid_rows) = probe(mid, hits, computed)?;
            if mid_val <= slo {
                hi = mid;
                val = mid_val;
                rows = mid_rows;
            } else {
                lo = mid;
            }
        }
    }

    Ok((
        rows.as_ref().clone(),
        Some(CapacityAnswer {
            n_required: Some(hi),
            achieved: Some(val),
            evaluations,
        }),
    ))
}

impl Answer {
    /// Encodes the answer in its JSON wire form (the server's 200
    /// bodies; also `slb query --json`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_string(), Json::Str(self.kind.to_string())),
            (
                "columns".to_string(),
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| Json::Str((*c).to_string()))
                        .collect(),
                ),
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
            ("cache_hits".to_string(), Json::Num(self.cache_hits as f64)),
            ("computed".to_string(), Json::Num(self.computed as f64)),
        ];
        if let Some(verdict) = &self.sandwich {
            let obj = match verdict {
                Ok(checked) => vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("checked".to_string(), Json::Num(*checked as f64)),
                ],
                Err(msg) => vec![
                    ("ok".to_string(), Json::Bool(false)),
                    ("error".to_string(), Json::Str(msg.clone())),
                ],
            };
            fields.push(("sandwich".to_string(), Json::Obj(obj)));
        }
        if let Some(cap) = &self.capacity {
            let mut obj = vec![("feasible".to_string(), Json::Bool(cap.n_required.is_some()))];
            if let Some(n) = cap.n_required {
                obj.push(("n_required".to_string(), Json::Num(n as f64)));
            }
            if let Some(a) = cap.achieved {
                obj.push(("achieved".to_string(), Json::Num(a)));
            }
            obj.push((
                "evaluations".to_string(),
                Json::Arr(
                    cap.evaluations
                        .iter()
                        .map(|(n, v)| Json::Arr(vec![Json::Num(*n as f64), Json::Num(*v)]))
                        .collect(),
                ),
            ));
            fields.push(("capacity".to_string(), Json::Obj(obj)));
        }
        Json::Obj(fields)
    }

    /// Decodes an answer from its JSON wire form (what `slb query
    /// --addr` reads back). Tolerant of extra fields.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(doc: &Json) -> Result<Answer, String> {
        let kind = match doc.get("kind").and_then(Json::as_str) {
            Some("bounds") => "bounds",
            Some("service") => "service",
            Some("capacity") => "capacity",
            other => return Err(format!("answer has unknown kind {other:?}")),
        };
        let family = match kind {
            "bounds" => Family::Bounds,
            _ => Family::Service,
        };
        let mut rows = Vec::new();
        for row in doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("answer needs a 'rows' array")?
        {
            let cells: Option<Vec<String>> = row
                .as_arr()
                .ok_or("answer rows must be arrays")?
                .iter()
                .map(|c| c.as_str().map(str::to_string))
                .collect();
            rows.push(cells.ok_or("answer cells must be strings")?);
        }
        let sandwich = doc.get("sandwich").map(|s| {
            if s.get("ok") == Some(&Json::Bool(true)) {
                Ok(s.get("checked").and_then(Json::as_f64).unwrap_or(0.0) as usize)
            } else {
                Err(s
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("sandwich violated")
                    .to_string())
            }
        });
        let capacity = doc.get("capacity").map(|c| {
            let evaluations = c
                .get("evaluations")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|pair| {
                            let pair = pair.as_arr()?;
                            Some((pair.first()?.as_f64()? as usize, pair.get(1)?.as_f64()?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            CapacityAnswer {
                n_required: c
                    .get("n_required")
                    .and_then(Json::as_f64)
                    .map(|x| x as usize),
                achieved: c.get("achieved").and_then(Json::as_f64),
                evaluations,
            }
        });
        Ok(Answer {
            kind,
            columns: family.columns().to_vec(),
            rows,
            cache_hits: doc.get("cache_hits").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            computed: doc.get("computed").and_then(Json::as_f64).unwrap_or(0.0) as usize,
            sandwich,
            capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!("slb-query-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::open(dir)
    }

    fn small_budget() -> SimBudget {
        SimBudget {
            jobs: 40_000,
            replications: 2,
            seed: 3,
        }
    }

    #[test]
    fn query_json_roundtrip() {
        let queries = [
            Query::Bounds {
                n: 3,
                d: 2,
                rho: 0.7,
                t: 3,
                budget: small_budget(),
            },
            Query::Service {
                policy: "jsq".into(),
                n: 64,
                d: 2,
                rho: 0.85,
                budget: SimBudget::default(),
            },
            Query::Capacity {
                policy: "sqd".into(),
                lambda: 40.0,
                d: 2,
                metric: Metric::P99,
                slo: 2.5,
                n_max: 512,
                budget: small_budget(),
            },
        ];
        for q in queries {
            let encoded = q.to_json().render();
            let decoded = Query::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, q, "{encoded}");
        }
    }

    #[test]
    fn from_json_defaults_and_errors() {
        let q =
            Query::from_json(&Json::parse(r#"{"kind":"capacity","lambda":10,"slo":3.0}"#).unwrap())
                .unwrap();
        match q {
            Query::Capacity {
                d, metric, n_max, ..
            } => {
                assert_eq!(d, 2);
                assert_eq!(metric, Metric::P99);
                assert_eq!(n_max, DEFAULT_N_MAX);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        for (body, needle) in [
            (r#"{"n":3}"#, "kind"),
            (r#"{"kind":"teleport"}"#, "unknown query kind"),
            (r#"{"kind":"bounds","n":3,"d":2,"t":3}"#, "rho"),
            (r#"{"kind":"service","n":3,"rho":"x","d":2}"#, "number"),
            (
                r#"{"kind":"capacity","lambda":10,"slo":3,"metric":"p47"}"#,
                "unknown metric",
            ),
            (
                r#"{"kind":"service","n":3,"d":2,"rho":0.5,"jobs":1.5}"#,
                "integer",
            ),
        ] {
            let err = Query::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn service_answer_matches_equivalent_sweep_rows() {
        let store = temp_store("svc");
        let q = Query::Service {
            policy: "sqd".into(),
            n: 8,
            d: 2,
            rho: 0.6,
            budget: small_budget(),
        };
        let a = answer(&q, &store).unwrap();
        assert_eq!(a.rows.len(), 1);
        assert_eq!(a.computed, 1);
        assert!(a.sandwich.as_ref().unwrap().is_ok());

        // The same point through a spec-driven sweep replays the stored
        // entry byte-identically (same canonical key, same store).
        let spec = crate::ScenarioSpec::parse(
            "[scenario]\nname = \"svc\"\nfamily = \"service\"\npolicy = \"sqd\"\nd = 2\n\
             jobs = 40000\nreplications = 2\nseed = 3\n[axes]\nn = [8]\nrho = [0.6]\n",
        )
        .unwrap();
        let report = crate::run_sweep(
            &spec,
            &crate::SweepOptions {
                threads: 1,
                cache_dir: Some(store.root().to_path_buf()),
                ..crate::SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.rows, a.rows);
        assert_eq!(report.cache_hits, 1, "sweep must replay the query's entry");

        // Repeat query: answered from memory, zero computes.
        let again = answer(&q, &store).unwrap();
        assert_eq!(again.rows, a.rows);
        assert_eq!(again.computed, 0);
        assert_eq!(again.cache_hits, 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn capacity_search_finds_minimal_n() {
        let store = temp_store("cap");
        let q = Query::Capacity {
            policy: "sqd".into(),
            lambda: 6.0,
            d: 2,
            metric: Metric::Mean,
            slo: 1.6,
            n_max: 256,
            budget: small_budget(),
        };
        let a = answer(&q, &store).unwrap();
        let cap = a.capacity.clone().unwrap();
        let n = cap.n_required.expect("feasible");
        assert!(n >= 7, "stability needs n > lambda, got {n}");
        assert!(cap.achieved.unwrap() <= 1.6);
        assert_eq!(a.rows.len(), 1, "answer carries the service row at N*");
        // The probes bracket the answer: some N misses the SLO unless
        // the floor itself already met it.
        assert!(cap.evaluations.iter().any(|(en, _)| *en == n));

        // Re-asking reuses every probe from the store.
        let again = answer(&q, &store).unwrap();
        assert_eq!(again.computed, 0);
        assert_eq!(again.capacity.unwrap().n_required, Some(n));
        assert_eq!(again.rows, a.rows);

        // Answer JSON round-trips the capacity block.
        let parsed = Answer::from_json(&Json::parse(&a.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed.capacity.unwrap().n_required, Some(n));
        assert_eq!(parsed.rows, a.rows);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn capacity_reports_infeasible_within_ceiling() {
        let store = temp_store("infeasible");
        // An SLO below the bare service time is unreachable at any N.
        let q = Query::Capacity {
            policy: "sqd".into(),
            lambda: 3.0,
            d: 2,
            metric: Metric::Mean,
            slo: 0.5,
            n_max: 16,
            budget: SimBudget {
                jobs: 20_000,
                replications: 1,
                seed: 1,
            },
        };
        let a = answer(&q, &store).unwrap();
        let cap = a.capacity.unwrap();
        assert_eq!(cap.n_required, None);
        assert!(a.rows.is_empty());
        assert!(!cap.evaluations.is_empty());
        // Nonsense inputs are errors, not searches.
        for (lambda, slo, n_max) in [(-1.0, 1.0, 64), (3.0, -0.5, 64), (1000.0, 2.0, 4)] {
            let q = Query::Capacity {
                policy: "sqd".into(),
                lambda,
                d: 2,
                metric: Metric::Mean,
                slo,
                n_max,
                budget: small_budget(),
            };
            assert!(answer(&q, &store).is_err(), "lambda={lambda} slo={slo}");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}
