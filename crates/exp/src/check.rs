//! The sandwich check: every row that carries bound columns must
//! respect `lower ≤ sim ≤ upper` (and `lower ≤ exact ≤ upper` where an
//! exact column exists) — the paper's Theorem 1 invariant, asserted by
//! CI over every committed scenario on every push.

use crate::runner::{Family, Row};

/// Per-family slack for the *simulated* value: simulation estimates
/// carry statistical noise, bounded by the reported CI where available
/// plus a family-specific floor (quantile estimates — `delay-tails` —
/// are noisier than means at smoke-sized budgets).
fn sim_slack(family: Family, sim: f64, ci: Option<f64>) -> f64 {
    let (abs_floor, rel): (f64, f64) = match family {
        Family::DelayTails => (0.15, 0.15),
        _ => (0.02, 0.05),
    };
    ci.map_or(0.0, |c| 4.0 * c) + abs_floor.max(rel * sim.abs())
}

/// Tolerance for *deterministic* quantities (exact solver vs bounds).
/// Mean-delay comparisons are round-off-clean; quantiles invert a
/// mixture-of-Erlangs CDF numerically and the cells are printed at four
/// decimals, so the `delay-tails` family allows a few 1e-3.
fn exact_tol(family: Family) -> f64 {
    match family {
        Family::DelayTails => 5e-3,
        _ => 1e-6,
    }
}

fn col(columns: &[&'static str], name: &str) -> Option<usize> {
    columns.iter().position(|c| *c == name)
}

/// Parses a cell as a finite float; `inf` / `unstable` / `-` return
/// `None` (those cells are legitimately unbounded and skip their side
/// of the comparison).
fn finite(cell: &str) -> Option<f64> {
    cell.parse::<f64>().ok().filter(|x| x.is_finite())
}

/// Checks the sandwich on every applicable row; returns the number of
/// rows actually compared.
///
/// # Errors
///
/// Lists the violating rows (up to five) when any comparison fails.
pub fn check_sandwich(
    family: Family,
    columns: &[&'static str],
    rows: &[Row],
) -> Result<usize, String> {
    let (Some(lower_c), Some(upper_c)) = (col(columns, "lower"), col(columns, "upper")) else {
        return Ok(0); // family carries no bound columns
    };
    let sim_c = col(columns, "sim");
    let exact_c = col(columns, "exact");
    let ci_c = col(columns, "sim_ci");

    let mut checked = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        // A `nonconverged` lower cell is an explicitly reported solver
        // status (the iteration cap ran out; the last iterate is not a
        // bound): the row's comparison is skipped — the cell itself is
        // the report — unlike an unexplained non-finite lower below,
        // which still fails the gate.
        if row.get(lower_c).is_some_and(|c| c == "nonconverged") {
            continue;
        }
        // Only the upper bound is legitimately unbounded (`inf` /
        // `unstable` / `nonconverged`); a non-finite lower, sim or
        // exact cell means a broken runner and must fail the gate,
        // never skip it.
        let Some(lower) = row.get(lower_c).map(String::as_str).and_then(finite) else {
            violations.push(format!(
                "row {i}: lower '{}' is not a finite number",
                row.get(lower_c).map_or("", String::as_str)
            ));
            checked += 1;
            continue;
        };
        let upper = row.get(upper_c).map(String::as_str).and_then(finite);

        if let Some(cell) = sim_c.and_then(|c| row.get(c)) {
            if let Some(sim) = finite(cell) {
                let ci = ci_c.and_then(|c| row.get(c)).and_then(|s| finite(s));
                let slack = sim_slack(family, sim, ci);
                if lower > sim + slack {
                    violations.push(format!("row {i}: lower {lower} > sim {sim} + {slack:.4}"));
                }
                if let Some(up) = upper {
                    if sim > up + slack {
                        violations.push(format!("row {i}: sim {sim} > upper {up} + {slack:.4}"));
                    }
                }
            } else {
                violations.push(format!("row {i}: sim '{cell}' is not a finite number"));
            }
        }
        if let Some(cell) = exact_c.and_then(|c| row.get(c)) {
            if let Some(exact) = finite(cell) {
                let tol = exact_tol(family);
                if lower > exact + tol {
                    violations.push(format!("row {i}: lower {lower} > exact {exact}"));
                }
                if let Some(up) = upper {
                    if exact > up + tol {
                        violations.push(format!("row {i}: exact {exact} > upper {up}"));
                    }
                }
            } else {
                violations.push(format!("row {i}: exact '{cell}' is not a finite number"));
            }
        }
        checked += 1;
    }

    if violations.is_empty() {
        Ok(checked)
    } else {
        let shown = violations.len().min(5);
        Err(format!(
            "sandwich check failed on {} of {} rows:\n  {}{}",
            violations.len(),
            rows.len(),
            violations[..shown].join("\n  "),
            if violations.len() > shown {
                "\n  ..."
            } else {
                ""
            }
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cells: &[&str]) -> Row {
        cells.iter().map(|c| c.to_string()).collect()
    }

    const COLS: &[&str] = &["rho", "lower", "sim", "sim_ci", "upper"];

    #[test]
    fn accepts_sandwiched_rows_and_counts_them() {
        let rows = vec![
            row(&["0.5", "1.0", "1.05", "0.01", "1.2"]),
            row(&["0.9", "2.0", "2.1", "0.02", "inf"]), // unbounded upper: skipped side
        ];
        assert_eq!(check_sandwich(Family::Bounds, COLS, &rows), Ok(2));
    }

    #[test]
    fn rejects_violations_with_row_numbers() {
        let rows = vec![
            row(&["0.5", "1.0", "1.05", "0.01", "1.2"]),
            row(&["0.9", "3.0", "2.0", "0.0", "2.5"]), // lower > sim
        ];
        let err = check_sandwich(Family::Bounds, COLS, &rows).unwrap_err();
        assert!(err.contains("row 1"), "{err}");
        assert!(err.contains("lower 3 > sim 2"), "{err}");
    }

    #[test]
    fn exact_column_uses_tight_tolerance() {
        let cols: &[&'static str] = &["lower", "exact", "upper"];
        let ok = vec![row(&["1.0", "1.0000005", "1.1"])];
        assert_eq!(check_sandwich(Family::DelayTails, cols, &ok), Ok(1));
        let bad = vec![row(&["1.0", "0.99", "1.1"])];
        assert!(check_sandwich(Family::DelayTails, cols, &bad).is_err());
    }

    #[test]
    fn nonconverged_lower_is_a_reported_skip() {
        // The solver said so explicitly — skip the row (uncounted)
        // instead of failing the gate or comparing a non-bound.
        let rows = vec![
            row(&["0.5", "nonconverged", "1.05", "0.01", "1.2"]),
            row(&["0.7", "1.0", "1.05", "0.01", "nonconverged"]), // upper side skipped
        ];
        assert_eq!(check_sandwich(Family::Bounds, COLS, &rows), Ok(1));
    }

    #[test]
    fn non_finite_lower_or_sim_is_a_violation_not_a_skip() {
        let bad_sim = vec![row(&["0.5", "1.0", "NaN", "0.01", "1.2"])];
        let err = check_sandwich(Family::Bounds, COLS, &bad_sim).unwrap_err();
        assert!(err.contains("not a finite number"), "{err}");
        let bad_lower = vec![row(&["0.5", "inf", "1.0", "0.01", "1.2"])];
        assert!(check_sandwich(Family::Bounds, COLS, &bad_lower).is_err());
    }

    #[test]
    fn families_without_bounds_check_nothing() {
        let cols: &[&'static str] = &["n", "logred_iters"];
        let rows = vec![row(&["3", "6"])];
        assert_eq!(check_sandwich(Family::LogredIters, cols, &rows), Ok(0));
    }
}
