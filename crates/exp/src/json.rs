//! Minimal JSON reader/writer — just enough for the sweep cache files,
//! the `--out *.json` export and the bench-gate comparison of the
//! criterion shim's records. Vendored-shim style: no external crates.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (rejects trailing non-whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes: Vec<char> = src.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at offset {pos}"));
        }
        Ok(v)
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => out.push_str(&render_num(*x)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Integral floats render without a fractional part (`3`, not `3.0` —
/// matching how the canonical row strings were produced).
fn render_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Escapes a string for embedding in JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('n') => expect_word(chars, pos, "null", Json::Null),
        Some('t') => expect_word(chars, pos, "true", Json::Bool(true)),
        Some('f') => expect_word(chars, pos, "false", Json::Bool(false)),
        Some('"') => parse_string(chars, pos).map(Json::Str),
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(chars, pos)?));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(chars, pos),
    }
}

fn expect_word(chars: &[char], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    for expected in word.chars() {
        if chars.get(*pos) != Some(&expected) {
            return Err(format!("invalid literal at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(v)
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars.iter().skip(*pos + 1).take(4).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape at offset {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|&c| c.is_ascii_digit() || "+-.eE".contains(c))
    {
        *pos += 1;
    }
    let token: String = chars[start..*pos].iter().collect();
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{token}' at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = r#"{"key":"a\"b","rows":[["1","2.5"],[]],"n":3,"x":0.5,"ok":true,"z":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("key").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_criterion_records() {
        let src = r#"[
  {"phase": "baseline", "bench": "logred/m4", "samples": 20, "median_ns": 8920.0}
]"#;
        let v = Json::parse(src).unwrap();
        let rec = &v.as_arr().unwrap()[0];
        assert_eq!(rec.get("bench").and_then(Json::as_str), Some("logred/m4"));
        assert_eq!(rec.get("median_ns").and_then(Json::as_f64), Some(8920.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
