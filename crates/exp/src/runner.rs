//! Experiment families: the mapping from one expanded [`Job`] to its
//! result rows.
//!
//! Each family reproduces one of the repository's former one-off
//! experiment binaries (`crates/bench/src/bin/*`) as a pure function of
//! the job parameters — pure in the sense that the rows depend only on
//! the parameters, never on thread scheduling or execution order, which
//! is what makes both the cache and the deterministic-output guarantee
//! of the executor sound.

use std::fmt;

use slb_core::brute::BruteForce;
use slb_core::{asymptotic, BoundKind, BoundModel, CoreError, Sqd};
use slb_linalg::{power_iteration_sparse, Budget, CsrMatrix, Workspace};
use slb_mapph::MapSqd;
use slb_markov::{Map, PhaseType};
use slb_qbd::{
    functional_iteration, logarithmic_reduction_in_budgeted, SolveOptions, SparseSolveOptions, Tail,
};
use slb_sim::{Policy, SimConfig, SimResult};

use crate::spec::Job;

/// A result row: one stringified cell per column of the family.
pub type Row = Vec<String>;

/// The experiment families the sweep engine knows how to run.
///
/// | family | former binary | what it reproduces |
/// |---|---|---|
/// | `bounds` | `fig10` | LB/sim/UB/asymptotic vs utilization (Fig. 10) |
/// | `asymptotic-error` | `fig9` | relative error of Eq. 16 vs `N` (Fig. 9) |
/// | `delay-tails` | `delay_tails` | sojourn-time percentiles, 4 solvers |
/// | `burstiness` | `burstiness` | bounds under MAP arrivals |
/// | `logred-iters` | `logred_iters` | §IV-A iteration-count claim |
/// | `theorem3` | `theorem3` | scalar-tail ablation diagnostics |
/// | `scaling` | — (new) | large-`N` simulator scaling, mean-field sandwich |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Lower/upper/simulated/asymptotic mean delay (Figure 10).
    Bounds,
    /// Relative error of the asymptotic formula vs simulation (Figure 9).
    AsymptoticError,
    /// Sojourn-time percentiles: lower / exact / simulated / upper.
    DelayTails,
    /// Bounds under Markov-modulated and renewal arrivals.
    Burstiness,
    /// Logarithmic-reduction vs functional-iteration counts.
    LogredIters,
    /// Theorem-3 scalar-tail diagnostics.
    Theorem3,
    /// QBD bounds at production scale: the simulated mean delay under
    /// SQ(d) or JSQ sandwiched between the paper's **exact** lower and
    /// upper bound models, evaluated on the occupancy-lumped state
    /// space ([`Sqd::lower_bound_lumped`], [`Sqd::upper_bound_lumped`])
    /// whose block size `C(N+T−1, T)` is polynomial in `N` — thousands
    /// of servers instead of the dense solver's `N ≤ ~12`. Where the
    /// threshold-`T` upper model is not positive recurrent (fixed `T`
    /// at large `N`; the paper's known accuracy/complexity trade-off)
    /// the row reports `unstable` and only the lower side is checked.
    Scaling,
    /// One service-level point: the simulated mean delay *and* its
    /// p50/p90/p99 sojourn-time percentiles at `(policy, N, d, ρ)`,
    /// with the same O(1) mean-delay sandwich as [`Family::Scaling`].
    /// This is the evaluation primitive behind the capacity-planning
    /// queries of [`crate::query`]: "how many servers for arrival rate
    /// λ at a p99 SLO" bisects `N` over rows of this family.
    Service,
}

impl Family {
    /// Parses a family name as written in spec files.
    ///
    /// # Errors
    ///
    /// Lists the valid names when the input matches none.
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "bounds" => Ok(Family::Bounds),
            "asymptotic-error" => Ok(Family::AsymptoticError),
            "delay-tails" => Ok(Family::DelayTails),
            "burstiness" => Ok(Family::Burstiness),
            "logred-iters" => Ok(Family::LogredIters),
            "theorem3" => Ok(Family::Theorem3),
            "scaling" => Ok(Family::Scaling),
            "service" => Ok(Family::Service),
            other => Err(format!(
                "unknown family '{other}' (expected bounds, asymptotic-error, delay-tails, \
                 burstiness, logred-iters, theorem3, scaling or service)"
            )),
        }
    }

    /// The spec-file name of the family.
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Bounds => "bounds",
            Family::AsymptoticError => "asymptotic-error",
            Family::DelayTails => "delay-tails",
            Family::Burstiness => "burstiness",
            Family::LogredIters => "logred-iters",
            Family::Theorem3 => "theorem3",
            Family::Scaling => "scaling",
            Family::Service => "service",
        }
    }

    /// Column names of the rows this family emits.
    pub fn columns(self) -> &'static [&'static str] {
        match self {
            Family::Bounds => &[
                "n",
                "t",
                "d",
                "rho",
                "lower",
                "sim",
                "sim_ci",
                "upper",
                "asymptotic",
            ],
            Family::AsymptoticError => &[
                "rho",
                "d",
                "n",
                "sim_delay",
                "sim_ci",
                "asymptotic",
                "rel_error_pct",
            ],
            Family::DelayTails => &["n", "d", "t", "rho", "p", "lower", "exact", "sim", "upper"],
            Family::Burstiness => &[
                "n",
                "d",
                "t",
                "rho",
                "arrivals",
                "scv",
                "lower",
                "sim",
                "sim_ci",
                "upper",
                "tail_decay",
            ],
            Family::LogredIters => &[
                "n",
                "t",
                "d",
                "rho",
                "kind",
                "logred_iters",
                "logred_residual",
                "functional_iters",
            ],
            Family::Theorem3 => &[
                "n",
                "d",
                "rho",
                "t",
                "sp_r",
                "rho_n",
                "vec_residual",
                "delay_rel_diff",
            ],
            Family::Scaling => &[
                "policy",
                "n",
                "d",
                "t",
                "rho",
                "lower",
                "sim",
                "sim_ci",
                "upper",
                "max_queue",
            ],
            Family::Service => &[
                "policy",
                "n",
                "d",
                "rho",
                "lower",
                "sim",
                "sim_ci",
                "p50",
                "p90",
                "p99",
                "upper",
                "max_queue",
            ],
        }
    }

    /// Whether this family drives the discrete-event simulator (and thus
    /// receives the `jobs`/`replications`/`seed` defaults and the
    /// `SIM_REPLICATIONS` override).
    pub fn needs_sim(self) -> bool {
        !matches!(self, Family::LogredIters | Family::Theorem3)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-worker scratch: one [`Workspace`] per QBD block shape, reused
/// across every job a worker thread executes. A utilization sweep at
/// fixed `(N, T)` revisits the same shape at every grid point, so after
/// the first job of a shape the dense solvers draw all their
/// temporaries from a warm pool.
#[derive(Debug, Default)]
pub struct Scratch {
    pools: Vec<(usize, Workspace)>,
}

impl Scratch {
    /// A scratch holder with no warmed pools.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// The workspace pool for `m × m` blocks, created on first use.
    pub fn square(&mut self, m: usize) -> &mut Workspace {
        if let Some(i) = self.pools.iter().position(|(s, _)| *s == m) {
            return &mut self.pools[i].1;
        }
        self.pools.push((m, Workspace::square(m)));
        &mut self.pools.last_mut().expect("just pushed").1
    }

    /// Number of distinct shapes warmed so far.
    pub fn shapes(&self) -> usize {
        self.pools.len()
    }
}

/// Formats a float with 4 decimal places (the shared table precision).
fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Runs one job, returning its rows in deterministic order.
///
/// # Errors
///
/// Returns a message naming the family and the failing stage; infeasible
/// points that the old binaries silently skipped (e.g. `d > N` in the
/// Figure-9 grid) yield an empty row list instead of an error.
pub fn run_job(job: &Job, scratch: &mut Scratch) -> Result<Vec<Row>, String> {
    run_job_budgeted(job, scratch, &Budget::unlimited())
}

/// [`run_job`] under a cooperative [`Budget`]: every iterative solve
/// and the simulator poll the budget and abandon the job with an
/// `interrupted: ...` error when it trips. Interrupted jobs are never
/// cached ([`crate::CacheStore`] only publishes `Ok` results), so a
/// later uninterrupted run recomputes them cleanly.
///
/// # Errors
///
/// As [`run_job`], plus `interrupted: ...` messages on budget trips.
pub fn run_job_budgeted(
    job: &Job,
    scratch: &mut Scratch,
    budget: &Budget,
) -> Result<Vec<Row>, String> {
    match job.family {
        Family::Bounds => run_bounds(job, budget),
        Family::AsymptoticError => run_asymptotic_error(job, budget),
        Family::DelayTails => run_delay_tails(job, budget),
        Family::Burstiness => run_burstiness(job, budget),
        Family::LogredIters => run_logred_iters(job, scratch, budget),
        Family::Theorem3 => run_theorem3(job),
        Family::Scaling => run_scaling(job, budget),
        Family::Service => run_service(job, budget),
    }
}

thread_local! {
    /// Per-thread scratch for [`run_job_pooled`]: long-lived pool
    /// workers (sweep executor, `slb serve` handlers) keep their dense
    /// workspaces warm across every job they ever run, not just one
    /// batch.
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::new());
}

/// Runs one job on the calling thread's persistent [`Scratch`] pool —
/// the entry point for pool workers and server request handlers, where
/// no caller-owned scratch outlives the closure.
///
/// # Errors
///
/// Exactly as [`run_job`].
pub fn run_job_pooled(job: &Job) -> Result<Vec<Row>, String> {
    SCRATCH.with(|s| run_job(job, &mut s.borrow_mut()))
}

/// [`run_job_pooled`] under a cooperative [`Budget`] — what the sweep
/// executor and `slb serve` handlers call so a deadline or a ctrl-C
/// interrupts the solve mid-iteration instead of after it.
///
/// # Errors
///
/// Exactly as [`run_job_budgeted`].
pub fn run_job_pooled_budgeted(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    SCRATCH.with(|s| run_job_budgeted(job, &mut s.borrow_mut(), budget))
}

/// Splits a total job budget across replications, floored so degenerate
/// budgets still leave room for a warm-up prefix (the same rule the old
/// binaries applied via `slb_bench::rep_jobs`).
fn rep_jobs(total: u64, replications: usize) -> u64 {
    (total / replications.max(1) as u64).max(10)
}

/// Drives the simulator for one grid point. Replications run serially
/// (`n_threads = 1`): the sweep executor already parallelizes across
/// grid points, and `run_parallel`'s merge is thread-count independent,
/// so the merged statistics are identical either way.
fn run_sim(
    job: &Job,
    n: usize,
    rho: f64,
    policy: Policy,
    map: Option<&Map>,
    budget: &Budget,
) -> Result<SimResult, String> {
    let total = job.u64("jobs")?;
    let reps = job.usize("replications")?.max(1);
    let per_rep = rep_jobs(total, reps);
    let mut cfg = SimConfig::new(n, rho).map_err(|e| format!("sim config: {e}"))?;
    cfg.policy(policy)
        .jobs(per_rep)
        .warmup(per_rep / 10)
        .seed(job.derived_seed());
    if let Some(m) = map {
        cfg.arrival_map(m.clone());
    }
    cfg.run_parallel_budgeted(reps, 1, budget)
        .map_err(|e| format!("sim run: {e}"))
}

/// Largest `N` the bounds family answers with the dense QBD solver;
/// beyond it the state space (`(T+1)^N` phases before lumping) makes
/// the dense path infeasible and the family routes through the exact
/// occupancy-lumped solvers instead — the same quantities (the lumping
/// is lossless; `lumped_bounds_match_dense_to_1e8` in `slb-core` pins
/// the agreement) computed on a polynomial-size state space, and
/// cancellable mid-iteration via the job's [`Budget`].
const DENSE_N_MAX: usize = 12;

/// `bounds` (ex-`fig10`): LB / sim / UB / asymptotic at one `(N, T, ρ)`.
fn run_bounds(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;

    let sqd = Sqd::new(n, d, rho).map_err(|e| format!("bounds model: {e}"))?;
    // Where the upper-bound model is unstable (high utilization at small
    // T — the blow-up visible in the paper's plots) report `inf`.
    let (lb_cell, ub_cell) = if n <= DENSE_N_MAX {
        let lb = sqd
            .lower_bound(t)
            .map_err(|e| format!("lower bound: {e}"))?;
        let ub = match sqd.upper_bound(t) {
            Ok(r) => f4(r.delay),
            Err(CoreError::UpperBoundUnstable { .. }) => "inf".to_string(),
            Err(e) => return Err(format!("upper bound: {e}")),
        };
        (f4(lb.delay), ub)
    } else {
        let opts = SparseSolveOptions {
            budget: budget.clone(),
            ..SparseSolveOptions::default()
        };
        let lb = match sqd.lower_bound_lumped_with(t, &opts) {
            Ok(r) => f4(r.delay),
            Err(CoreError::NonConverged { .. }) => "nonconverged".to_string(),
            Err(e) => return Err(format!("lumped lower bound: {e}")),
        };
        let ub = match sqd.upper_bound_lumped_with(t, &opts) {
            Ok(r) => f4(r.delay),
            Err(CoreError::UpperBoundUnstable { .. }) => "inf".to_string(),
            Err(CoreError::NonConverged { .. }) => "nonconverged".to_string(),
            Err(e) => return Err(format!("lumped upper bound: {e}")),
        };
        (lb, ub)
    };
    let sim = run_sim(job, n, rho, Policy::SqD { d }, None, budget)?;

    Ok(vec![vec![
        n.to_string(),
        t.to_string(),
        d.to_string(),
        f4(rho),
        lb_cell,
        f4(sim.mean_delay),
        f4(sim.ci_halfwidth),
        ub_cell,
        f4(sqd.asymptotic_delay()),
    ]])
}

/// `asymptotic-error` (ex-`fig9`): relative error of Eq. 16 vs sim.
fn run_asymptotic_error(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let rho = job.f64("rho")?;
    if d > n {
        return Ok(Vec::new()); // cannot poll more servers than exist
    }
    let approx = asymptotic::mean_delay(rho, d);
    let sim = run_sim(job, n, rho, Policy::SqD { d }, None, budget)?;
    let rel = 100.0 * (sim.mean_delay - approx).abs() / sim.mean_delay;
    Ok(vec![vec![
        f4(rho),
        d.to_string(),
        n.to_string(),
        f4(sim.mean_delay),
        f4(sim.ci_halfwidth),
        f4(approx),
        f4(rel),
    ]])
}

/// `delay-tails` (ex-`delay_tails`): percentile rows for one `(N, T, ρ)`
/// — one row per requested percentile.
fn run_delay_tails(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;
    let percentiles = job.f64_list("percentiles")?;
    let cap = job.u32_or("cap", if rho > 0.9 { 60 } else { 35 })?;

    let sqd = Sqd::new(n, d, rho).map_err(|e| format!("model: {e}"))?;
    let lo = sqd
        .delay_distribution(BoundKind::Lower, t)
        .map_err(|e| format!("lower distribution: {e}"))?;
    let hi = sqd.delay_distribution(BoundKind::Upper, t).ok();
    let exact = BruteForce::solve(n, d, rho, cap)
        .map_err(|e| format!("brute force: {e}"))?
        .delay_distribution()
        .map_err(|e| format!("exact distribution: {e}"))?;
    let sim = run_sim(job, n, rho, Policy::SqD { d }, None, budget)?;

    let q = |dist: &slb_core::DelayDistribution, p: f64| {
        dist.quantile(p).map_err(|e| format!("quantile({p}): {e}"))
    };
    let mut rows = Vec::with_capacity(percentiles.len());
    for &p in &percentiles {
        let hi_cell = match &hi {
            Some(h) => f4(q(h, p)?),
            None => "unstable".to_string(),
        };
        rows.push(vec![
            n.to_string(),
            d.to_string(),
            t.to_string(),
            f4(rho),
            format!("{p}"),
            f4(q(&lo, p)?),
            f4(q(&exact, p)?),
            f4(sim
                .delay_quantile(p)
                .ok_or_else(|| "simulation measured no jobs".to_string())?),
            hi_cell,
        ]);
    }
    Ok(rows)
}

/// The arrival laws of the burstiness experiment, by spec-file name.
fn arrival_case(name: &str) -> Result<Map, String> {
    let err = |e| format!("arrival '{name}': {e}");
    match name {
        "poisson" => Map::poisson(1.0).map_err(err),
        "erlang2" => PhaseType::erlang(2, 2.0)
            .and_then(|ph| Map::renewal(&ph))
            .map_err(err),
        "mmpp-mild" => Map::mmpp2(0.5, 0.5, 0.5, 1.5).map_err(err),
        "mmpp-bursty" => Map::mmpp2(0.1, 0.1, 0.2, 4.0).map_err(err),
        other => Err(format!(
            "unknown arrival case '{other}' (expected poisson, erlang2, mmpp-mild or mmpp-bursty)"
        )),
    }
}

/// `burstiness`: bounds and simulation under one MAP arrival law.
fn run_burstiness(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;
    let map = arrival_case(job.str("arrival")?)?;

    let scv = map
        .interarrival_scv()
        .map_err(|e| format!("interarrival SCV: {e}"))?;
    let model = MapSqd::with_utilization(n, d, &map, rho).map_err(|e| format!("MAP model: {e}"))?;
    let lb = model
        .lower_bound(t)
        .map_err(|e| format!("lower bound: {e}"))?;
    let ub_cell = model
        .upper_bound(t)
        .map_or("unstable".to_string(), |u| f4(u.delay));
    let sim = run_sim(job, n, rho, Policy::SqD { d }, Some(&map), budget)?;

    Ok(vec![vec![
        n.to_string(),
        d.to_string(),
        t.to_string(),
        f4(rho),
        job.str("arrival")?.to_string(),
        f4(scv),
        f4(lb.delay),
        f4(sim.mean_delay),
        f4(sim.ci_halfwidth),
        ub_cell,
        f4(lb.tail_decay),
    ]])
}

/// `logred-iters`: the §IV-A "within k = 6" claim, against functional
/// iteration, drawing dense scratch from the worker's shared pool.
fn run_logred_iters(job: &Job, scratch: &mut Scratch, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;
    let kind = match job.str("kind")? {
        "lower" => BoundKind::Lower,
        "upper" => BoundKind::Upper,
        other => return Err(format!("unknown bound kind '{other}'")),
    };
    let functional_budget = 2_000_000;

    let sqd = Sqd::new(n, d, rho).map_err(|e| format!("model: {e}"))?;
    let model = BoundModel::new(sqd, kind, t).map_err(|e| format!("bound model: {e}"))?;
    let blocks = model.qbd_blocks().map_err(|e| format!("assembly: {e}"))?;
    // The G equation has a solution regardless of positive recurrence;
    // report iterations even for unstable UB cases.
    let ws = scratch.square(blocks.level_len());
    let lr = logarithmic_reduction_in_budgeted(&blocks, 1e-13, 64, ws, budget)
        .map_err(|e| format!("logred: {e}"))?;
    let fi = functional_iteration(&blocks, 1e-12, functional_budget)
        .map(|g| g.iterations.to_string())
        .unwrap_or_else(|_| format!(">{functional_budget}"));

    Ok(vec![vec![
        n.to_string(),
        t.to_string(),
        d.to_string(),
        f4(rho),
        job.str("kind")?.to_string(),
        lr.iterations.to_string(),
        format!("{:.3e}", lr.residual),
        fi,
    ]])
}

/// `theorem3`: scalar-tail diagnostics for the lower-bound model.
fn run_theorem3(job: &Job) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;

    let sqd = Sqd::new(n, d, rho).map_err(|e| format!("model: {e}"))?;
    let model =
        BoundModel::new(sqd, BoundKind::Lower, t).map_err(|e| format!("bound model: {e}"))?;
    let blocks = model.qbd_blocks().map_err(|e| format!("assembly: {e}"))?;
    let sol = blocks
        .solve(&SolveOptions::default())
        .map_err(|e| format!("stationary solve: {e}"))?;

    let rho_n = rho.powi(n as i32);
    let sp_r = match sol.tail() {
        Tail::Matrix(r) => {
            power_iteration_sparse(&CsrMatrix::from_dense(r, 0.0), 1e-13, 100_000)
                .map_err(|e| format!("power iteration: {e}"))?
                .eigenvalue
        }
        Tail::Scalar(b) => *b,
    };

    let pi1 = sol.level_prob(1);
    let pi2 = sol.level_prob(2);
    let num = pi2
        .iter()
        .zip(&pi1)
        .map(|(a, b)| (a - rho_n * b).abs())
        .fold(0.0_f64, f64::max);
    let den = pi2.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let vec_res = if den > 0.0 { num / den } else { 0.0 };

    let fast = sqd
        .lower_bound(t)
        .map_err(|e| format!("scalar solve: {e}"))?
        .delay;
    let full = sqd
        .lower_bound_full_r(t)
        .map_err(|e| format!("full solve: {e}"))?
        .delay;
    let rel = (fast - full).abs() / full;

    Ok(vec![vec![
        n.to_string(),
        d.to_string(),
        format!("{rho}"),
        t.to_string(),
        format!("{sp_r:.12}"),
        format!("{rho_n:.12}"),
        format!("{vec_res:.3e}"),
        format!("{rel:.3e}"),
    ]])
}

/// `scaling`: the paper's delay sandwich at production `N`, computed on
/// the occupancy-lumped QBD state space. The lower bound uses the
/// Theorem-3 scalar tail (`β = ρᴺ`); the upper bound uses the sparse
/// decay-tail solver and degrades to an `unstable` cell where the
/// threshold-`T` upper model is not positive recurrent — the sandwich
/// check then verifies only `lower ≤ sim` for that row. JSQ rows poll
/// all `N` servers (`d = N` in the lumped model); the `d` column keeps
/// the spec value for grid identity.
fn run_scaling(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let t = job.u32("t")?;
    let rho = job.f64("rho")?;
    let policy_name = job.str("policy")?;
    let Some(policy) = scaling_policy(policy_name, d, n)? else {
        return Ok(Vec::new());
    };
    let (lower, upper) = lumped_sandwich(policy, n, d, rho, t, budget)?;
    let sim = run_sim(job, n, rho, policy, None, budget)?;

    Ok(vec![vec![
        policy_name.to_string(),
        n.to_string(),
        d.to_string(),
        t.to_string(),
        f4(rho),
        lower,
        f4(sim.mean_delay),
        f4(sim.ci_halfwidth),
        upper,
        sim.max_queue_len.to_string(),
    ]])
}

/// The exact lumped-QBD mean-delay sandwich at threshold `t`. Returns
/// the lower- and upper-bound cells: `unstable` where the upper model's
/// drift condition fails — [`check_sandwich`] skips that side of the
/// comparison, exactly as the `bounds` family's `inf` — and
/// `nonconverged` where a solver exhausted its iteration cap, which
/// [`check_sandwich`] reports as a skipped row status instead of
/// comparing a last iterate that is not a bound. A tripped budget
/// aborts the job instead (`interrupted: ...`).
///
/// [`check_sandwich`]: crate::check_sandwich
fn lumped_sandwich(
    policy: Policy,
    n: usize,
    d: usize,
    rho: f64,
    t: u32,
    budget: &Budget,
) -> Result<(String, String), String> {
    // JSQ is SQ(N): every arrival polls all servers.
    let poll = if matches!(policy, Policy::Jsq) { n } else { d };
    let sqd = Sqd::new(n, poll, rho).map_err(|e| format!("scaling model: {e}"))?;
    let opts = SparseSolveOptions {
        budget: budget.clone(),
        ..SparseSolveOptions::default()
    };
    let lower = match sqd.lower_bound_lumped_with(t, &opts) {
        Ok(r) => f4(r.delay),
        Err(CoreError::NonConverged { .. }) => "nonconverged".to_string(),
        Err(e) => return Err(format!("lumped lower bound: {e}")),
    };
    let upper = match sqd.upper_bound_lumped_with(t, &opts) {
        Ok(r) => f4(r.delay),
        Err(CoreError::UpperBoundUnstable { .. }) => "unstable".to_string(),
        Err(CoreError::NonConverged { .. }) => "nonconverged".to_string(),
        Err(e) => return Err(format!("lumped upper bound: {e}")),
    };
    Ok((lower, upper))
}

/// Resolves the scaling/service policy name; `Ok(None)` marks an
/// infeasible point (`d > N` under SQ(d)) that the sweep skips, as the
/// asymptotic-error family does, instead of silently clamping `d`
/// while the row still prints the unclamped value.
fn scaling_policy(name: &str, d: usize, n: usize) -> Result<Option<Policy>, String> {
    match name {
        "sqd" if d > n => Ok(None),
        "sqd" => Ok(Some(Policy::SqD { d })),
        "jsq" => Ok(Some(Policy::Jsq)),
        other => Err(format!("unknown policy '{other}' (expected sqd or jsq)")),
    }
}

/// The O(1)-to-evaluate mean-delay sandwich valid at any `N`: the
/// mean-field delay (Eq. 16 for SQ(d); the bare unit service time for
/// JSQ, whose delay tends to 1 as `N → ∞`) from below, and the SQ(1)
/// random-routing M/M/1 delay `1/(1 − ρ)` from above. Only the
/// `service` family still uses this: a capacity query bisects `N`, so
/// its per-probe references must stay O(1); the `scaling` family
/// computes the exact lumped-QBD sandwich instead.
fn o1_sandwich(policy: Policy, rho: f64) -> (f64, f64) {
    let lower = match policy {
        Policy::SqD { d } => asymptotic::mean_delay(rho, d),
        _ => 1.0,
    };
    (lower, 1.0 / (1.0 - rho))
}

/// `service`: one service-level grid point — the scaling row extended
/// with the p50/p90/p99 sojourn-time percentiles the capacity planner
/// bisects against. Percentiles come from the simulation's delay
/// histogram (bin width 0.02 service units).
fn run_service(job: &Job, budget: &Budget) -> Result<Vec<Row>, String> {
    let n = job.usize("n")?;
    let d = job.usize("d")?;
    let rho = job.f64("rho")?;
    let policy_name = job.str("policy")?;
    let Some(policy) = scaling_policy(policy_name, d, n)? else {
        return Ok(Vec::new());
    };
    let (lower, upper) = o1_sandwich(policy, rho);
    let sim = run_sim(job, n, rho, policy, None, budget)?;
    let q = |p: f64| {
        sim.delay_quantile(p)
            .map(f4)
            .ok_or_else(|| "simulation measured no jobs".to_string())
    };

    Ok(vec![vec![
        policy_name.to_string(),
        n.to_string(),
        d.to_string(),
        f4(rho),
        f4(lower),
        f4(sim.mean_delay),
        f4(sim.ci_halfwidth),
        q(0.5)?,
        q(0.9)?,
        q(0.99)?,
        f4(upper),
        sim.max_queue_len.to_string(),
    ]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn job(family: Family, params: &[(&str, Value)]) -> Job {
        Job::new(
            family,
            0,
            params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn family_names_roundtrip() {
        for f in [
            Family::Bounds,
            Family::AsymptoticError,
            Family::DelayTails,
            Family::Burstiness,
            Family::LogredIters,
            Family::Theorem3,
            Family::Scaling,
            Family::Service,
        ] {
            assert_eq!(Family::from_name(f.as_str()).unwrap(), f);
            assert!(!f.columns().is_empty());
        }
        assert!(Family::from_name("bogus").is_err());
    }

    #[test]
    fn service_row_orders_percentiles_and_sandwiches() {
        let j = job(
            Family::Service,
            &[
                ("n", Value::Int(16)),
                ("d", Value::Int(2)),
                ("rho", Value::Float(0.8)),
                ("policy", Value::Str("sqd".into())),
                ("jobs", Value::Int(60_000)),
                ("replications", Value::Int(2)),
                ("seed", Value::Int(7)),
            ],
        );
        let rows = run_job(&j, &mut Scratch::new()).unwrap();
        assert_eq!(rows.len(), 1);
        let cols = Family::Service.columns();
        assert_eq!(rows[0].len(), cols.len());
        let cell = |name: &str| -> f64 {
            rows[0][cols.iter().position(|c| *c == name).unwrap()]
                .parse()
                .unwrap()
        };
        assert!(cell("p50") <= cell("p90") && cell("p90") <= cell("p99"));
        assert!(cell("lower") <= cell("sim") + 0.1);
        assert!(cell("sim") <= cell("upper") + 0.1);
        // Pooled entry point produces identical rows (shared scratch).
        assert_eq!(run_job_pooled(&j).unwrap(), rows);
        // Infeasible d > n skips, like scaling.
        let j = job(
            Family::Service,
            &[
                ("n", Value::Int(2)),
                ("d", Value::Int(4)),
                ("rho", Value::Float(0.5)),
                ("policy", Value::Str("sqd".into())),
                ("jobs", Value::Int(1_000)),
                ("replications", Value::Int(1)),
                ("seed", Value::Int(1)),
            ],
        );
        assert_eq!(run_job(&j, &mut Scratch::new()).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn scaling_row_is_sandwiched_for_both_policies() {
        let cols = Family::Scaling.columns();
        let cell = |row: &Row, name: &str| -> f64 {
            row[cols.iter().position(|c| *c == name).unwrap()]
                .parse()
                .unwrap()
        };
        for policy in ["sqd", "jsq"] {
            let j = job(
                Family::Scaling,
                &[
                    ("n", Value::Int(8)),
                    ("d", Value::Int(2)),
                    ("t", Value::Int(3)),
                    ("rho", Value::Float(0.7)),
                    ("policy", Value::Str(policy.into())),
                    ("jobs", Value::Int(60_000)),
                    ("replications", Value::Int(2)),
                    ("seed", Value::Int(5)),
                ],
            );
            let rows = run_job(&j, &mut Scratch::new()).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].len(), cols.len());
            let (lower, sim, upper) = (
                cell(&rows[0], "lower"),
                cell(&rows[0], "sim"),
                cell(&rows[0], "upper"),
            );
            // Both QBD bounds are finite here and the sim sits between
            // them (generous slack for the smoke-sized sim budget).
            assert!(
                lower <= sim + 0.1 && sim <= upper + 0.1,
                "{policy}: {rows:?}"
            );
            assert!(lower <= upper, "{policy}: {rows:?}");
        }
        // Where the threshold-T upper model loses positive recurrence
        // the row degrades to an `unstable` cell instead of failing —
        // check_sandwich then verifies only the lower side.
        let j = job(
            Family::Scaling,
            &[
                ("n", Value::Int(16)),
                ("d", Value::Int(2)),
                ("t", Value::Int(2)),
                ("rho", Value::Float(0.9)),
                ("policy", Value::Str("sqd".into())),
                ("jobs", Value::Int(20_000)),
                ("replications", Value::Int(1)),
                ("seed", Value::Int(5)),
            ],
        );
        let rows = run_job(&j, &mut Scratch::new()).unwrap();
        let upper_i = cols.iter().position(|c| *c == "upper").unwrap();
        assert_eq!(rows[0][upper_i], "unstable", "{rows:?}");
        assert!(cell(&rows[0], "lower") <= cell(&rows[0], "sim") + 0.1);
        // Unknown policies are reported, not panicked on.
        let j = job(
            Family::Scaling,
            &[
                ("n", Value::Int(8)),
                ("d", Value::Int(2)),
                ("t", Value::Int(2)),
                ("rho", Value::Float(0.5)),
                ("policy", Value::Str("lru".into())),
                ("jobs", Value::Int(1_000)),
                ("replications", Value::Int(1)),
                ("seed", Value::Int(1)),
            ],
        );
        assert!(run_job(&j, &mut Scratch::new())
            .unwrap_err()
            .contains("unknown policy"));
        // d > n under sqd is infeasible: skipped, like asymptotic-error.
        let j = job(
            Family::Scaling,
            &[
                ("n", Value::Int(4)),
                ("d", Value::Int(8)),
                ("t", Value::Int(2)),
                ("rho", Value::Float(0.5)),
                ("policy", Value::Str("sqd".into())),
                ("jobs", Value::Int(1_000)),
                ("replications", Value::Int(1)),
                ("seed", Value::Int(1)),
            ],
        );
        assert_eq!(run_job(&j, &mut Scratch::new()).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn bounds_row_is_sandwiched() {
        let j = job(
            Family::Bounds,
            &[
                ("n", Value::Int(3)),
                ("t", Value::Int(3)),
                ("d", Value::Int(2)),
                ("rho", Value::Float(0.7)),
                ("jobs", Value::Int(40_000)),
                ("replications", Value::Int(2)),
                ("seed", Value::Int(1)),
            ],
        );
        let rows = run_job(&j, &mut Scratch::new()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), Family::Bounds.columns().len());
        let lower: f64 = rows[0][4].parse().unwrap();
        let sim: f64 = rows[0][5].parse().unwrap();
        let upper: f64 = rows[0][7].parse().unwrap();
        assert!(lower <= sim + 0.1 && sim <= upper + 0.1, "{rows:?}");
    }

    #[test]
    fn asymptotic_error_skips_infeasible_points() {
        let j = job(
            Family::AsymptoticError,
            &[
                ("n", Value::Int(3)),
                ("d", Value::Int(5)),
                ("rho", Value::Float(0.75)),
            ],
        );
        assert_eq!(run_job(&j, &mut Scratch::new()).unwrap(), Vec::<Row>::new());
    }

    #[test]
    fn logred_iters_uses_shared_scratch() {
        let mut scratch = Scratch::new();
        let j = job(
            Family::LogredIters,
            &[
                ("n", Value::Int(3)),
                ("t", Value::Int(2)),
                ("d", Value::Int(2)),
                ("rho", Value::Float(0.7)),
                ("kind", Value::Str("lower".into())),
            ],
        );
        let first = run_job(&j, &mut scratch).unwrap();
        assert_eq!(scratch.shapes(), 1);
        // Re-running on the warm pool is deterministic.
        assert_eq!(run_job(&j, &mut scratch).unwrap(), first);
        assert_eq!(scratch.shapes(), 1);
        let iters: usize = first[0][5].parse().unwrap();
        assert!(iters <= 8, "logred should converge within ~6: {first:?}");
    }

    #[test]
    fn runner_errors_name_the_stage() {
        let j = job(Family::Bounds, &[("n", Value::Int(3))]);
        let err = run_job(&j, &mut Scratch::new()).unwrap_err();
        assert!(err.contains("missing parameter"), "{err}");
        let j = job(
            Family::Burstiness,
            &[
                ("n", Value::Int(3)),
                ("d", Value::Int(2)),
                ("t", Value::Int(3)),
                ("rho", Value::Float(0.5)),
                ("arrival", Value::Str("weird".into())),
            ],
        );
        assert!(run_job(&j, &mut Scratch::new())
            .unwrap_err()
            .contains("unknown arrival case"));
    }
}
