//! # slb-exp
//!
//! The declarative scenario-sweep engine: every experiment of the
//! ICDCS 2016 evaluation is *data* — a small spec file under
//! `experiments/*.toml` naming a family, fixed parameters and the axes
//! to sweep — executed by one cached, multithreaded engine instead of a
//! per-figure binary.
//!
//! Pipeline:
//!
//! 1. [`ScenarioSpec::parse`] reads the spec (hand-rolled TOML subset,
//!    no external dependencies — the build environment is offline);
//! 2. [`ScenarioSpec::expand`] flattens the axes (cross product, with
//!    `zip`ped axes advancing together) into an ordered [`Job`] list;
//! 3. [`run_sweep`] answers each job from the content-hash cache under
//!    `target/sweep-cache/` or schedules it on a work-stealing thread
//!    pool, then emits rows **in job order** — the output is
//!    byte-identical for any thread count;
//! 4. [`check_sandwich`] (the `--check` flag / CI gate) asserts the
//!    paper's `lower ≤ sim ≤ upper` invariant on every applicable row.
//!
//! The CLI front end is `slb sweep <spec.toml>` in `slb-cli`.
//!
//! ```
//! use slb_exp::{run_sweep, ScenarioSpec, SweepOptions};
//!
//! let spec = ScenarioSpec::parse(
//!     "[scenario]\n\
//!      name = \"demo\"\n\
//!      family = \"logred-iters\"\n\
//!      d = 2\n\
//!      [axes]\n\
//!      n = [3]\n\
//!      t = [2]\n\
//!      rho = [0.5, 0.9]\n\
//!      kind = [\"lower\"]\n",
//! )
//! .unwrap();
//! let report = run_sweep(
//!     &spec,
//!     &SweepOptions {
//!         threads: 2,
//!         cache: false,
//!         ..SweepOptions::default()
//!     },
//! )
//! .unwrap();
//! assert_eq!(report.rows.len(), 2); // one row per rho
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod check;
pub mod exec;
pub mod json;
pub mod manifest;
pub mod output;
pub mod parser;
pub mod query;
pub mod runner;
pub mod spec;
pub mod store;
pub mod value;

pub use check::check_sandwich;
pub use exec::{run_sweep, run_sweep_on, SweepOptions, SweepReport};
pub use json::Json;
pub use manifest::{manifest_path, RunManifest};
pub use query::{answer, answer_with_budget, Answer, CapacityAnswer, Metric, Query, SimBudget};
pub use runner::{
    run_job, run_job_budgeted, run_job_pooled, run_job_pooled_budgeted, Family, Row, Scratch,
};
pub use slb_linalg::{Budget, CancelToken};
pub use slb_pool::WorkPool;
pub use spec::{Job, ScenarioSpec};
pub use store::{CacheStore, Source};
pub use value::Value;
