//! The sweep executor: cached, multithreaded, deterministic.
//!
//! Since PR 6 the executor is a thin batch driver over the two shared
//! service layers: jobs are scheduled onto a [`WorkPool`] (the same
//! long-lived work-stealing pool `slb serve` answers requests on) and
//! every evaluation goes through a [`CacheStore`]
//! ([`CacheStore::get_or_compute`]), so a sweep, a one-shot `slb query`
//! and a served request produce — and replay — byte-identical rows for
//! identical canonical keys.
//!
//! Determinism: runners are pure functions of the job parameters, every
//! result lands in the slot of its job index, and rows are concatenated
//! in job order after the batch drains — so the output is byte-identical
//! for any thread count and any steal interleaving (the same discipline
//! as `slb-sim`'s `run_parallel`). The cache layer reuses that purity:
//! a hit replays the stored rows, which are the same bytes a cold run
//! would produce.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::cache;
use crate::check::check_sandwich;
use crate::manifest::RunManifest;
use crate::runner::{run_job_pooled_budgeted, Row};
use crate::spec::{Job, ScenarioSpec};
use crate::store::CacheStore;
use slb_linalg::{Budget, CancelToken};
use slb_pool::WorkPool;

/// Options for one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-thread count (clamped to at least 1; jobs fewer than
    /// threads leave the surplus workers idle).
    pub threads: usize,
    /// Apply the spec's `[smoke]` overrides (reduced CI grids).
    pub smoke: bool,
    /// Consult and populate the result cache.
    pub cache: bool,
    /// Cache directory override; defaults to
    /// `<workspace-root>/target/sweep-cache`.
    pub cache_dir: Option<PathBuf>,
    /// Verify the bound sandwich (`lower ≤ sim/exact ≤ upper`) on every
    /// row that carries those columns; violations fail the sweep.
    pub check: bool,
    /// Resume an interrupted run: seed the checkpoint manifest with the
    /// previous run's completed set (the results themselves replay from
    /// the cache regardless).
    pub resume: bool,
    /// External cancellation: when this token fires, in-flight jobs
    /// abort at their next budget poll, queued jobs are skipped, the
    /// checkpoint is flushed, and the sweep returns an `interrupted`
    /// error.
    pub cancel: Option<CancelToken>,
    /// Also treat a delivered SIGINT/SIGTERM (`sigint::triggered()`) as
    /// cancellation — the graceful ctrl-C path of `slb sweep`. Off for
    /// embedded runs (`slb serve`), whose sweeps must not be cancelled
    /// by the daemon's own shutdown signal handling.
    pub watch_sigint: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            smoke: false,
            cache: true,
            cache_dir: None,
            check: false,
            resume: false,
            cancel: None,
            watch_sigint: false,
        }
    }
}

/// The outcome of a sweep: the full table plus execution counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Column names (fixed per family).
    pub columns: Vec<&'static str>,
    /// All rows in job order — independent of thread count.
    pub rows: Vec<Row>,
    /// Expanded grid size.
    pub jobs: usize,
    /// Jobs answered from the cache (memory, disk, or joined with an
    /// identical in-flight evaluation).
    pub cache_hits: usize,
    /// Jobs that actually ran a solver/simulator (`jobs − cache_hits`;
    /// a pure replay reports 0).
    pub computed: usize,
    /// Points the `--resume` checkpoint recorded as completed by a
    /// previous interrupted run (0 without `--resume`).
    pub resumed: usize,
    /// Rows that passed the sandwich check (0 when unchecked or the
    /// family carries no bound columns).
    pub checked_rows: usize,
}

/// One job's outcome: its rows plus whether the store answered it (a
/// cache hit), or the runner's error message.
type JobOutcome = Result<(Vec<Row>, bool), String>;

/// One batch's completion state: result slots plus a drained counter
/// the submitting thread waits on.
struct Batch {
    /// Filled exactly once per job by whichever worker ran it.
    slots: Vec<Mutex<Option<JobOutcome>>>,
    finished: Mutex<usize>,
    drained: Condvar,
}

/// Expands a spec and runs (or replays) every job on a pool owned by
/// this call.
///
/// # Errors
///
/// Returns a message when expansion fails, any job's runner fails, or
/// the sandwich check finds a violating row.
pub fn run_sweep(spec: &ScenarioSpec, opts: &SweepOptions) -> Result<SweepReport, String> {
    let store = opts.cache.then(|| {
        Arc::new(CacheStore::open(
            opts.cache_dir
                .clone()
                .unwrap_or_else(cache::default_cache_dir),
        ))
    });
    let pool = WorkPool::new(opts.threads.max(1));
    let report = run_sweep_on(spec, opts, &pool, store.as_ref());
    pool.shutdown();
    report
}

/// [`run_sweep`] on a caller-owned pool and store — the entry point a
/// long-running process (`slb serve`) uses so sweeps share its workers
/// and its warm index. `opts.threads` is ignored (the pool is already
/// sized); `opts.cache`/`opts.cache_dir` are ignored when `store` is
/// given.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_on(
    spec: &ScenarioSpec,
    opts: &SweepOptions,
    pool: &WorkPool,
    store: Option<&Arc<CacheStore>>,
) -> Result<SweepReport, String> {
    let jobs: Arc<Vec<Job>> = Arc::new(spec.expand(opts.smoke)?);
    let total = jobs.len();

    // The run's checkpoint identity: a hash over every expanded
    // canonical key, so any parameter/axis/smoke change — which also
    // changes the cache keys — starts a fresh checkpoint.
    let spec_hash = cache::fnv64(
        &jobs
            .iter()
            .map(Job::canonical_key)
            .collect::<Vec<_>>()
            .join("\n"),
    );
    // Checkpointing needs the durable store (resume replays from it);
    // with the cache disabled there is nothing a manifest could resume.
    let (manifest, resumed) = match store {
        Some(store) => {
            let (m, resumed) = RunManifest::open(
                store.root(),
                spec_hash,
                &spec.name,
                opts.smoke,
                total,
                opts.resume,
            );
            (Some(Arc::new(m)), resumed)
        }
        None => (None, 0),
    };

    // One cancel token for the whole run: tripped by the caller's token
    // or by SIGINT/SIGTERM (when watched). Workers observe it two ways —
    // in-flight solves poll it through the job budget and abort
    // mid-iteration; queued jobs check it before starting and skip.
    let run_cancel = CancelToken::new();
    let budget = Budget::unlimited().cancel_token(run_cancel.clone());
    let externally_cancelled = || {
        (opts.watch_sigint && sigint::triggered())
            || opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    };
    // A cancellation that predates the run must win even if every job
    // would finish inside the first drain-poll interval.
    let mut interrupted = externally_cancelled();
    if interrupted {
        run_cancel.cancel();
    }

    let batch = Arc::new(Batch {
        slots: (0..total).map(|_| Mutex::new(None)).collect(),
        finished: Mutex::new(0),
        drained: Condvar::new(),
    });
    for i in 0..total {
        let jobs = Arc::clone(&jobs);
        let batch = Arc::clone(&batch);
        let store = store.map(Arc::clone);
        let manifest = manifest.clone();
        let cancel = run_cancel.clone();
        let budget = budget.clone();
        pool.spawn(move || {
            let job = &jobs[i];
            let outcome = if cancel.is_cancelled() {
                Err("interrupted: sweep cancelled before this job started".to_string())
            } else {
                match &store {
                    Some(store) => store
                        .get_or_compute(&job.canonical_key(), || {
                            run_job_pooled_budgeted(job, &budget)
                        })
                        .map(|(rows, source)| (rows.as_ref().clone(), source.is_hit())),
                    None => run_job_pooled_budgeted(job, &budget).map(|rows| (rows, false)),
                }
            };
            if outcome.is_ok() {
                // The rows are published (store) by the time we record
                // the index, so a checkpointed index is always
                // replayable.
                if let Some(m) = &manifest {
                    m.complete(i);
                }
            }
            *batch.slots[i].lock().expect("slot lock") = Some(outcome);
            let mut finished = batch.finished.lock().expect("batch lock");
            *finished += 1;
            batch.drained.notify_all();
        });
    }

    // Drain, watching for cancellation: on SIGINT (or the caller's
    // token) trip the shared token once, then keep waiting — in-flight
    // jobs abort at their next budget poll and queued jobs skip, so the
    // drain completes promptly instead of after minutes of doomed
    // solving.
    {
        let mut finished = batch.finished.lock().expect("batch lock");
        while *finished < total {
            let (f, _) = batch
                .drained
                .wait_timeout(finished, Duration::from_millis(50))
                .expect("batch wait");
            finished = f;
            if !interrupted && externally_cancelled() {
                interrupted = true;
                run_cancel.cancel();
            }
        }
    }

    if interrupted {
        // Completed points are all in the store and checkpointed; the
        // error tells the operator how to pick the run back up.
        let done = manifest.as_ref().map_or_else(
            || {
                (0..total)
                    .filter(|&i| matches!(&*batch.slots[i].lock().expect("slot lock"), Some(Ok(_))))
                    .count()
            },
            |m| {
                m.flush();
                m.completed()
            },
        );
        return Err(format!(
            "interrupted after {done} of {total} points; completed points are checkpointed — \
             re-run with --resume to continue"
        ));
    }

    // Collect in job order; the first (by job order) failure names its
    // grid point. Successful siblings were already published to the
    // store, so a retry after fixing one bad point replays the rest.
    let mut rows = Vec::new();
    let mut cache_hits = 0usize;
    for (i, slot) in batch.slots.iter().enumerate() {
        let outcome = slot
            .lock()
            .expect("slot lock")
            .take()
            .unwrap_or_else(|| Err("job was never executed (executor bug)".into()));
        match outcome {
            Ok((job_rows, hit)) => {
                cache_hits += usize::from(hit);
                rows.extend(job_rows);
            }
            Err(e) => {
                return Err(format!(
                    "job {} of {} ({}): {e}",
                    i + 1,
                    total,
                    describe(&jobs[i])
                ));
            }
        }
    }

    let checked_rows = if opts.check {
        check_sandwich(spec.family, spec.family.columns(), &rows)?
    } else {
        0
    };

    // Every point landed: the run needs no resume checkpoint any more.
    if let Some(m) = &manifest {
        m.finish();
    }

    Ok(SweepReport {
        columns: spec.family.columns().to_vec(),
        rows,
        jobs: total,
        cache_hits,
        computed: total - cache_hits,
        resumed,
        checked_rows,
    })
}

/// Short human description of a job for error messages: the varying
/// parameters only (axis values), which is what identifies a grid point.
fn describe(job: &crate::spec::Job) -> String {
    for key in ["rho", "n"] {
        if let Some(v) = job.get(key) {
            return format!("{key}={v}, ...");
        }
    }
    String::from("job")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("slb-exp-exec-{tag}-{}", std::process::id()))
    }

    const SPEC: &str = r#"
[scenario]
name = "exec-test"
family = "logred-iters"
d = 2

[axes]
n   = [3, 3]
t   = [2, 3]
rho = [0.5, 0.75, 0.9]
kind = ["lower", "upper"]
zip = ["n", "t"]
"#;

    #[test]
    fn thread_count_does_not_change_output() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let base = SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&spec, &base).unwrap();
        assert_eq!(serial.jobs, 12);
        assert_eq!(serial.rows.len(), 12);
        for threads in [2, 8] {
            let par = run_sweep(
                &spec,
                &SweepOptions {
                    threads,
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(par.rows, serial.rows, "threads = {threads}");
        }
    }

    #[test]
    fn cache_replays_identical_rows() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let dir = temp_dir("replay");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            threads: 4,
            cache: true,
            cache_dir: Some(dir.clone()),
            ..SweepOptions::default()
        };
        let cold = run_sweep(&spec, &opts).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = run_sweep(&spec, &opts).unwrap();
        assert_eq!(warm.cache_hits, warm.jobs);
        assert_eq!(warm.rows, cold.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_pool_and_store_match_owned_run() {
        // The serve path (caller-owned pool + store) must produce the
        // same bytes as a plain sweep, and the second run over the same
        // warm store must be all hits.
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let dir = temp_dir("shared");
        let _ = std::fs::remove_dir_all(&dir);
        let owned = run_sweep(
            &spec,
            &SweepOptions {
                threads: 2,
                cache: false,
                ..SweepOptions::default()
            },
        )
        .unwrap();

        let pool = WorkPool::new(3);
        let store = Arc::new(CacheStore::open(dir.clone()));
        let opts = SweepOptions::default();
        let first = run_sweep_on(&spec, &opts, &pool, Some(&store)).unwrap();
        assert_eq!(first.rows, owned.rows);
        assert_eq!(first.cache_hits, 0);
        let second = run_sweep_on(&spec, &opts, &pool, Some(&store)).unwrap();
        assert_eq!(second.rows, owned.rows);
        assert_eq!(second.cache_hits, second.jobs);
        pool.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_sweep_reports_interrupted_then_resumes_cleanly() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let dir = temp_dir("cancel");
        let _ = std::fs::remove_dir_all(&dir);
        let token = CancelToken::new();
        token.cancel(); // cancelled before any job starts: nothing may run
        let err = run_sweep(
            &spec,
            &SweepOptions {
                threads: 4,
                cache: true,
                cache_dir: Some(dir.clone()),
                cancel: Some(token),
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("interrupted after 0 of 12"), "{err}");
        assert!(err.contains("--resume"), "{err}");

        // The interrupted run left a checkpoint; resuming without the
        // cancel token completes the grid and retires it.
        let resume_opts = SweepOptions {
            threads: 4,
            cache: true,
            cache_dir: Some(dir.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let report = run_sweep(&spec, &resume_opts).unwrap();
        assert_eq!(report.computed, 12);
        assert_eq!(report.resumed, 0, "nothing had completed before cancel");
        // A further resume replays everything from the cache — the CI
        // "0 computed" invariant — and finds no checkpoint left behind.
        let replay = run_sweep(&spec, &resume_opts).unwrap();
        assert_eq!(replay.computed, 0);
        assert_eq!(replay.resumed, 0, "a finished run retired its manifest");
        assert_eq!(replay.rows, report.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_counts_previously_completed_points() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let dir = temp_dir("resume");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            threads: 2,
            cache: true,
            cache_dir: Some(dir.clone()),
            ..SweepOptions::default()
        };
        let cold = run_sweep(&spec, &opts).unwrap();

        // Fabricate the checkpoint an interruption after 5 points would
        // have left (the executor deletes its own on success).
        let jobs = spec.expand(false).unwrap();
        let spec_hash = cache::fnv64(
            &jobs
                .iter()
                .map(Job::canonical_key)
                .collect::<Vec<_>>()
                .join("\n"),
        );
        let (m, _) = RunManifest::open(&dir, spec_hash, &spec.name, false, jobs.len(), false);
        for i in 0..5 {
            m.complete(i);
        }
        m.flush();

        let resumed_run = run_sweep(
            &spec,
            &SweepOptions {
                resume: true,
                ..opts.clone()
            },
        )
        .unwrap();
        assert_eq!(resumed_run.resumed, 5);
        assert_eq!(
            resumed_run.cache_hits, 12,
            "all points replay from the store"
        );
        assert_eq!(resumed_run.rows, cold.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_name_the_failing_point() {
        // rho = 1.5 is invalid for the model: the sweep must fail with a
        // located message, not panic.
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"bad\"\nfamily = \"logred-iters\"\nd = 2\n\
             [axes]\nn = [3]\nt = [2]\nrho = [1.5]\nkind = [\"lower\"]\n",
        )
        .unwrap();
        let err = run_sweep(
            &spec,
            &SweepOptions {
                cache: false,
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("rho=1.5"), "{err}");
    }
}
