//! The sweep executor: cached, multithreaded, deterministic.
//!
//! Jobs are distributed round-robin onto per-worker deques; a worker
//! pops from the back of its own deque and, when empty, steals from the
//! front of a sibling's. Stealing takes the *oldest* queued job, so two
//! workers never contend for the same end and long tails drain evenly.
//!
//! Determinism: runners are pure functions of the job parameters, every
//! result lands in the slot of its job index, and rows are concatenated
//! in job order after the scope joins — so the output is byte-identical
//! for any thread count and any steal interleaving (the same discipline
//! as `slb-sim`'s `run_parallel`). The cache layer reuses that purity:
//! a hit replays the stored rows, which are the same bytes a cold run
//! would produce.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::cache;
use crate::check::check_sandwich;
use crate::runner::{run_job, Row, Scratch};
use crate::spec::ScenarioSpec;

/// Result slot of one scheduled job: filled exactly once by whichever
/// worker ran it.
type JobSlot = Mutex<Option<Result<Vec<Row>, String>>>;

/// Options for one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-thread count (clamped to at least 1; jobs fewer than
    /// threads leave the surplus workers idle).
    pub threads: usize,
    /// Apply the spec's `[smoke]` overrides (reduced CI grids).
    pub smoke: bool,
    /// Consult and populate the result cache.
    pub cache: bool,
    /// Cache directory override; defaults to
    /// `<workspace-root>/target/sweep-cache`.
    pub cache_dir: Option<PathBuf>,
    /// Verify the bound sandwich (`lower ≤ sim/exact ≤ upper`) on every
    /// row that carries those columns; violations fail the sweep.
    pub check: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            smoke: false,
            cache: true,
            cache_dir: None,
            check: false,
        }
    }
}

/// The outcome of a sweep: the full table plus execution counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Column names (fixed per family).
    pub columns: Vec<&'static str>,
    /// All rows in job order — independent of thread count.
    pub rows: Vec<Row>,
    /// Expanded grid size.
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Rows that passed the sandwich check (0 when unchecked or the
    /// family carries no bound columns).
    pub checked_rows: usize,
}

/// Expands a spec and runs (or replays) every job.
///
/// # Errors
///
/// Returns a message when expansion fails, any job's runner fails, or
/// the sandwich check finds a violating row.
pub fn run_sweep(spec: &ScenarioSpec, opts: &SweepOptions) -> Result<SweepReport, String> {
    let jobs = spec.expand(opts.smoke)?;
    let total = jobs.len();
    let cache_dir = opts
        .cache_dir
        .clone()
        .unwrap_or_else(cache::default_cache_dir);

    // Cache pass: resolve hits up front so only misses are scheduled.
    let mut slots: Vec<Option<Vec<Row>>> = vec![None; total];
    let mut cache_hits = 0usize;
    if opts.cache {
        for job in &jobs {
            if let Some(rows) = cache::load(&cache_dir, &job.canonical_key()) {
                slots[job.index] = Some(rows);
                cache_hits += 1;
            }
        }
    }
    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();

    if !pending.is_empty() {
        let workers = opts.threads.clamp(1, pending.len());
        // Round-robin seeding keeps neighbouring (similar-cost) grid
        // points on different workers.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    pending
                        .iter()
                        .copied()
                        .skip(w)
                        .step_by(workers)
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();
        let results: Vec<JobSlot> = (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let results = &results;
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    loop {
                        // Own deque first (back = newest, cache-warm
                        // shapes), then steal the oldest job of the
                        // first non-empty sibling.
                        let mut next = deques[w].lock().expect("deque lock").pop_back();
                        if next.is_none() {
                            for v in 1..workers {
                                let victim = (w + v) % workers;
                                next = deques[victim].lock().expect("deque lock").pop_front();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some(i) = next else { break };
                        let outcome = run_job(&jobs[i], &mut scratch);
                        *results[i].lock().expect("result lock") = Some(outcome);
                    }
                });
            }
        });

        // Collect in job order; store fresh results in the cache from
        // the main thread so cache writes cannot race. Every successful
        // job is cached even when a sibling failed — a retry after
        // fixing one bad grid point replays the rest instead of
        // recomputing it.
        let mut first_error: Option<String> = None;
        for i in &pending {
            let outcome = results[*i]
                .lock()
                .expect("result lock")
                .take()
                .unwrap_or_else(|| Err("job was never executed (executor bug)".into()));
            match outcome {
                Ok(rows) => {
                    if opts.cache {
                        if let Err(e) = cache::store(&cache_dir, &jobs[*i].canonical_key(), &rows) {
                            eprintln!("warning: cannot write sweep cache: {e}");
                        }
                    }
                    slots[*i] = Some(rows);
                }
                Err(e) if first_error.is_none() => {
                    first_error = Some(format!(
                        "job {} of {} ({}): {e}",
                        i + 1,
                        total,
                        describe(&jobs[*i])
                    ));
                }
                Err(_) => {}
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
    }

    let mut rows = Vec::new();
    for slot in slots {
        rows.extend(slot.expect("all slots filled"));
    }

    let checked_rows = if opts.check {
        check_sandwich(spec.family, spec.family.columns(), &rows)?
    } else {
        0
    };

    Ok(SweepReport {
        columns: spec.family.columns().to_vec(),
        rows,
        jobs: total,
        cache_hits,
        checked_rows,
    })
}

/// Short human description of a job for error messages: the varying
/// parameters only (axis values), which is what identifies a grid point.
fn describe(job: &crate::spec::Job) -> String {
    for key in ["rho", "n"] {
        if let Some(v) = job.get(key) {
            return format!("{key}={v}, ...");
        }
    }
    String::from("job")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("slb-exp-exec-{tag}-{}", std::process::id()))
    }

    const SPEC: &str = r#"
[scenario]
name = "exec-test"
family = "logred-iters"
d = 2

[axes]
n   = [3, 3]
t   = [2, 3]
rho = [0.5, 0.75, 0.9]
kind = ["lower", "upper"]
zip = ["n", "t"]
"#;

    #[test]
    fn thread_count_does_not_change_output() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let base = SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        };
        let serial = run_sweep(&spec, &base).unwrap();
        assert_eq!(serial.jobs, 12);
        assert_eq!(serial.rows.len(), 12);
        for threads in [2, 8] {
            let par = run_sweep(
                &spec,
                &SweepOptions {
                    threads,
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(par.rows, serial.rows, "threads = {threads}");
        }
    }

    #[test]
    fn cache_replays_identical_rows() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let dir = temp_dir("replay");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            threads: 4,
            cache: true,
            cache_dir: Some(dir.clone()),
            ..SweepOptions::default()
        };
        let cold = run_sweep(&spec, &opts).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let warm = run_sweep(&spec, &opts).unwrap();
        assert_eq!(warm.cache_hits, warm.jobs);
        assert_eq!(warm.rows, cold.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_name_the_failing_point() {
        // rho = 1.5 is invalid for the model: the sweep must fail with a
        // located message, not panic.
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"bad\"\nfamily = \"logred-iters\"\nd = 2\n\
             [axes]\nn = [3]\nt = [2]\nrho = [1.5]\nkind = [\"lower\"]\n",
        )
        .unwrap();
        let err = run_sweep(
            &spec,
            &SweepOptions {
                cache: false,
                ..SweepOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("rho=1.5"), "{err}");
    }
}
