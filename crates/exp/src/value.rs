//! Typed values of the scenario-spec format.

use std::fmt;

/// A scalar or list value parsed from a scenario file.
///
/// The spec format distinguishes integers from floats (so `n = 3` can
/// become a `usize` without a lossy round-trip) and keeps lists ordered
/// exactly as written — sweep-axis order is part of the experiment's
/// deterministic output contract.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer literal (`42`).
    Int(i64),
    /// Float literal (`0.95`, `1e-3`).
    Float(f64),
    /// Double-quoted string (`"lower"`).
    Str(String),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// Array (`[1, 2, 3]`), possibly empty or nested.
    List(Vec<Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::List(_) => "list",
        }
    }

    /// A canonical, type-tagged encoding that is stable across runs and
    /// platforms — the building block of sweep-cache content hashes.
    ///
    /// Two values canonicalize identically iff they compare equal, so a
    /// spec edit that changes any parameter changes every affected
    /// cache key.
    pub fn canon(&self) -> String {
        match self {
            Value::Int(i) => format!("i{i}"),
            Value::Float(x) => format!("f{x}"),
            Value::Str(s) => format!("s\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Value::Bool(b) => format!("b{b}"),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(Value::canon).collect();
                format!("[{}]", inner.join(","))
            }
        }
    }

    /// Numeric view: integers promote to floats, everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (floats do **not** demote).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_distinguishes_types() {
        assert_ne!(Value::Int(3).canon(), Value::Float(3.0).canon());
        assert_ne!(Value::Int(3).canon(), Value::Str("3".into()).canon());
        assert_eq!(Value::Float(0.05).canon(), "f0.05");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(true)]).canon(),
            "[i1,btrue]"
        );
    }

    #[test]
    fn canon_escapes_strings() {
        assert_eq!(Value::Str("a\"b".into()).canon(), "s\"a\\\"b\"");
    }

    #[test]
    fn numeric_promotion() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
