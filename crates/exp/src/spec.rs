//! Scenario specifications: a declarative description of one experiment
//! family plus the axes to sweep, expanded into a flat, deterministic
//! job list.
//!
//! A spec file has up to three sections:
//!
//! ```toml
//! [scenario]            # fixed parameters
//! name = "fig10"        # output/display name (required)
//! family = "bounds"     # runner selection (required)
//! d = 2
//! jobs = 2000000        # total simulated jobs per grid point
//!
//! [axes]                # swept parameters: every key is a list
//! n   = [3, 3, 6, 12]
//! t   = [2, 3, 3, 3]
//! rho = [0.5, 0.7, 0.9]
//! zip = ["n", "t"]      # these axes advance together (panels), not as
//!                       # a cross product
//!
//! [smoke]               # overrides applied under --smoke
//! rho = [0.5, 0.9]      # a list replaces the same-named axis
//! jobs = 60000          # a scalar replaces/adds a scenario parameter
//! ```
//!
//! Expansion takes the cross product of the axes in file order (first
//! axis outermost), with all `zip`ped axes advancing as one group. The
//! resulting job order is part of the output contract: rows are emitted
//! in job order regardless of how many executor threads ran them.

use crate::cache::{fnv64, CACHE_SCHEMA};
use crate::parser::parse_document;
use crate::runner::Family;
use crate::value::Value;

/// Keys read by the simulation-driving runners and injected with
/// defaults when a spec omits them.
const SIM_KEYS: [(&str, i64); 3] = [("jobs", 1_000_000), ("replications", 4), ("seed", 1)];

/// Hard ceiling on expanded grid size — a typo in an axis should fail
/// loudly, not allocate a billion jobs.
const MAX_JOBS: usize = 100_000;

/// A parsed scenario file.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used for default output paths).
    pub name: String,
    /// Experiment family selecting the runner and column set.
    pub family: Family,
    params: Vec<(String, Value)>,
    axes: Vec<(String, Vec<Value>)>,
    zip: Vec<String>,
    smoke: Vec<(String, Value)>,
}

impl ScenarioSpec {
    /// Parses a spec from source text.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on syntax errors, unknown sections
    /// or families, missing `name`/`family`, or axis/parameter clashes.
    pub fn parse(src: &str) -> Result<Self, String> {
        let sections = parse_document(src)?;
        for s in &sections {
            if !matches!(s.name.as_str(), "scenario" | "axes" | "smoke") {
                return Err(format!(
                    "line {}: unknown section [{}] (expected scenario, axes or smoke)",
                    s.line, s.name
                ));
            }
        }
        let scenario = sections
            .iter()
            .find(|s| s.name == "scenario")
            .ok_or("missing [scenario] section")?;

        let mut name = None;
        let mut family = None;
        let mut params = Vec::new();
        for (k, v) in &scenario.entries {
            match k.as_str() {
                "name" => {
                    name = Some(
                        v.as_str()
                            .ok_or("scenario.name must be a string")?
                            .to_string(),
                    );
                }
                "family" => {
                    family = Some(Family::from_name(
                        v.as_str().ok_or("scenario.family must be a string")?,
                    )?);
                }
                _ => params.push((k.clone(), v.clone())),
            }
        }
        let name = name.ok_or("scenario.name is required")?;
        let family = family.ok_or("scenario.family is required")?;

        let mut axes = Vec::new();
        let mut zip = Vec::new();
        if let Some(section) = sections.iter().find(|s| s.name == "axes") {
            for (k, v) in &section.entries {
                if k == "zip" {
                    let items = v.as_list().ok_or("axes.zip must be a list of axis names")?;
                    for it in items {
                        zip.push(
                            it.as_str()
                                .ok_or("axes.zip entries must be strings")?
                                .to_string(),
                        );
                    }
                    continue;
                }
                let values = v
                    .as_list()
                    .ok_or_else(|| format!("axis '{k}' must be a list"))?;
                if values.is_empty() {
                    return Err(format!("axis '{k}' is empty"));
                }
                if params.iter().any(|(p, _)| p == k) {
                    return Err(format!("'{k}' is both a scenario parameter and an axis"));
                }
                axes.push((k.clone(), values.to_vec()));
            }
        }
        for z in &zip {
            if !axes.iter().any(|(a, _)| a == z) {
                return Err(format!("zip names unknown axis '{z}'"));
            }
        }

        let smoke = sections
            .iter()
            .find(|s| s.name == "smoke")
            .map(|s| s.entries.clone())
            .unwrap_or_default();

        Ok(ScenarioSpec {
            name,
            family,
            params,
            axes,
            zip,
            smoke,
        })
    }

    /// Expands the spec into its flat job list.
    ///
    /// With `smoke = true` the `[smoke]` overrides are applied first —
    /// the reduced grids CI runs on every push. For simulation-driving
    /// families the `SIM_REPLICATIONS` environment variable overrides
    /// the `replications` parameter (the same knob the old experiment
    /// binaries honoured via `slb-bench`).
    ///
    /// # Errors
    ///
    /// Returns a message on inconsistent `zip` lengths, smoke keys that
    /// name no axis, or absurd grid sizes.
    pub fn expand(&self, smoke: bool) -> Result<Vec<Job>, String> {
        let mut params = self.params.clone();
        let mut axes = self.axes.clone();

        if smoke {
            for (k, v) in &self.smoke {
                if let Value::List(items) = v {
                    if let Some(axis) = axes.iter_mut().find(|(a, _)| a == k) {
                        axis.1 = items.clone();
                    } else if let Some(p) = params.iter_mut().find(|(p, _)| p == k) {
                        // A list-valued scenario parameter (e.g. the
                        // delay-tails percentiles) shrinks like any
                        // other parameter.
                        p.1 = v.clone();
                    } else {
                        return Err(format!(
                            "[smoke] list '{k}' names no axis or scenario parameter"
                        ));
                    }
                } else if axes.iter().any(|(a, _)| a == k) {
                    // A scalar override of an axis would silently shadow
                    // every axis value while the axis still multiplies
                    // the grid (duplicate rows): reject it.
                    return Err(format!(
                        "[smoke] '{k}' is a scalar but '{k}' is an axis; use a one-element list"
                    ));
                } else if let Some(p) = params.iter_mut().find(|(p, _)| p == k) {
                    p.1 = v.clone();
                } else {
                    params.push((k.clone(), v.clone()));
                }
            }
        }

        if self.family.needs_sim() {
            for (key, default) in SIM_KEYS {
                if !params.iter().any(|(p, _)| p == key) {
                    params.push((key.to_string(), Value::Int(default)));
                }
            }
            if let Ok(raw) = std::env::var("SIM_REPLICATIONS") {
                let reps: i64 = raw
                    .parse()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or_else(|| format!("bad SIM_REPLICATIONS value '{raw}'"))?;
                let slot = params
                    .iter_mut()
                    .find(|(p, _)| p == "replications")
                    .expect("injected above");
                slot.1 = Value::Int(reps);
            }
        }

        // Group the axes: zipped axes advance together; the group sits
        // at the position of its first member.
        struct Group {
            axis_ids: Vec<usize>,
            len: usize,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut axis_group = vec![0usize; axes.len()];
        let mut zip_group: Option<usize> = None;
        for (i, (axis_name, values)) in axes.iter().enumerate() {
            if self.zip.contains(axis_name) {
                match zip_group {
                    Some(g) => {
                        if groups[g].len != values.len() {
                            return Err(format!(
                                "zipped axes must have equal lengths; '{axis_name}' has {} values, \
                                 expected {}",
                                values.len(),
                                groups[g].len
                            ));
                        }
                        groups[g].axis_ids.push(i);
                        axis_group[i] = g;
                    }
                    None => {
                        zip_group = Some(groups.len());
                        axis_group[i] = groups.len();
                        groups.push(Group {
                            axis_ids: vec![i],
                            len: values.len(),
                        });
                    }
                }
            } else {
                axis_group[i] = groups.len();
                groups.push(Group {
                    axis_ids: vec![i],
                    len: values.len(),
                });
            }
        }

        let total: usize = groups.iter().map(|g| g.len).product();
        if total > MAX_JOBS {
            return Err(format!("grid expands to {total} jobs (limit {MAX_JOBS})"));
        }

        let mut jobs = Vec::with_capacity(total);
        for index in 0..total {
            // Odometer decomposition, last group fastest: the first axis
            // listed in the file is the outermost loop.
            let mut rem = index;
            let mut choice = vec![0usize; groups.len()];
            for g in (0..groups.len()).rev() {
                choice[g] = rem % groups[g].len;
                rem /= groups[g].len;
            }
            let mut job_params = params.clone();
            for (i, (axis_name, values)) in axes.iter().enumerate() {
                job_params.push((axis_name.clone(), values[choice[axis_group[i]]].clone()));
            }
            jobs.push(Job {
                family: self.family,
                index,
                params: job_params,
            });
        }
        Ok(jobs)
    }
}

/// One expanded grid point: a family plus fully resolved parameters.
#[derive(Debug, Clone)]
pub struct Job {
    /// The experiment family that will run this job.
    pub family: Family,
    /// Position in the expanded grid (defines output order).
    pub index: usize,
    params: Vec<(String, Value)>,
}

impl Job {
    /// Builds a job directly (tests and ad-hoc drivers).
    pub fn new(family: Family, index: usize, params: Vec<(String, Value)>) -> Self {
        Job {
            family,
            index,
            params,
        }
    }

    /// Raw parameter lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.params
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    fn missing(&self, key: &str, want: &str) -> String {
        match self.get(key) {
            None => format!("{}: missing parameter '{key}' ({want})", self.family),
            Some(v) => format!(
                "{}: parameter '{key}' is a {}, expected {want}",
                self.family,
                v.type_name()
            ),
        }
    }

    /// Float parameter (integers promote).
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| self.missing(key, "number"))
    }

    /// Non-negative integer parameter as `usize`.
    pub fn usize(&self, key: &str) -> Result<usize, String> {
        self.get(key)
            .and_then(Value::as_i64)
            .and_then(|i| usize::try_from(i).ok())
            .ok_or_else(|| self.missing(key, "non-negative integer"))
    }

    /// Non-negative integer parameter as `u32`.
    pub fn u32(&self, key: &str) -> Result<u32, String> {
        self.get(key)
            .and_then(Value::as_i64)
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| self.missing(key, "non-negative integer"))
    }

    /// Like [`Job::u32`] but with a default for an absent key.
    pub fn u32_or(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.u32(key),
        }
    }

    /// Non-negative integer parameter as `u64`.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Value::as_i64)
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| self.missing(key, "non-negative integer"))
    }

    /// String parameter.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| self.missing(key, "string"))
    }

    /// List-of-numbers parameter.
    pub fn f64_list(&self, key: &str) -> Result<Vec<f64>, String> {
        self.get(key)
            .and_then(Value::as_list)
            .and_then(|items| items.iter().map(Value::as_f64).collect())
            .ok_or_else(|| self.missing(key, "list of numbers"))
    }

    /// The canonical cache key: schema version, family, and every
    /// parameter in sorted order. Any parameter change — including the
    /// smoke overrides, an edited axis value, or a different
    /// `SIM_REPLICATIONS` — yields a different key.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={}", v.canon()))
            .collect();
        parts.sort();
        format!("schema{CACHE_SCHEMA}|{}|{}", self.family, parts.join(";"))
    }

    /// Deterministic per-job simulation seed: the spec's base `seed`
    /// mixed (the simulator's own splitmix64 finalizer) with a hash of
    /// the structural parameters, so every grid point gets an
    /// independent stream while the whole sweep stays reproducible from
    /// the spec file alone.
    pub fn derived_seed(&self) -> u64 {
        let base = self
            .get("seed")
            .and_then(Value::as_i64)
            .unwrap_or(1)
            .unsigned_abs();
        let mut parts: Vec<String> = self
            .params
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "seed" | "jobs" | "replications"))
            .map(|(k, v)| format!("{k}={}", v.canon()))
            .collect();
        parts.sort();
        slb_sim::splitmix64_mix(base ^ fnv64(&parts.join(";")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
[scenario]
name = "demo"
family = "logred-iters"
d = 2

[axes]
n   = [3, 6]
t   = [2, 3]
rho = [0.5, 0.9]
kind = ["lower", "upper"]
zip = ["n", "t"]

[smoke]
rho = [0.5]
d = 3
"#;

    #[test]
    fn expansion_product_and_zip() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let jobs = spec.expand(false).unwrap();
        // (n,t) zipped → 2 panels × 2 rho × 2 kinds = 8 jobs.
        assert_eq!(jobs.len(), 8);
        // First axis outermost: panel (3,2) first, kinds fastest.
        assert_eq!(jobs[0].usize("n").unwrap(), 3);
        assert_eq!(jobs[0].u32("t").unwrap(), 2);
        assert_eq!(jobs[0].str("kind").unwrap(), "lower");
        assert_eq!(jobs[1].str("kind").unwrap(), "upper");
        assert_eq!(jobs[2].f64("rho").unwrap(), 0.9);
        assert_eq!(jobs[4].usize("n").unwrap(), 6);
        assert_eq!(jobs[4].u32("t").unwrap(), 3);
        // Zip never mixes panels: no job sees (n=3, t=3).
        assert!(!jobs
            .iter()
            .any(|j| j.usize("n").unwrap() == 3 && j.u32("t").unwrap() == 3));
    }

    #[test]
    fn smoke_overrides_axes_and_params() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let jobs = spec.expand(true).unwrap();
        assert_eq!(jobs.len(), 4); // rho axis shrank to 1 value
        assert!(jobs.iter().all(|j| j.f64("rho").unwrap() == 0.5));
        assert!(jobs.iter().all(|j| j.usize("d").unwrap() == 3));
    }

    #[test]
    fn canonical_keys_differ_and_are_stable() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let jobs = spec.expand(false).unwrap();
        let keys: Vec<String> = jobs.iter().map(Job::canonical_key).collect();
        let mut uniq = keys.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len(), "keys must be unique per point");
        // Stable across re-expansion.
        assert_eq!(spec.expand(false).unwrap()[3].canonical_key(), keys[3]);
        // Smoke overrides change the keys (different d).
        assert_ne!(spec.expand(true).unwrap()[0].canonical_key(), keys[0]);
    }

    #[test]
    fn derived_seeds_vary_per_point_not_per_budget() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let jobs = spec.expand(false).unwrap();
        assert_ne!(jobs[0].derived_seed(), jobs[1].derived_seed());
        // The seed ignores jobs/replications so a budget change replays
        // the same streams.
        let mut params = jobs[0].params.clone();
        params.push(("jobs".into(), Value::Int(123)));
        let j = Job::new(jobs[0].family, 0, params);
        assert_eq!(j.derived_seed(), jobs[0].derived_seed());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ScenarioSpec::parse("[scenario]\nfamily = \"bounds\"\n")
            .unwrap_err()
            .contains("name"));
        assert!(
            ScenarioSpec::parse("[scenario]\nname = \"x\"\nfamily = \"nope\"\n")
                .unwrap_err()
                .contains("unknown family")
        );
        assert!(ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nfamily = \"bounds\"\n[axes]\nrho = 3\n"
        )
        .unwrap_err()
        .contains("must be a list"));
        assert!(ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nfamily = \"bounds\"\n[axes]\nzip = [\"rho\"]\n"
        )
        .unwrap_err()
        .contains("unknown axis"));
        let bad_zip = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nfamily = \"bounds\"\n[axes]\nn = [1, 2]\nt = [1]\nzip = [\"n\", \"t\"]\n",
        )
        .unwrap();
        assert!(bad_zip.expand(false).unwrap_err().contains("equal lengths"));
    }

    #[test]
    fn smoke_scalar_cannot_shadow_an_axis() {
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nfamily = \"bounds\"\n[axes]\nrho = [0.5, 0.9]\n\
             [smoke]\nrho = 0.5\n",
        )
        .unwrap();
        let err = spec.expand(true).unwrap_err();
        assert!(err.contains("one-element list"), "{err}");
    }

    #[test]
    fn smoke_list_must_name_an_axis() {
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\nfamily = \"bounds\"\n[smoke]\nrho = [0.5]\n",
        )
        .unwrap();
        assert!(spec.expand(true).unwrap_err().contains("names no axis"));
        assert!(spec.expand(false).is_ok());
    }
}
