//! A long-lived work-stealing thread pool.
//!
//! PR 4's sweep executor pinned the scheduling discipline — per-worker
//! deques, a worker pops the *newest* job off the back of its own deque
//! and steals the *oldest* job off the front of a sibling's — but its
//! workers lived only for the duration of one `std::thread::scope`.
//! [`WorkPool`] extracts that discipline into a pool whose workers
//! outlive any one batch, so the same threads can drain a sweep's job
//! grid *and* serve a daemon's request stream ([`crate::exec`] and
//! `slb serve` both run on it).
//!
//! Tasks are `'static` closures; batch completion is the caller's
//! concern (the sweep executor counts finished slots under a condvar —
//! see [`crate::exec::run_sweep`]). [`WorkPool::shutdown`] drains every
//! queued task before joining the workers, which is exactly the
//! graceful-shutdown behaviour the server needs: accepted requests are
//! answered, no new ones are admitted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker; external submissions round-robin across
    /// them, each worker owns the back of its own.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin cursor for submissions.
    next: AtomicUsize,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    /// Set once by [`WorkPool::shutdown`]; workers exit when it is set
    /// *and* every queue has drained.
    shutdown: AtomicBool,
}

/// A fixed-size work-stealing thread pool. See the module docs.
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slb-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task. Tasks are distributed round-robin onto the
    /// worker deques; an idle worker is woken.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let w = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[w]
            .lock()
            .expect("pool queue lock")
            .push_back(Box::new(task));
        self.shared.wake.notify_all();
    }

    /// Drains every queued task, then joins the workers. Tasks already
    /// running or still queued complete; new submissions after this
    /// call would be lost (the pool is consumed, so the type system
    /// prevents them).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// Pops work for worker `w`: own back first (newest — warm caches),
/// then the front (oldest) of the first non-empty sibling.
fn grab(shared: &PoolShared, w: usize) -> Option<Task> {
    if let Some(task) = shared.queues[w].lock().expect("pool queue lock").pop_back() {
        return Some(task);
    }
    let k = shared.queues.len();
    for v in 1..k {
        let victim = (w + v) % k;
        if let Some(task) = shared.queues[victim]
            .lock()
            .expect("pool queue lock")
            .pop_front()
        {
            return Some(task);
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, w: usize) {
    loop {
        if let Some(task) = grab(shared, w) {
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Re-check after observing shutdown: a task submitted just
            // before the flag was raised must still run.
            match grab(shared, w) {
                Some(task) => task(),
                None => return,
            }
            continue;
        }
        // Park with a timeout: a wake can race with the queue check,
        // and the timeout bounds the window without busy-spinning.
        let guard = shared.idle.lock().expect("pool idle lock");
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(50))
            .expect("pool idle wait");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_across_threads() {
        let pool = WorkPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        const TASKS: u64 = 200;
        for i in 1..=TASKS {
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            pool.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                let (count, cv) = &*done;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < TASKS as usize {
            finished = cv.wait(finished).unwrap();
        }
        drop(finished);
        assert_eq!(sum.load(Ordering::Relaxed), TASKS * (TASKS + 1) / 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        // More tasks than workers, each slow enough that some are still
        // queued when shutdown is called: all must run anyway.
        let pool = WorkPool::new(2);
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.shutdown();
    }
}
