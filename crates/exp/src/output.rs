//! Rendering a sweep table as CSV, JSON or an aligned console listing.

use std::fmt::Write as _;

use crate::json::escape;
use crate::runner::Row;

/// Renders header + rows as CSV (the committed-figure interchange
/// format; cells never contain commas).
pub fn to_csv(columns: &[&'static str], rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", columns.join(","));
    for r in rows {
        let _ = writeln!(out, "{}", r.join(","));
    }
    out
}

/// Renders the table as a JSON array of objects, one row object per
/// line. Cell values stay strings — they are the canonical formatted
/// cells (including `inf` / `unstable` markers), not re-parsed floats.
pub fn to_json(columns: &[&'static str], rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let fields: Vec<String> = columns
            .iter()
            .zip(r)
            .map(|(c, v)| format!("\"{}\": \"{}\"", escape(c), escape(v)))
            .collect();
        let _ = write!(out, "  {{{}}}", fields.join(", "));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Renders an aligned console listing (right-justified columns).
pub fn to_aligned(columns: &[&'static str], rows: &[Row]) -> String {
    let cols = columns.len();
    let mut width: Vec<usize> = columns.iter().map(|h| h.len()).collect();
    for r in rows {
        for (c, cell) in r.iter().enumerate().take(cols) {
            width[c] = width[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], out: &mut String| {
        for (c, cell) in row.iter().enumerate().take(cols) {
            if c > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = width[c]);
        }
        out.push('\n');
    };
    let header: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    fmt_row(&header, &mut out);
    let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        fmt_row(r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn rows() -> Vec<Row> {
        vec![
            vec!["0.5".into(), "1.2".into()],
            vec!["0.9".into(), "inf".into()],
        ]
    }

    #[test]
    fn csv_shape() {
        assert_eq!(
            to_csv(&["rho", "upper"], &rows()),
            "rho,upper\n0.5,1.2\n0.9,inf\n"
        );
    }

    #[test]
    fn json_is_parseable_and_ordered() {
        let text = to_json(&["rho", "upper"], &rows());
        let doc = Json::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("rho").and_then(Json::as_str), Some("0.5"));
        assert_eq!(arr[1].get("upper").and_then(Json::as_str), Some("inf"));
    }

    #[test]
    fn aligned_pads_columns() {
        let text = to_aligned(&["rho", "upper"], &rows());
        assert!(text.starts_with("rho  upper\n"), "{text:?}");
        assert!(text.contains("0.9    inf"), "{text:?}");
    }
}
