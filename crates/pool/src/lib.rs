//! A long-lived work-stealing thread pool.
//!
//! PR 4's sweep executor pinned the scheduling discipline — per-worker
//! deques, a worker pops the *newest* job off the back of its own deque
//! and steals the *oldest* job off the front of a sibling's — and PR 6
//! extracted it into a pool whose workers outlive any one batch. This
//! crate hoists that pool out of `slb-exp` into the bottom of the
//! dependency graph so the *simulator* can run its replications on the
//! same long-lived workers: `slb-sim` must not depend on `slb-exp`
//! (`slb-exp` depends on it), but both can depend on `slb-pool`.
//!
//! Tasks are `'static` closures; batch completion is the caller's
//! concern (the sweep executor counts finished slots under a condvar).
//! [`WorkPool::shutdown`] drains every queued task before joining the
//! workers, which is exactly the graceful-shutdown behaviour the server
//! needs: accepted requests are answered, no new ones are admitted.
//!
//! [`WorkPool::run_indexed`] adds the batch shape the simulator's
//! `run_parallel` needs: `tasks` independent index-addressed jobs, at
//! most `concurrency` running at once, with the **caller participating
//! as one of the workers**. Because the caller always drains the shared
//! index counter itself, the batch completes even if every pool worker
//! is busy or blocked — in particular a task running *on* the pool may
//! itself call `run_indexed` on the same pool without deadlocking (its
//! helpers simply never get scheduled and the caller does all the work
//! serially).
//!
//! **Panic isolation.** Every task runs under
//! `catch_unwind(AssertUnwindSafe(..))`: a panicking job is contained —
//! counted in [`WorkPool::panics`], logged once — and the worker
//! survives to take the next task. A `run_indexed` batch with a
//! panicking index still completes, and the first panic payload is
//! re-thrown on the *caller*. Pool locks recover from poison (no pool
//! invariant lives in data a user task can touch), so one bad request
//! can neither kill a worker nor cascade `Mutex` poison into its
//! siblings. [`WorkPool::queue_depth`] and [`WorkPool::in_flight`]
//! expose the load gauges a server's admission control needs, and
//! [`WorkPool::workers_alive`] lets tests prove containment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A unit of pool work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks `m`, recovering from poison. No pool invariant lives in the
/// data a panicking task could leave half-updated (queues hold opaque
/// boxed tasks, the idle mutex guards nothing), so a poisoned lock is
/// safe to re-enter — and cascading `expect` panics out of *every*
/// worker because *one* task misbehaved is exactly the failure mode a
/// long-running daemon cannot afford.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct PoolShared {
    /// One deque per worker; external submissions round-robin across
    /// them, each worker owns the back of its own.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin cursor for submissions.
    next: AtomicUsize,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    /// Set once by [`WorkPool::shutdown`]; workers exit when it is set
    /// *and* every queue has drained.
    shutdown: AtomicBool,
    /// Tasks currently executing on a worker (gauge).
    in_flight: AtomicUsize,
    /// Tasks that panicked and were contained (counter).
    panics: AtomicU64,
    /// Ensures the containment warning is logged once, not per panic.
    panic_logged: AtomicBool,
}

/// A fixed-size work-stealing thread pool. See the module docs.
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            panic_logged: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slb-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of worker threads still running their loop. A contained
    /// panic leaves this equal to [`WorkPool::threads`]; anything less
    /// means a worker actually died.
    pub fn workers_alive(&self) -> usize {
        self.workers.iter().filter(|h| !h.is_finished()).count()
    }

    /// Tasks queued but not yet claimed by a worker (gauge). With
    /// [`WorkPool::in_flight`], the admission signal a server needs:
    /// accepted-but-unfinished work on the pool.
    pub fn queue_depth(&self) -> usize {
        self.shared.queues.iter().map(|q| lock(q).len()).sum()
    }

    /// Tasks currently executing on a worker (gauge).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Tasks whose panic was contained by a worker (counter).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Submits a task. Tasks are distributed round-robin onto the
    /// worker deques; an idle worker is woken.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let w = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        lock(&self.shared.queues[w]).push_back(Box::new(task));
        self.shared.wake.notify_all();
    }

    /// Runs `tasks` index-addressed jobs (`f(0), …, f(tasks − 1)`) with
    /// at most `concurrency` running concurrently and returns the
    /// results in index order.
    ///
    /// The calling thread participates as one of the workers, so at most
    /// `concurrency − 1` helper tasks are submitted to the pool — and
    /// the batch completes even if none of them is ever scheduled. With
    /// `concurrency <= 1` the pool is not touched at all: the caller
    /// runs every index serially. Results land in per-index slots, so
    /// which thread computed what is unobservable in the output.
    pub fn run_indexed<T, F>(&self, tasks: usize, concurrency: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        let helpers = concurrency.min(tasks).saturating_sub(1);
        let state = Arc::new(BatchState {
            f,
            next: AtomicUsize::new(0),
            slots: (0..tasks).map(|_| CachePadded(Mutex::new(None))).collect(),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        for _ in 0..helpers {
            let state = Arc::clone(&state);
            self.spawn(move || state.drain());
        }
        state.drain();
        // The caller found the counter exhausted; wait for any helpers
        // still mid-task.
        let mut finished = lock(&state.done);
        while *finished < tasks {
            finished = state
                .all_done
                .wait(finished)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(finished);
        // A panicking task must surface on the *caller*, not wedge the
        // batch or kill a helper: the first payload is re-thrown here.
        if let Some(payload) = lock(&state.panic).take() {
            std::panic::resume_unwind(payload);
        }
        state
            .slots
            .iter()
            .map(|slot| {
                lock(&slot.0)
                    .take()
                    .expect("every batch index was claimed and completed")
            })
            .collect()
    }

    /// Drains every queued task, then joins the workers. Tasks already
    /// running or still queued complete; new submissions after this
    /// call would be lost (the pool is consumed, so the type system
    /// prevents them).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// A value alone on its cache line, so adjacent batch slots written by
/// different threads never share (and so never bounce) a line.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Shared state of one [`WorkPool::run_indexed`] batch. Slots are
/// written once each and cache-line padded so concurrent writers never
/// share a line: adjacent unpadded slots would bounce between cores on
/// every replication hand-off.
struct BatchState<T, F> {
    f: F,
    next: AtomicUsize,
    slots: Vec<CachePadded<Mutex<Option<T>>>>,
    done: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload out of any batch task; re-thrown by the
    /// caller once the batch has settled.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T: Send, F: Fn(usize) -> T + Send + Sync> BatchState<T, F> {
    /// Claims and runs batch indices until the counter is exhausted. A
    /// panicking index is contained (its payload parked for the caller)
    /// so the batch always completes and no helper dies mid-batch.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                return;
            }
            match catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                Ok(result) => *lock(&self.slots[i].0) = Some(result),
                Err(payload) => {
                    let mut first = lock(&self.panic);
                    if first.is_none() {
                        *first = Some(payload);
                    }
                }
            }
            let mut finished = lock(&self.done);
            *finished += 1;
            if *finished == self.slots.len() {
                self.all_done.notify_all();
            }
        }
    }
}

/// Pops work for worker `w`: own back first (newest — warm caches),
/// then the front (oldest) of the first non-empty sibling.
fn grab(shared: &PoolShared, w: usize) -> Option<Task> {
    if let Some(task) = lock(&shared.queues[w]).pop_back() {
        return Some(task);
    }
    let k = shared.queues.len();
    for v in 1..k {
        let victim = (w + v) % k;
        if let Some(task) = lock(&shared.queues[victim]).pop_front() {
            return Some(task);
        }
    }
    None
}

/// Runs one task with panic containment: a panicking job is counted and
/// logged (once), and the worker survives to take the next task. The
/// `pool.task_panic` fail point injects a panic exactly where a user
/// task would throw one, so the chaos harness can prove containment.
fn run_task(shared: &PoolShared, task: Task) {
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        if slb_fault::fires("pool.task_panic") {
            panic!("injected: pool.task_panic");
        }
        task();
    }));
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    if outcome.is_err() {
        shared.panics.fetch_add(1, Ordering::Relaxed);
        if !shared.panic_logged.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: a pool task panicked; the worker survives \
                 (counted in panics(), logged once)"
            );
        }
    }
}

fn worker_loop(shared: &PoolShared, w: usize) {
    loop {
        if let Some(task) = grab(shared, w) {
            run_task(shared, task);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Re-check after observing shutdown: a task submitted just
            // before the flag was raised must still run.
            match grab(shared, w) {
                Some(task) => run_task(shared, task),
                None => return,
            }
            continue;
        }
        // Park with a timeout: a wake can race with the queue check,
        // and the timeout bounds the window without busy-spinning.
        let guard = lock(&shared.idle);
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_across_threads() {
        let pool = WorkPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        const TASKS: u64 = 200;
        for i in 1..=TASKS {
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            pool.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                let (count, cv) = &*done;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < TASKS as usize {
            finished = cv.wait(finished).unwrap();
        }
        drop(finished);
        assert_eq!(sum.load(Ordering::Relaxed), TASKS * (TASKS + 1) / 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        // More tasks than workers, each slow enough that some are still
        // queued when shutdown is called: all must run anyway.
        let pool = WorkPool::new(2);
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.shutdown();
    }

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let pool = WorkPool::new(3);
        for concurrency in [1, 2, 3, 8] {
            let out = pool.run_indexed(17, concurrency, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        // Degenerate batch sizes.
        assert_eq!(pool.run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, 4, |i| i + 10), vec![10]);
        pool.shutdown();
    }

    #[test]
    fn run_indexed_from_inside_a_pool_task_does_not_deadlock() {
        // A task running on the pool launches a nested batch on the
        // same pool. All workers may be busy, so the nested batch's
        // helpers might never run — the caller-participates discipline
        // must complete it anyway.
        let mut pool = Arc::new(WorkPool::new(2));
        let inner: Vec<Vec<usize>> = {
            let pool2 = Arc::clone(&pool);
            pool.run_indexed(4, 4, move |i| pool2.run_indexed(5, 2, move |j| i * 10 + j))
        };
        for (i, row) in inner.iter().enumerate() {
            assert_eq!(row, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
        // Helper tasks that were queued but never needed may still hold
        // clones of the outer batch (and through it, of the pool) for a
        // moment after the batch completes; wait them out.
        let pool = loop {
            match Arc::try_unwrap(pool) {
                Ok(p) => break p,
                Err(still_shared) => {
                    pool = still_shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        pool.shutdown();
    }

    #[test]
    fn panicking_task_is_contained_and_worker_survives() {
        let pool = WorkPool::new(2);
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        // Interleave panicking and well-behaved tasks: every
        // well-behaved one must still run, on workers that stay alive.
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                if i % 2 == 0 {
                    panic!("task {i} exploded");
                }
                let (count, cv) = &*done;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < 10 {
            finished = cv.wait(finished).unwrap();
        }
        drop(finished);
        // The good tasks are done but panicking ones may still be
        // draining; their count settles at exactly 10.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.panics() < 10 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.panics(), 10);
        assert_eq!(pool.workers_alive(), 2, "no worker may die to a panic");
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown();
    }

    #[test]
    fn run_indexed_panic_reaches_the_caller_not_a_worker() {
        let pool = WorkPool::new(2);
        // Force the panicking index onto a helper (sleep keeps the
        // caller busy elsewhere); the panic must surface here, with
        // every other index still completed and both workers alive.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(16, 3, |i| {
                std::thread::sleep(Duration::from_millis(2));
                assert!(i != 7, "index 7 goes boom");
                i
            })
        }));
        assert!(outcome.is_err(), "the batch panic propagates to the caller");
        assert_eq!(pool.workers_alive(), 2);
        // The pool is still serviceable after the poisoned batch.
        assert_eq!(pool.run_indexed(4, 4, |i| i * 3), vec![0, 3, 6, 9]);
        pool.shutdown();
    }

    #[test]
    fn gauges_track_queued_and_running_work() {
        let pool = WorkPool::new(1);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let release = Arc::clone(&release);
            let started = Arc::clone(&started);
            pool.spawn(move || {
                *started.0.lock().unwrap() = true;
                started.1.notify_all();
                let mut go = release.0.lock().unwrap();
                while !*go {
                    go = release.1.wait(go).unwrap();
                }
            });
        }
        let mut on = started.0.lock().unwrap();
        while !*on {
            on = started.1.wait(on).unwrap();
        }
        drop(on);
        // Only now queue more: the lone worker is pinned on the
        // blocker, so these must sit in the queue.
        for _ in 0..3 {
            pool.spawn(|| {});
        }
        assert_eq!(pool.in_flight(), 1, "the blocker is executing");
        assert_eq!(pool.queue_depth(), 3, "the rest are queued behind it");
        *release.0.lock().unwrap() = true;
        release.1.notify_all();
        pool.shutdown();
    }

    #[test]
    fn run_indexed_uses_pool_threads() {
        // With enough concurrency, at least one index must run on a
        // pool worker thread (named slb-pool-*), proving the helpers
        // actually participate rather than the caller doing everything.
        let pool = WorkPool::new(4);
        let names = pool.run_indexed(64, 4, |_| {
            std::thread::sleep(Duration::from_millis(1));
            std::thread::current()
                .name()
                .unwrap_or_default()
                .to_string()
        });
        assert!(
            names.iter().any(|n| n.starts_with("slb-pool-")),
            "no index ran on a pool worker: {names:?}"
        );
        pool.shutdown();
    }
}
