//! Property-based tests for the SQ(d) model layer.

use proptest::prelude::*;
use slb_core::precedence::{precedes, verify_redirects};
use slb_core::{
    transitions, BlockSpace, BoundKind, BoundModel, LumpedModel, ModelVariant, Sqd, State,
};

/// Random sorted state with bounded entries.
fn arb_state(n: usize, max: u32) -> impl Strategy<Value = State> {
    prop::collection::vec(0..=max, n).prop_map(State::from_unsorted)
}

/// Random state inside the threshold set `S_T`.
fn arb_state_in_st(n: usize, t: u32, max_base: u32) -> impl Strategy<Value = State> {
    (prop::collection::vec(0..=t, n - 1), 0..=max_base).prop_map(move |(shape, base)| {
        let mut v: Vec<u32> = shape.into_iter().map(|x| x + base).collect();
        v.push(base);
        State::from_unsorted(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn base_outflow_is_lambda_n_plus_busy(
        s in (2usize..7).prop_flat_map(|n| arb_state(n, 6)),
        d_seed in 0usize..100,
        lambda in 0.05f64..0.99,
    ) {
        let n = s.n();
        let d = d_seed % n + 1;
        let ts = transitions(&s, d, lambda, ModelVariant::Base);
        let total: f64 = ts.iter().map(|t| t.rate).sum();
        let expect = lambda * n as f64 + s.busy() as f64;
        prop_assert!((total - expect).abs() < 1e-10, "{s}: {total} vs {expect}");
    }

    #[test]
    fn base_transitions_change_total_by_one(
        s in (2usize..7).prop_flat_map(|n| arb_state(n, 6)),
        lambda in 0.05f64..0.99,
    ) {
        for tr in transitions(&s, 2.min(s.n()), lambda, ModelVariant::Base) {
            let dt = i64::from(tr.target.total()) - i64::from(s.total());
            prop_assert!(dt == 1 || dt == -1);
        }
    }

    #[test]
    fn bound_models_closed_on_threshold_set(
        s in (2usize..6).prop_flat_map(|n| arb_state_in_st(n, 3, 5)),
        d_seed in 0usize..100,
        lambda in 0.05f64..0.99,
    ) {
        let n = s.n();
        let d = d_seed % n + 1;
        for variant in [
            ModelVariant::Lower { threshold: 3 },
            ModelVariant::Upper { threshold: 3 },
        ] {
            for tr in transitions(&s, d, lambda, variant) {
                prop_assert!(tr.target.diff() <= 3, "{variant:?}: {s} -> {}", tr.target);
            }
        }
    }

    #[test]
    fn lower_model_preserves_capacity(
        s in (2usize..6).prop_flat_map(|n| arb_state_in_st(n, 2, 4)),
        lambda in 0.05f64..0.99,
    ) {
        // The lower model only redirects — total departure rate equals the
        // number of busy servers, as in the base model.
        let base = transitions(&s, 2.min(s.n()), lambda, ModelVariant::Base);
        let low = transitions(&s, 2.min(s.n()), lambda, ModelVariant::Lower { threshold: 2 });
        let dep = |ts: &[slb_core::Transition]| -> f64 {
            ts.iter()
                .filter(|t| t.target.total() < s.total())
                .map(|t| t.rate)
                .sum()
        };
        prop_assert!((dep(&base) - dep(&low)).abs() < 1e-10);
    }

    #[test]
    fn upper_model_never_gains_capacity(
        s in (2usize..6).prop_flat_map(|n| arb_state_in_st(n, 2, 4)),
        lambda in 0.05f64..0.99,
    ) {
        let base = transitions(&s, 2.min(s.n()), lambda, ModelVariant::Base);
        let up = transitions(&s, 2.min(s.n()), lambda, ModelVariant::Upper { threshold: 2 });
        let dep = |ts: &[slb_core::Transition]| -> f64 {
            ts.iter()
                .filter(|t| t.target.total() < s.total())
                .map(|t| t.rate)
                .sum()
        };
        prop_assert!(dep(&up) <= dep(&base) + 1e-10);
    }

    #[test]
    fn redirects_precedence_sound(
        s in (2usize..6).prop_flat_map(|n| arb_state_in_st(n, 2, 4)),
        d_seed in 0usize..100,
    ) {
        let n = s.n();
        let d = d_seed % n + 1;
        let states = [s];
        for variant in [
            ModelVariant::Lower { threshold: 2 },
            ModelVariant::Upper { threshold: 2 },
        ] {
            let v = verify_redirects(states.iter(), d, 0.8, variant);
            prop_assert!(v.is_empty(), "{variant:?}: {v:?}");
        }
    }

    #[test]
    fn precedence_is_a_partial_order(
        a in (3usize..6).prop_flat_map(|n| (arb_state(n, 5), arb_state(n, 5), arb_state(n, 5))),
    ) {
        let (x, y, z) = a;
        // Reflexivity.
        prop_assert!(precedes(&x, &x));
        // Antisymmetry on totals: x ⪯ y and y ⪯ x forces x == y.
        if precedes(&x, &y) && precedes(&y, &x) {
            prop_assert_eq!(x.clone(), y.clone());
        }
        // Transitivity.
        if precedes(&x, &y) && precedes(&y, &z) {
            prop_assert!(precedes(&x, &z));
        }
    }

    #[test]
    fn plus_one_preserves_precedence(
        a in (3usize..6).prop_flat_map(|n| (arb_state(n, 5), arb_state(n, 5))),
    ) {
        let (x, y) = a;
        prop_assert_eq!(precedes(&x, &y), precedes(&x.plus_one(), &y.plus_one()));
    }

    #[test]
    fn block_space_partition_is_exact(
        nt in (3usize..6).prop_flat_map(|n| (Just(n), 1u32..4)),
    ) {
        let (n, t) = nt;
        let space = BlockSpace::new(n, t).unwrap();
        // Every state of S_T with total ≤ cap + 3N is located exactly once
        // and consistently with its total.
        for (_, s) in space.boundary().iter() {
            prop_assert!(s.total() <= space.boundary_cap());
        }
        for q in 0..3 {
            for i in 0..space.block_len() {
                let s = space.level_state(q, i);
                let within =
                    s.total() > space.boundary_cap() + q as u32 * n as u32
                    && s.total() <= space.boundary_cap() + (q as u32 + 1) * n as u32;
                prop_assert!(within, "state {s} mislocated in block {q}");
            }
        }
    }
}

/// `C(n + t − 1, t)` — the occupancy block size, small enough at test
/// scale to compute by direct multiplication.
fn binomial(n: usize, t: u32) -> usize {
    let mut acc = 1usize;
    for j in 1..=t as usize {
        acc = acc * (n - 1 + j) / j;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lumped_blocks_are_a_true_lumping_of_dense(
        cfg in (2usize..6, 1u32..4).prop_flat_map(|(n, t)| {
            (Just(n), Just(t), 1usize..=n, 0.1f64..0.95)
        }),
    ) {
        // The dense solver already works on sorted server tuples
        // (multisets), so an exact lumping means: same block
        // dimensions, entrywise-equal generator blocks under the
        // canonical order, and conservative rows.
        let (n, t, d, lambda) = cfg;
        let sqd = Sqd::new(n, d, lambda).unwrap();
        for kind in [BoundKind::Lower, BoundKind::Upper] {
            let dense = BoundModel::new(sqd, kind, t).unwrap().qbd_blocks().unwrap();
            let lumped = LumpedModel::new(sqd, kind, t).unwrap().qbd_blocks().unwrap();
            prop_assert_eq!(lumped.boundary_len(), dense.boundary_len());
            prop_assert_eq!(lumped.level_len(), dense.level_len());
            prop_assert_eq!(lumped.level_len(), binomial(n, t));
            for (name, sparse, full) in [
                ("R00", lumped.r00(), dense.r00()),
                ("R01", lumped.r01(), dense.r01()),
                ("R10", lumped.r10(), dense.r10()),
                ("A0", lumped.a0(), dense.a0()),
                ("A1", lumped.a1(), dense.a1()),
                ("A2", lumped.a2(), dense.a2()),
            ] {
                prop_assert!(
                    sparse.to_dense().approx_eq(full, 1e-12),
                    "N={} d={} λ={} T={} {:?}: {} differs", n, d, lambda, t, kind, name
                );
            }
            // Generator rows are conservative: boundary rows across
            // R00|R01, level-0 rows across R10|A1|A0, repeating rows
            // across A2|A1|A0 all sum to zero.
            let zero_rows = |blocks: &[&slb_linalg::CsrMatrix]| {
                let mut sums = vec![0.0f64; blocks[0].rows()];
                for b in blocks {
                    for (i, s) in b.row_sums().iter().enumerate() {
                        sums[i] += s;
                    }
                }
                sums.into_iter().all(|s| s.abs() < 1e-10)
            };
            prop_assert!(zero_rows(&[lumped.r00(), lumped.r01()]), "boundary rows");
            prop_assert!(
                zero_rows(&[lumped.r10(), lumped.a1(), lumped.a0()]),
                "level-0 rows"
            );
            prop_assert!(
                zero_rows(&[lumped.a2(), lumped.a1(), lumped.a0()]),
                "repeating rows"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lumped_lower_bound_and_decay_agree_with_dense(
        cfg in (2usize..5, 1u32..3).prop_flat_map(|(n, t)| {
            (Just(n), Just(t), 1usize..=n, 0.2f64..0.9)
        }),
    ) {
        let (n, t, d, lambda) = cfg;
        let sqd = Sqd::new(n, d, lambda).unwrap();
        let dense = sqd.lower_bound(t).unwrap();
        let lumped = sqd.lower_bound_lumped(t).unwrap();
        prop_assert!(
            (lumped.delay - dense.delay).abs() <= 1e-8 * dense.delay,
            "N={} d={} λ={} T={}: lumped {} vs dense {}",
            n, d, lambda, t, lumped.delay, dense.delay
        );
        // The stationary tail decays at sp(R) = ρᴺ (Theorem 3) on both
        // state spaces.
        let eta = sqd.decay_rate_lumped(BoundKind::Lower, t).unwrap();
        prop_assert!(
            (eta - lambda.powi(n as i32)).abs() < 1e-6,
            "N={} λ={}: decay {} vs ρᴺ {}", n, lambda, eta, lambda.powi(n as i32)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delay_distribution_is_a_distribution(
        raw in prop::collection::vec(0.0f64..1.0, 1..12),
    ) {
        use slb_core::DelayDistribution;
        let sum: f64 = raw.iter().sum();
        prop_assume!(sum > 1e-6);
        let weights: Vec<f64> = raw.iter().map(|w| w / sum).collect();
        let dist = DelayDistribution::from_weights(weights).unwrap();
        // CDF is monotone from 0 toward 1; survival complements it.
        let mut prev = 0.0;
        for i in 0..=40 {
            let t = i as f64 * 0.5;
            let c = dist.cdf(t);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((c + dist.survival(t) - 1.0).abs() < 1e-12);
            prev = c;
        }
        // Mean lies within the stage range and matches quantile mass.
        let k = dist.weights().len() as f64;
        prop_assert!(dist.mean() >= 1.0 - 1e-12 && dist.mean() <= k + 1e-12);
        for &p in &[0.25, 0.5, 0.9] {
            let q = dist.quantile(p).unwrap();
            prop_assert!((dist.cdf(q) - p).abs() < 1e-7);
        }
    }

    #[test]
    fn erlang_survival_is_valid(
        n in 1usize..40,
        t in 0.0f64..30.0,
    ) {
        use slb_core::delay_dist::erlang_survival;
        let s = erlang_survival(n, t);
        prop_assert!((0.0..=1.0).contains(&s));
        // More stages survive longer; later times survive less.
        prop_assert!(erlang_survival(n + 1, t) >= s - 1e-14);
        prop_assert!(erlang_survival(n, t + 0.5) <= s + 1e-14);
    }

    #[test]
    fn meanfield_flow_preserves_validity(
        lambda in 0.05f64..0.97,
        d in 1usize..5,
        steps in 1usize..60,
    ) {
        use slb_core::meanfield::MeanField;
        let mut mf = MeanField::new(lambda, d).unwrap();
        for _ in 0..steps {
            mf.step(0.1);
        }
        let s = mf.tail_fractions();
        let mut prev = 1.0f64;
        for &v in s {
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
        // From an empty start the mass stays below equilibrium.
        let eq = slb_core::asymptotic::mean_delay(lambda, d) * lambda;
        prop_assert!(mf.mean_jobs_per_queue() <= eq + 1e-6);
    }

    #[test]
    fn brute_delay_distribution_mean_consistent(
        lambda in 0.2f64..0.75,
        d in 1usize..4,
    ) {
        use slb_core::brute::BruteForce;
        // Both estimators are exact on the untruncated chain; with a
        // finite cap they weight the dropped tail differently, so the
        // comparison runs at a cap where the residual mass (<= lambda^40)
        // is negligible relative to the tolerance.
        let bf = BruteForce::solve(3, d.min(3), lambda, 40).unwrap();
        let dist = bf.delay_distribution().unwrap();
        prop_assert!(
            (dist.mean() - bf.mean_delay()).abs() / bf.mean_delay() < 1e-3,
            "mixture {} vs Little {}", dist.mean(), bf.mean_delay()
        );
    }
}
