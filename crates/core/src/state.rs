//! The ordered SQ(d) state vector and its tie-group decomposition.

use std::fmt;

/// A maximal run of equal components ("tie group") in a sorted state.
///
/// Positions are 0-based here (the paper uses 1-based); `start..=end`
/// all hold `level` jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Group {
    /// First position of the group.
    pub start: usize,
    /// Last position of the group (inclusive).
    pub end: usize,
    /// Number of jobs at each server of the group.
    pub level: u32,
}

impl Group {
    /// Number of servers in the group.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the group is empty (never true for groups produced by
    /// [`State::groups`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An SQ(d) system state: server occupancies sorted in non-increasing
/// order, `m1 ≥ m2 ≥ … ≥ mN` (Section II of the paper, Eq. 1).
///
/// `m[0]` is the *longest* queue and `m[N−1]` the shortest. All model
/// transitions preserve this ordering via the paper's tie conventions
/// (arrivals recorded at the first index of a tie group, departures at
/// the last).
///
/// # Example
///
/// ```
/// use slb_core::State;
///
/// let m = State::new(vec![3, 1, 1, 0]).unwrap();
/// assert_eq!(m.total(), 5);
/// assert_eq!(m.diff(), 3);
/// assert_eq!(m.waiting(), 2); // max(3−1,0) + max(1−1,0)·2 + 0
/// assert_eq!(m.groups().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(Vec<u32>);

impl State {
    /// Creates a state from an already sorted (non-increasing) vector.
    ///
    /// Returns `None` if `m` is empty or not sorted non-increasingly.
    pub fn new(m: Vec<u32>) -> Option<Self> {
        if m.is_empty() || m.windows(2).any(|w| w[0] < w[1]) {
            return None;
        }
        Some(State(m))
    }

    /// Creates a state from occupancies in any order (sorts descending).
    ///
    /// # Panics
    ///
    /// Panics if `m` is empty.
    pub fn from_unsorted(mut m: Vec<u32>) -> Self {
        assert!(!m.is_empty(), "state must have at least one server");
        m.sort_unstable_by(|a, b| b.cmp(a));
        State(m)
    }

    /// The all-idle state on `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn empty(n: usize) -> Self {
        assert!(n > 0, "state must have at least one server");
        State(vec![0; n])
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.0.len()
    }

    /// Occupancy of the server at sorted position `i` (0-based; position 0
    /// is the longest queue).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// The sorted occupancy vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Total number of jobs in the system, `#m`.
    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Imbalance `m1 − mN` between the longest and shortest queue.
    pub fn diff(&self) -> u32 {
        self.0[0] - self.0[self.n() - 1]
    }

    /// Number of *waiting* jobs, `Σ_i max(m_i − 1, 0)` — the cost whose
    /// stationary mean yields the delay bound.
    pub fn waiting(&self) -> u32 {
        self.0.iter().map(|&x| x.saturating_sub(1)).sum()
    }

    /// Number of busy servers (`m_i ≥ 1`).
    pub fn busy(&self) -> usize {
        self.0.iter().filter(|&&x| x > 0).count()
    }

    /// The tie-group decomposition, ordered from the longest-queue group
    /// to the shortest-queue group.
    pub fn groups(&self) -> Vec<Group> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=self.n() {
            if i == self.n() || self.0[i] != self.0[start] {
                out.push(Group {
                    start,
                    end: i - 1,
                    level: self.0[start],
                });
                start = i;
            }
        }
        out
    }

    /// State after an arrival joins the group starting at position
    /// `start`: increments position `start` (the paper's first-index
    /// convention, which preserves sortedness).
    ///
    /// # Panics
    ///
    /// Panics (debug) if incrementing `start` would break the ordering,
    /// i.e. if `start` is not the first index of its tie group.
    pub fn with_arrival_at(&self, start: usize) -> State {
        debug_assert!(
            start == 0 || self.0[start - 1] > self.0[start],
            "arrival must target the first index of a tie group"
        );
        let mut v = self.0.clone();
        v[start] += 1;
        State(v)
    }

    /// State after a departure from the group ending at position `end`:
    /// decrements position `end` (the paper's last-index convention).
    ///
    /// # Panics
    ///
    /// Panics if the position is idle; debug-panics if `end` is not the
    /// last index of its tie group.
    pub fn with_departure_at(&self, end: usize) -> State {
        assert!(self.0[end] > 0, "departure from an idle server");
        debug_assert!(
            end + 1 == self.n() || self.0[end] > self.0[end + 1],
            "departure must target the last index of a tie group"
        );
        let mut v = self.0.clone();
        v[end] -= 1;
        State(v)
    }

    /// State with every occupancy incremented (`m + 1`), the level-shift
    /// bijection between consecutive QBD blocks (Lemma 1 of the paper).
    pub fn plus_one(&self) -> State {
        State(self.0.iter().map(|&x| x + 1).collect())
    }

    /// State with every occupancy decremented (`m − 1`), inverse of
    /// [`State::plus_one`]. Returns `None` if some server is idle.
    pub fn minus_one(&self) -> Option<State> {
        if self.0[self.n() - 1] == 0 {
            return None;
        }
        Some(State(self.0.iter().map(|&x| x - 1).collect()))
    }

    /// The shape of the state: `m − mN·1`, i.e. occupancies relative to
    /// the shortest queue. Two states in corresponding positions of
    /// consecutive QBD blocks share their shape.
    pub fn shape(&self) -> State {
        let base = self.0[self.n() - 1];
        State(self.0.iter().map(|&x| x - base).collect())
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "State{:?}", self.0)
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_order() {
        assert!(State::new(vec![3, 2, 2, 0]).is_some());
        assert!(State::new(vec![1, 2]).is_none());
        assert!(State::new(vec![]).is_none());
        let s = State::from_unsorted(vec![0, 5, 2]);
        assert_eq!(s.as_slice(), &[5, 2, 0]);
    }

    #[test]
    fn totals_and_diffs() {
        let s = State::new(vec![4, 2, 2, 1]).unwrap();
        assert_eq!(s.total(), 9);
        assert_eq!(s.diff(), 3);
        assert_eq!(s.waiting(), 5);
        assert_eq!(s.busy(), 4);
        let e = State::empty(3);
        assert_eq!(e.total(), 0);
        assert_eq!(e.diff(), 0);
        assert_eq!(e.busy(), 0);
    }

    #[test]
    fn groups_decomposition() {
        let s = State::new(vec![4, 2, 2, 1, 1, 1]).unwrap();
        let g = s.groups();
        assert_eq!(g.len(), 3);
        assert_eq!(
            g[0],
            Group {
                start: 0,
                end: 0,
                level: 4
            }
        );
        assert_eq!(
            g[1],
            Group {
                start: 1,
                end: 2,
                level: 2
            }
        );
        assert_eq!(
            g[2],
            Group {
                start: 3,
                end: 5,
                level: 1
            }
        );
        assert_eq!(g[1].len(), 2);
    }

    #[test]
    fn uniform_state_single_group() {
        let s = State::new(vec![2, 2, 2]).unwrap();
        let g = s.groups();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), 3);
    }

    #[test]
    fn arrival_departure_preserve_order() {
        let s = State::new(vec![2, 2, 1, 0]).unwrap();
        // Arrival to the level-2 group: first index 0 → (3,2,1,0).
        let a = s.with_arrival_at(0);
        assert_eq!(a.as_slice(), &[3, 2, 1, 0]);
        // Arrival to the level-1 group: position 2 → (2,2,2,0).
        let a = s.with_arrival_at(2);
        assert_eq!(a.as_slice(), &[2, 2, 2, 0]);
        // Departure from the level-2 group: last index 1 → (2,1,1,0).
        let d = s.with_departure_at(1);
        assert_eq!(d.as_slice(), &[2, 1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "idle server")]
    fn departure_from_idle_panics() {
        let s = State::new(vec![1, 0]).unwrap();
        let _ = s.with_departure_at(1);
    }

    #[test]
    fn plus_minus_one_roundtrip() {
        let s = State::new(vec![3, 2, 1]).unwrap();
        let up = s.plus_one();
        assert_eq!(up.as_slice(), &[4, 3, 2]);
        assert_eq!(up.minus_one().unwrap(), s);
        assert!(State::new(vec![1, 0]).unwrap().minus_one().is_none());
    }

    #[test]
    fn shape_is_base_invariant() {
        let s = State::new(vec![5, 4, 2]).unwrap();
        assert_eq!(s.shape().as_slice(), &[3, 2, 0]);
        assert_eq!(s.plus_one().shape(), s.shape());
    }

    #[test]
    fn display_and_debug() {
        let s = State::new(vec![2, 1]).unwrap();
        assert_eq!(format!("{s}"), "(2,1)");
        assert_eq!(format!("{s:?}"), "State[2, 1]");
    }

    #[test]
    fn ord_is_lexicographic() {
        let a = State::new(vec![2, 1, 1]).unwrap();
        let b = State::new(vec![2, 2, 0]).unwrap();
        assert!(a < b);
    }
}
