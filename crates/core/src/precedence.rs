//! The precedence (partial) order of Eq. 5 and machine-checked soundness
//! of the bound-model redirects.
//!
//! `(m, m′)` is a precedence pair — written `m ⪯ m′` — when
//! `Σ_{i≤j} m_i ≤ Σ_{i≤j} m′_i` for every prefix `j`. Smaller states are
//! "more preferable": fewer jobs in the longest queues means lower cost,
//! and the paper's value-iteration argument (Eq. 6–7) shows that
//! redirecting a transition to a ⪯-smaller (resp. ⪰-larger) state yields a
//! stochastic lower (resp. upper) bound model.
//!
//! [`verify_redirects`] replays that argument mechanically over an
//! enumerated state space: for every state and every transition, the bound
//! model's target must be comparable with — and on the correct side of —
//! the base model's target. Tests in `slb-core` run it for every
//! configuration used in the paper's evaluation.

use crate::{transitions, ModelVariant, State, Transition};

/// Whether `a ⪯ b` in the precedence order (Eq. 5): every prefix sum of
/// `a` is at most the corresponding prefix sum of `b`.
///
/// This is a *partial* order: states can be incomparable.
///
/// # Panics
///
/// Panics if the states have different dimensions.
///
/// # Example
///
/// ```
/// use slb_core::precedence::precedes;
/// use slb_core::State;
///
/// let balanced = State::new(vec![1, 1, 1]).unwrap();
/// let skewed = State::new(vec![3, 0, 0]).unwrap();
/// assert!(precedes(&balanced, &skewed));
/// assert!(!precedes(&skewed, &balanced));
/// ```
pub fn precedes(a: &State, b: &State) -> bool {
    assert_eq!(a.n(), b.n(), "precedence requires equal dimensions");
    let mut sa = 0u64;
    let mut sb = 0u64;
    for i in 0..a.n() {
        sa += u64::from(a.level(i));
        sb += u64::from(b.level(i));
        if sa > sb {
            return false;
        }
    }
    true
}

/// A violation found by [`verify_redirects`].
#[derive(Debug, Clone, PartialEq)]
pub struct RedirectViolation {
    /// Source state.
    pub from: State,
    /// Target in the base model.
    pub base_target: State,
    /// Target (or `None` if blocked) in the bound model.
    pub bound_target: Option<State>,
    /// Human-readable description.
    pub description: String,
}

/// Checks, for every supplied state, that the bound model's transition
/// structure is a sound redirection of the base model's:
///
/// * every base transition's rate is preserved or (for the upper model)
///   possibly dropped by blocking — never invented;
/// * for the **lower** model every redirected target `t̃` satisfies
///   `t̃ ⪯ t` against the base target `t`;
/// * for the **upper** model every redirected target satisfies `t̃ ⪰ t`,
///   and blocked departures leave the state at `m ⪰ t`.
///
/// Returns all violations (empty = sound).
///
/// # Panics
///
/// Panics if `variant` is [`ModelVariant::Base`], which has nothing to
/// verify.
pub fn verify_redirects<'a, I>(
    states: I,
    d: usize,
    lambda: f64,
    variant: ModelVariant,
) -> Vec<RedirectViolation>
where
    I: IntoIterator<Item = &'a State>,
{
    let is_lower = match variant {
        ModelVariant::Lower { .. } => true,
        ModelVariant::Upper { .. } => false,
        ModelVariant::Base => panic!("verify_redirects needs a bound variant"),
    };
    let mut violations = Vec::new();

    for m in states {
        let base = transitions(m, d, lambda, ModelVariant::Base);
        let bound = transitions(m, d, lambda, variant);

        // Pair transitions by rate bookkeeping: group both lists by rate
        // contribution. Because both lists are generated group-by-group in
        // the same order, we can walk them in parallel by matching rates.
        let mut bound_iter = bound.iter();
        let mut bound_next = bound_iter.next();
        for bt in &base {
            // Find the bound transition corresponding to this base one.
            // Departures blocked by the upper model are simply absent.
            let matched: Option<&Transition> = match bound_next {
                Some(cand) if (cand.rate - bt.rate).abs() < 1e-12 => {
                    let c = cand;
                    bound_next = bound_iter.next();
                    Some(c)
                }
                _ => None,
            };
            match matched {
                Some(tr) => {
                    let ok = if is_lower {
                        precedes(&tr.target, &bt.target)
                    } else {
                        precedes(&bt.target, &tr.target)
                    };
                    if !ok {
                        violations.push(RedirectViolation {
                            from: m.clone(),
                            base_target: bt.target.clone(),
                            bound_target: Some(tr.target.clone()),
                            description: format!(
                                "redirect on the wrong side of the precedence order \
                                 ({} model)",
                                if is_lower { "lower" } else { "upper" }
                            ),
                        });
                    }
                }
                None => {
                    // Missing transition: only the upper model may block,
                    // and blocking means staying at m, which must dominate
                    // the base target.
                    if is_lower {
                        violations.push(RedirectViolation {
                            from: m.clone(),
                            base_target: bt.target.clone(),
                            bound_target: None,
                            description: "lower model dropped a transition".into(),
                        });
                    } else if !precedes(&bt.target, m) {
                        violations.push(RedirectViolation {
                            from: m.clone(),
                            base_target: bt.target.clone(),
                            bound_target: None,
                            description: "blocking does not dominate the base target".into(),
                        });
                    }
                }
            }
        }
        if bound_next.is_some() {
            violations.push(RedirectViolation {
                from: m.clone(),
                base_target: m.clone(),
                bound_target: bound_next.cloned().map(|t| t.target),
                description: "bound model has an extra transition".into(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockSpace;

    fn s(v: &[u32]) -> State {
        State::new(v.to_vec()).unwrap()
    }

    #[test]
    fn precedence_basic_cases() {
        assert!(precedes(&s(&[1, 1, 1]), &s(&[3, 0, 0])));
        assert!(precedes(&s(&[2, 1, 0]), &s(&[2, 1, 0])));
        assert!(precedes(&s(&[2, 1, 0]), &s(&[2, 2, 0])));
        assert!(!precedes(&s(&[2, 2, 0]), &s(&[2, 1, 0])));
        // Incomparable pair: prefix sums cross.
        assert!(!precedes(&s(&[3, 0, 0]), &s(&[2, 2, 2])));
        assert!(!precedes(&s(&[2, 2, 2]), &s(&[3, 0, 0])));
    }

    #[test]
    fn precedence_reflexive_transitive_spot() {
        let a = s(&[1, 1, 0]);
        let b = s(&[2, 1, 0]);
        let c = s(&[2, 2, 0]);
        assert!(precedes(&a, &a));
        assert!(precedes(&a, &b) && precedes(&b, &c) && precedes(&a, &c));
    }

    #[test]
    fn paper_basis_pairs_are_in_order() {
        // Pm pairs from the paper: m ⪯ m + eN and m ⪯ m + e_i − e_{i+1}.
        let m = s(&[3, 2, 1]);
        assert!(precedes(&m, &s(&[3, 2, 2]))); // m + eN
        assert!(precedes(&m, &s(&[4, 1, 1]))); // m + e1 − e2
        assert!(precedes(&m, &s(&[3, 3, 0]))); // m + e2 − e3
    }

    #[test]
    fn redirects_sound_on_paper_configurations() {
        // Every (N, T) pair used in Fig. 10 of the paper, d = 2.
        for &(n, t) in &[(3usize, 2u32), (3, 3), (6, 3)] {
            let space = BlockSpace::new(n, t).unwrap();
            let states: Vec<State> = space
                .boundary()
                .iter()
                .map(|(_, st)| st.clone())
                .chain(space.block0().iter().map(|(_, st)| st.clone()))
                .chain(space.block0().iter().map(|(_, st)| st.plus_one()))
                .collect();
            for variant in [
                ModelVariant::Lower { threshold: t },
                ModelVariant::Upper { threshold: t },
            ] {
                let v = verify_redirects(states.iter(), 2, 0.9, variant);
                assert!(v.is_empty(), "N={n}, T={t}, {variant:?}: {v:?}");
            }
        }
    }

    #[test]
    fn redirects_sound_for_other_d() {
        let space = BlockSpace::new(5, 2).unwrap();
        let states: Vec<State> = space
            .boundary()
            .iter()
            .map(|(_, st)| st.clone())
            .chain(space.block0().iter().map(|(_, st)| st.clone()))
            .collect();
        for d in 1..=5 {
            for variant in [
                ModelVariant::Lower { threshold: 2 },
                ModelVariant::Upper { threshold: 2 },
            ] {
                let v = verify_redirects(states.iter(), d, 0.8, variant);
                assert!(v.is_empty(), "d={d}, {variant:?}: {v:?}");
            }
        }
    }
}
