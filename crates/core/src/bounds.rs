//! The paper's headline API: finite-regime lower and upper bounds on the
//! SQ(d) mean delay.
//!
//! [`Sqd`] holds the system parameters; [`BoundModel`] assembles the
//! threshold-truncated chain of either bound variant into QBD blocks
//! (Section IV, Eq. 8–13) and solves it with `slb-qbd`. The lower bound
//! uses Theorem 3's scalar tail `π_{q+1} = ρᴺ π_q` by default
//! ([`Sqd::lower_bound`]) with the full matrix-geometric path retained for
//! cross-validation ([`Sqd::lower_bound_full_r`]); the upper bound always
//! needs the full rate matrix ([`Sqd::upper_bound`]).

use slb_qbd::{QbdBlocks, SolveOptions};

use crate::statespace::BlockLocation;
use crate::{
    asymptotic, transitions_with_mode, BlockSpace, CoreError, ModelVariant, PollMode, Result,
};

/// SQ(d) system parameters: `N` servers, `d` choices per arrival, per-
/// server arrival rate `λ < 1` (total rate `λN`), unit service rate.
///
/// # Example
///
/// ```
/// use slb_core::Sqd;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let sqd = Sqd::new(6, 2, 0.8)?;
/// let lb = sqd.lower_bound(3)?;
/// assert!(lb.delay >= 1.0); // delay includes the service time
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sqd {
    n: usize,
    d: usize,
    lambda: f64,
    poll_mode: PollMode,
}

impl Sqd {
    /// Validates and stores the parameters (polling without replacement,
    /// the paper's model; see [`Sqd::new_with_mode`] for Mitzenmacher's
    /// with-replacement variant).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] unless `N ≥ 2`, `1 ≤ d ≤ N` and
    /// `0 < λ < 1`.
    pub fn new(n: usize, d: usize, lambda: f64) -> Result<Self> {
        Sqd::new_with_mode(n, d, lambda, PollMode::WithoutReplacement)
    }

    /// As [`Sqd::new`], with an explicit polling mode. With replacement,
    /// `d` may exceed `N`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] on violated preconditions.
    pub fn new_with_mode(n: usize, d: usize, lambda: f64, poll_mode: PollMode) -> Result<Self> {
        if n < 2 {
            return Err(CoreError::InvalidParameters {
                reason: format!("need at least 2 servers, got {n}"),
            });
        }
        let d_ok = match poll_mode {
            PollMode::WithoutReplacement => (1..=n).contains(&d),
            PollMode::WithReplacement => d >= 1,
        };
        if !d_ok {
            return Err(CoreError::InvalidParameters {
                reason: format!("invalid d = {d} for N = {n} under {poll_mode:?}"),
            });
        }
        if lambda.is_nan() || lambda <= 0.0 || lambda >= 1.0 {
            return Err(CoreError::InvalidParameters {
                reason: format!("need 0 < lambda < 1, got {lambda}"),
            });
        }
        Ok(Sqd {
            n,
            d,
            lambda,
            poll_mode,
        })
    }

    /// The polling mode.
    pub fn poll_mode(&self) -> PollMode {
        self.poll_mode
    }

    /// Number of servers `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of polled servers `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Per-server arrival rate (= utilization) `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The asymptotic (`N → ∞`) mean delay, Eq. 16.
    pub fn asymptotic_delay(&self) -> f64 {
        asymptotic::mean_delay(self.lambda, self.d)
    }

    /// Lower bound on the mean delay with threshold `T`, solved with the
    /// Theorem-3 scalar tail `π_{q+1} = ρᴺ π_q` (the paper's "improved"
    /// dramatically cheaper method).
    ///
    /// # Errors
    ///
    /// Propagates state-space or solver failures; the lower-bound model is
    /// stable for every `λ < 1`.
    pub fn lower_bound(&self, t: u32) -> Result<BoundResult> {
        BoundModel::new(*self, BoundKind::Lower, t)?.solve_scalar_tail()
    }

    /// Lower bound solved by the full matrix-geometric method (Theorem 1);
    /// same value as [`Sqd::lower_bound`], kept for cross-validation and
    /// the complexity ablation.
    ///
    /// # Errors
    ///
    /// Propagates state-space or solver failures.
    pub fn lower_bound_full_r(&self, t: u32) -> Result<BoundResult> {
        BoundModel::new(*self, BoundKind::Lower, t)?.solve_full()
    }

    /// Upper bound on the mean delay with threshold `T` (full matrix-
    /// geometric solve).
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] when blocking reduces capacity
    /// below the offered load at this `(λ, T)` — raise `T` in that case.
    pub fn upper_bound(&self, t: u32) -> Result<BoundResult> {
        BoundModel::new(*self, BoundKind::Upper, t)?.solve_full()
    }

    /// Stationary fraction of servers holding at least `k` jobs
    /// (`k = 0..=k_max`) under the given bound model — the finite-`N`
    /// counterpart of the asymptotic fractions
    /// [`asymptotic::tail_fraction`].
    ///
    /// # Errors
    ///
    /// As the corresponding bound solve.
    pub fn queue_tail_fractions(&self, kind: BoundKind, t: u32, k_max: u32) -> Result<Vec<f64>> {
        BoundModel::new(*self, kind, t)?.queue_tail_fractions(k_max)
    }

    /// The full sojourn-time distribution of the given bound model
    /// (mixture of Erlangs via PASTA; see [`crate::delay_dist`]), from
    /// which percentile bounds follow.
    ///
    /// # Errors
    ///
    /// As the corresponding bound solve.
    pub fn delay_distribution(&self, kind: BoundKind, t: u32) -> Result<crate::DelayDistribution> {
        BoundModel::new(*self, kind, t)?.delay_distribution(1e-12)
    }

    /// The saturation utilization of the upper-bound model at threshold
    /// `T`: the supremum of `λ` for which [`Sqd::upper_bound`] is stable,
    /// located by bisection to absolute accuracy `tol`.
    ///
    /// Blocking bottom-level departures removes real service capacity, so
    /// this is strictly below 1 and grows toward 1 as `T → ∞` — the
    /// complexity/accuracy trade-off discussed in the paper's conclusion.
    ///
    /// # Errors
    ///
    /// Propagates state-space construction failures.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    pub fn upper_bound_saturation(&self, t: u32, tol: f64) -> Result<f64> {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        let stable_at = |lambda: f64| -> Result<bool> {
            let probe = Sqd { lambda, ..*self };
            let blocks = BoundModel::new(probe, BoundKind::Upper, t)?.qbd_blocks()?;
            blocks.is_stable().map_err(CoreError::from)
        };
        let (mut lo, mut hi) = (1e-6, 1.0 - 1e-9);
        if !stable_at(lo)? {
            return Ok(0.0);
        }
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if stable_at(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }
}

/// Which bound a [`BoundModel`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Stochastic lower bound (redirects toward balance).
    Lower,
    /// Stochastic upper bound (blocking + amplification).
    Upper,
}

/// Outcome of a bound computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundResult {
    /// Bound on the mean delay (sojourn time, service included).
    pub delay: f64,
    /// Bound on the mean number of waiting jobs in the system.
    pub waiting_jobs: f64,
    /// Residual of the finite balance system (solution certificate).
    pub residual: f64,
    /// Logarithmic-reduction iterations (0 for the scalar-tail path).
    pub g_iterations: usize,
    /// States in the boundary block.
    pub boundary_states: usize,
    /// States per repeating block, `C(N+T−1, T)`.
    pub level_states: usize,
}

/// A threshold-truncated bound model, assembled into QBD form.
///
/// Most callers use the [`Sqd`] convenience methods; this type is public
/// for benchmarks and diagnostics (block inspection, regularity checks).
#[derive(Debug, Clone)]
pub struct BoundModel {
    sqd: Sqd,
    kind: BoundKind,
    t: u32,
    space: BlockSpace,
}

impl BoundModel {
    /// Builds the model and enumerates its state space.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] for invalid `(N, T)`.
    pub fn new(sqd: Sqd, kind: BoundKind, t: u32) -> Result<Self> {
        let space = BlockSpace::new(sqd.n, t)?;
        Ok(BoundModel {
            sqd,
            kind,
            t,
            space,
        })
    }

    /// The model variant seen by the transition generator.
    pub fn variant(&self) -> ModelVariant {
        match self.kind {
            BoundKind::Lower => ModelVariant::Lower { threshold: self.t },
            BoundKind::Upper => ModelVariant::Upper { threshold: self.t },
        }
    }

    /// The underlying block-partitioned state space.
    pub fn space(&self) -> &BlockSpace {
        &self.space
    }

    /// Assembles the six QBD generator blocks.
    ///
    /// The repeating blocks `(A0, A1, A2)` are extracted from the
    /// transitions of `B_1` (whose states have every server at level ≥ 2
    /// only when needed); level-independence (Lemma 1) guarantees the same
    /// blocks describe every `B_q`, `q ≥ 1`, and `B_0`'s inner/upward
    /// blocks — a fact checked by `debug_assert`s here and by integration
    /// tests.
    ///
    /// # Errors
    ///
    /// Propagates block-validation failures (which would indicate a bug in
    /// the transition rules rather than bad user input).
    pub fn qbd_blocks(&self) -> Result<QbdBlocks> {
        use slb_linalg::Matrix;

        let variant = self.variant();
        let (d, lambda, mode) = (self.sqd.d, self.sqd.lambda, self.sqd.poll_mode);
        let nb = self.space.boundary().len();
        let m = self.space.block_len();

        let mut r00 = Matrix::zeros(nb, nb);
        let mut r01 = Matrix::zeros(nb, m);
        let mut r10 = Matrix::zeros(m, nb);
        let mut a0 = Matrix::zeros(m, m);
        let mut a1 = Matrix::zeros(m, m);
        let mut a2 = Matrix::zeros(m, m);

        // Boundary rows.
        for (i, s) in self.space.boundary().iter() {
            let mut outflow = 0.0;
            for tr in transitions_with_mode(s, d, lambda, variant, mode) {
                outflow += tr.rate;
                match self.space.locate(&tr.target) {
                    Some(BlockLocation::Boundary(j)) => r00[(i, j)] += tr.rate,
                    Some(BlockLocation::Level { q: 0, index: j }) => r01[(i, j)] += tr.rate,
                    other => unreachable!(
                        "boundary transition {s} -> {} lands at {other:?}",
                        tr.target
                    ),
                }
            }
            r00[(i, i)] -= outflow;
        }

        // Level-0 rows (R10, A1 diag handled below; A0 from here as well).
        for (i, s) in self.space.block0().iter() {
            let mut outflow = 0.0;
            for tr in transitions_with_mode(s, d, lambda, variant, mode) {
                outflow += tr.rate;
                match self.space.locate(&tr.target) {
                    Some(BlockLocation::Boundary(j)) => r10[(i, j)] += tr.rate,
                    Some(BlockLocation::Level { q: 0, index: j }) => a1[(i, j)] += tr.rate,
                    Some(BlockLocation::Level { q: 1, index: j }) => a0[(i, j)] += tr.rate,
                    other => {
                        unreachable!("level-0 transition {s} -> {} lands at {other:?}", tr.target)
                    }
                }
            }
            a1[(i, i)] -= outflow;
        }

        // Downward block A2, extracted from level-1 states; in debug
        // builds, also re-derive A1/A0 from level 1 and check regularity.
        #[cfg(debug_assertions)]
        let mut a1_check = Matrix::zeros(m, m);
        #[cfg(debug_assertions)]
        let mut a0_check = Matrix::zeros(m, m);
        for (i, s0) in self.space.block0().iter() {
            let s = s0.plus_one();
            #[cfg(debug_assertions)]
            let mut outflow = 0.0;
            for tr in transitions_with_mode(&s, d, lambda, variant, mode) {
                #[cfg(debug_assertions)]
                {
                    outflow += tr.rate;
                }
                match self.space.locate(&tr.target) {
                    Some(BlockLocation::Level { q: 0, index: j }) => a2[(i, j)] += tr.rate,
                    Some(BlockLocation::Level { q: 1, index: _j }) => {
                        #[cfg(debug_assertions)]
                        {
                            a1_check[(i, _j)] += tr.rate;
                        }
                    }
                    Some(BlockLocation::Level { q: 2, index: _j }) => {
                        #[cfg(debug_assertions)]
                        {
                            a0_check[(i, _j)] += tr.rate;
                        }
                    }
                    other => {
                        unreachable!("level-1 transition {s} -> {} lands at {other:?}", tr.target)
                    }
                }
            }
            #[cfg(debug_assertions)]
            {
                a1_check[(i, i)] -= outflow;
            }
        }
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                a1.approx_eq(&a1_check, 1e-9),
                "A1 differs between levels 0 and 1: regularity violated"
            );
            debug_assert!(
                a0.approx_eq(&a0_check, 1e-9),
                "A0 differs between levels 0 and 1: regularity violated"
            );
        }

        Ok(QbdBlocks::new(r00, r01, r10, a0, a1, a2)?)
    }

    /// Solves via the full matrix-geometric method (Theorem 1).
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] if the drift condition fails
    /// (upper model at high `λ` / small `T`); solver failures otherwise.
    pub fn solve_full(&self) -> Result<BoundResult> {
        let blocks = self.qbd_blocks()?;
        let sol = blocks.solve(&SolveOptions::default())?;
        Ok(self.result_from(&sol))
    }

    /// Solves via the Theorem-3 scalar tail `β = ρᴺ` (lower model only).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if called on an upper model — the
    /// scalar tail is a theorem about the lower model only.
    pub fn solve_scalar_tail(&self) -> Result<BoundResult> {
        if self.kind != BoundKind::Lower {
            return Err(CoreError::InvalidParameters {
                reason: "the ρᴺ scalar tail (Theorem 3) applies to the lower model only".into(),
            });
        }
        let blocks = self.qbd_blocks()?;
        let beta = self.sqd.lambda.powi(self.sqd.n as i32);
        let sol = blocks.solve_with_scalar_tail(beta, &SolveOptions::default())?;
        Ok(self.result_from(&sol))
    }

    /// Stationary fraction of servers with at least `k` jobs
    /// (`k = 0..=k_max`) under this bound model.
    ///
    /// Solved with the full matrix-geometric method; the indicator costs
    /// are not linear in the level, so the expectation is evaluated by
    /// explicit level summation with a `1e-12` tail cut-off.
    ///
    /// # Errors
    ///
    /// As [`BoundModel::solve_full`].
    pub fn queue_tail_fractions(&self, k_max: u32) -> Result<Vec<f64>> {
        let blocks = self.qbd_blocks()?;
        let sol = blocks.solve(&SolveOptions::default())?;
        let n = self.sqd.n as f64;
        let mut out = Vec::with_capacity(k_max as usize + 1);
        for k in 0..=k_max {
            let cb: Vec<f64> = self
                .space
                .boundary()
                .iter()
                .map(|(_, s)| s.as_slice().iter().filter(|&&x| x >= k).count() as f64 / n)
                .collect();
            let frac = sol.mean_cost_per_level(
                &cb,
                |q, j| {
                    let s = self.space.block0().state(j);
                    // Level q state = template + q on every server.
                    s.as_slice().iter().filter(|&&x| x + q as u32 >= k).count() as f64 / n
                },
                1e-12,
            );
            out.push(frac.min(1.0));
        }
        Ok(out)
    }

    /// The delay-distribution bound induced by this model: the SQ(d)
    /// polling kernel (what a tagged arrival would experience under the
    /// *unmodified* policy — a precedence-monotone state cost for every
    /// `t`, exactly like the paper's waiting-job cost) integrated against
    /// this model's stationary law. See [`crate::delay_dist`]. The lower
    /// model is solved with the cheap Theorem-3 scalar tail, the upper
    /// model with the full rate matrix; levels are accumulated until the
    /// remaining tail mass drops below `tail_tol`.
    ///
    /// # Errors
    ///
    /// As the corresponding bound solve.
    ///
    /// # Panics
    ///
    /// Panics unless `tail_tol ∈ (0, 1)`.
    pub fn delay_distribution(&self, tail_tol: f64) -> Result<crate::DelayDistribution> {
        use crate::delay_dist::arrival_level_weights;

        let blocks = self.qbd_blocks()?;
        let sol = match self.kind {
            BoundKind::Lower => {
                let beta = self.sqd.lambda.powi(self.sqd.n as i32);
                blocks.solve_with_scalar_tail(beta, &SolveOptions::default())?
            }
            BoundKind::Upper => blocks.solve(&SolveOptions::default())?,
        };

        // The kernel deliberately uses the *base* policy: the bound
        // models' redirects distort state occupancy (which the stationary
        // law already reflects) but a tagged job's sojourn is only
        // meaningful under the real SQ(d) routing and per-queue FIFO
        // drain.
        let variant = ModelVariant::Base;
        let (d, mode) = (self.sqd.d, self.sqd.poll_mode);
        let mut weights: Vec<f64> = Vec::new();
        let mut add = |k: usize, w: f64| {
            if weights.len() <= k {
                weights.resize(k + 1, 0.0);
            }
            weights[k] += w;
        };

        for ((_, s), &p) in self.space.boundary().iter().zip(sol.boundary()) {
            if p <= 0.0 {
                continue;
            }
            for (level, prob) in arrival_level_weights(s, d, variant, mode) {
                add(level as usize, p * prob);
            }
        }
        // Per-shape kernels are level-invariant: level q shifts every
        // entry (and hence the assigned server's level) by exactly q.
        let kernels: Vec<Vec<(u32, f64)>> = self
            .space
            .block0()
            .iter()
            .map(|(_, s)| arrival_level_weights(s, d, variant, mode))
            .collect();
        sol.for_each_level(tail_tol, |q, pi_q| {
            for (kernel, &p) in kernels.iter().zip(pi_q) {
                if p <= 0.0 {
                    continue;
                }
                for &(level, prob) in kernel {
                    add(level as usize + q, p * prob);
                }
            }
        });

        crate::DelayDistribution::from_weights(weights)
    }

    /// Converts a QBD stationary solution into delay metrics.
    ///
    /// Waiting-job cost: `Σ_i max(m_i − 1, 0)` per state; on repeating
    /// levels the cost grows by exactly `N` per level because every server
    /// is busy there. Delay follows from Little's law at the true arrival
    /// rate `λN`, plus the unit service time.
    fn result_from(&self, sol: &slb_qbd::QbdStationary) -> BoundResult {
        let cb: Vec<f64> = self
            .space
            .boundary()
            .iter()
            .map(|(_, s)| f64::from(s.waiting()))
            .collect();
        let c0: Vec<f64> = self
            .space
            .block0()
            .iter()
            .map(|(_, s)| f64::from(s.waiting()))
            .collect();
        let growth = vec![self.sqd.n as f64; self.space.block_len()];
        let waiting = sol.mean_linear_cost(&cb, &c0, &growth);
        let mean_wait = waiting / (self.sqd.lambda * self.sqd.n as f64);
        BoundResult {
            delay: mean_wait + 1.0,
            waiting_jobs: waiting,
            residual: sol.residual(),
            g_iterations: sol.g_iterations(),
            boundary_states: self.space.boundary().len(),
            level_states: self.space.block_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(Sqd::new(1, 1, 0.5).is_err());
        assert!(Sqd::new(3, 0, 0.5).is_err());
        assert!(Sqd::new(3, 4, 0.5).is_err());
        assert!(Sqd::new(3, 2, 0.0).is_err());
        assert!(Sqd::new(3, 2, 1.0).is_err());
        assert!(Sqd::new(3, 2, 0.5).is_ok());
    }

    #[test]
    fn blocks_assemble_for_paper_configs() {
        for &(n, t) in &[(3usize, 2u32), (3, 3), (6, 3)] {
            let sqd = Sqd::new(n, 2, 0.7).unwrap();
            for kind in [BoundKind::Lower, BoundKind::Upper] {
                let model = BoundModel::new(sqd, kind, t).unwrap();
                let blocks = model.qbd_blocks().unwrap();
                assert_eq!(blocks.level_len(), model.space().block_len());
            }
        }
    }

    #[test]
    fn lower_bound_sandwich_order() {
        // LB ≤ UB for every stable configuration.
        let sqd = Sqd::new(3, 2, 0.6).unwrap();
        let lb = sqd.lower_bound(3).unwrap();
        let ub = sqd.upper_bound(3).unwrap();
        assert!(
            lb.delay <= ub.delay + 1e-9,
            "LB {} > UB {}",
            lb.delay,
            ub.delay
        );
        assert!(lb.delay >= 1.0);
        assert!(lb.residual < 1e-8 && ub.residual < 1e-8);
    }

    #[test]
    fn scalar_tail_matches_full_r_lower_bound() {
        // Theorem 3 cross-validation: the two lower-bound paths agree.
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.5f64, 2u32),
            (3, 2, 0.8, 3),
            (4, 3, 0.7, 2),
            (3, 1, 0.6, 2),
        ] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            let fast = sqd.lower_bound(t).unwrap();
            let full = sqd.lower_bound_full_r(t).unwrap();
            assert!(
                (fast.delay - full.delay).abs() < 1e-7,
                "N={n}, d={d}, λ={lam}, T={t}: {} vs {}",
                fast.delay,
                full.delay
            );
            assert_eq!(fast.g_iterations, 0);
            assert!(full.g_iterations > 0);
        }
    }

    #[test]
    fn upper_bound_unstable_at_high_load_small_t() {
        // Blocking at T = 1 sheds real capacity: the upper model must
        // saturate strictly below λ = 1.
        let sqd = Sqd::new(3, 2, 0.95).unwrap();
        match sqd.upper_bound(1) {
            Err(CoreError::UpperBoundUnstable { .. }) => {}
            other => panic!("expected instability, got {other:?}"),
        }
        // The lower bound is unaffected.
        assert!(sqd.lower_bound(1).is_ok());
    }

    #[test]
    fn larger_threshold_tightens_upper_bound() {
        let sqd = Sqd::new(3, 2, 0.7).unwrap();
        let ub2 = sqd.upper_bound(2).unwrap();
        let ub3 = sqd.upper_bound(3).unwrap();
        let ub4 = sqd.upper_bound(4).unwrap();
        assert!(
            ub3.delay <= ub2.delay + 1e-9,
            "{} vs {}",
            ub3.delay,
            ub2.delay
        );
        assert!(ub4.delay <= ub3.delay + 1e-9);
    }

    #[test]
    fn bounds_bracket_brute_force() {
        // The defining property of the paper: LB ≤ exact ≤ UB.
        for &(n, d, lam) in &[(3usize, 2usize, 0.5f64), (3, 2, 0.7), (3, 3, 0.6)] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            let exact = crate::brute::BruteForce::solve(n, d, lam, 30)
                .unwrap()
                .mean_delay();
            let lb = sqd.lower_bound(3).unwrap().delay;
            let ub = sqd.upper_bound(3).unwrap().delay;
            assert!(
                lb <= exact + 1e-6 && exact <= ub + 1e-6,
                "N={n}, d={d}, λ={lam}: LB {lb} ≤ exact {exact} ≤ UB {ub} violated"
            );
            // The paper's headline: the lower bound is remarkably tight.
            assert!(
                (exact - lb) / exact < 0.05,
                "lower bound unexpectedly loose: {lb} vs {exact}"
            );
        }
    }

    #[test]
    fn d1_lower_bound_close_to_mm1() {
        let lam = 0.6;
        let sqd = Sqd::new(3, 1, lam).unwrap();
        let lb = sqd.lower_bound(4).unwrap();
        let mm1 = 1.0 / (1.0 - lam);
        assert!(
            lb.delay <= mm1 + 1e-9,
            "LB {} above M/M/1 {}",
            lb.delay,
            mm1
        );
    }

    #[test]
    fn tail_fractions_bracket_brute_force() {
        let (n, d, lam, t) = (3usize, 2usize, 0.6f64, 3u32);
        let sqd = Sqd::new(n, d, lam).unwrap();
        let exact = crate::brute::BruteForce::solve(n, d, lam, 28)
            .unwrap()
            .queue_tail_fractions(5);
        let lo = sqd.queue_tail_fractions(BoundKind::Lower, t, 5).unwrap();
        let hi = sqd.queue_tail_fractions(BoundKind::Upper, t, 5).unwrap();
        // s_0 = 1 and s_1 = λ in all three (work conservation).
        assert!((lo[0] - 1.0).abs() < 1e-9 && (hi[0] - 1.0).abs() < 1e-9);
        assert!((lo[1] - lam).abs() < 1e-6, "lo s1 {}", lo[1]);
        // The upper model injects phantom jobs (amplified arrivals), so
        // its busy fraction strictly exceeds the offered load.
        assert!(hi[1] >= lam - 1e-9 && hi[1] < lam + 0.05, "hi s1 {}", hi[1]);
        // Deeper tails are ordered: balanced model has lighter tails.
        for k in 2..=5 {
            assert!(
                lo[k] <= exact[k] + 1e-6,
                "k={k}: lower {} > exact {}",
                lo[k],
                exact[k]
            );
            assert!(
                exact[k] <= hi[k] + 1e-6,
                "k={k}: exact {} > upper {}",
                exact[k],
                hi[k]
            );
        }
    }

    #[test]
    fn saturation_grows_with_threshold() {
        let sqd = Sqd::new(3, 2, 0.5).unwrap();
        let s2 = sqd.upper_bound_saturation(2, 1e-4).unwrap();
        let s3 = sqd.upper_bound_saturation(3, 1e-4).unwrap();
        let s4 = sqd.upper_bound_saturation(4, 1e-4).unwrap();
        assert!(s2 < s3 && s3 < s4, "{s2} {s3} {s4}");
        assert!(s4 < 1.0);
        // And the solve really is feasible just below / infeasible just
        // above the frontier.
        assert!(Sqd::new(3, 2, s3 - 1e-3).unwrap().upper_bound(3).is_ok());
        assert!(Sqd::new(3, 2, (s3 + 1e-3).min(0.999))
            .unwrap()
            .upper_bound(3)
            .is_err());
    }

    #[test]
    fn with_replacement_bounds_bracket_its_brute_force() {
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 3u32);
        let sqd = Sqd::new_with_mode(n, d, lam, PollMode::WithReplacement).unwrap();
        let exact =
            crate::brute::BruteForce::solve_with_mode(n, d, lam, 30, PollMode::WithReplacement)
                .unwrap()
                .mean_delay();
        let lb = sqd.lower_bound(t).unwrap().delay;
        let ub = sqd.upper_bound(t).unwrap().delay;
        assert!(
            lb <= exact + 1e-6 && exact <= ub + 1e-6,
            "{lb} ≤ {exact} ≤ {ub} violated (with replacement)"
        );
        // And the with-replacement system is slower than without.
        let without = Sqd::new(n, d, lam).unwrap().lower_bound(t).unwrap().delay;
        assert!(lb > without);
    }

    #[test]
    fn delay_distribution_means_track_exact() {
        // The distribution-derived means must track the exact mean: the
        // upper curve dominates; the lower curve is a sharp estimate
        // (the polling kernel is not precedence-monotone, so it may
        // cross by a few 1e-3 — see the delay_dist module docs).
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.6f64, 2u32),
            (3, 2, 0.85, 3),
            (4, 3, 0.7, 2),
        ] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            let exact = crate::brute::BruteForce::solve(n, d, lam, 32)
                .unwrap()
                .delay_distribution()
                .unwrap()
                .mean();
            let lo = sqd.delay_distribution(BoundKind::Lower, t).unwrap().mean();
            let hi = sqd.delay_distribution(BoundKind::Upper, t).unwrap().mean();
            assert!(
                lo <= exact + 5e-3 && exact <= hi + 1e-9,
                "N={n} d={d} λ={lam}: {lo} ≲ {exact} ≤ {hi} violated"
            );
            // Sharpness of the lower estimate.
            assert!((exact - lo).abs() / exact < 0.06, "loose: {lo} vs {exact}");
        }
    }

    #[test]
    fn delay_distribution_sandwich_pointwise() {
        // Upper survival dominates exact survival pointwise; lower
        // survival tracks it within the documented few-1e-3 band.
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 3u32);
        let sqd = Sqd::new(n, d, lam).unwrap();
        let lo = sqd.delay_distribution(BoundKind::Lower, t).unwrap();
        let hi = sqd.delay_distribution(BoundKind::Upper, t).unwrap();
        let exact = crate::brute::BruteForce::solve(n, d, lam, 30)
            .unwrap()
            .delay_distribution()
            .unwrap();
        for i in 1..=60 {
            let x = i as f64 * 0.25;
            let (l, e, h) = (lo.survival(x), exact.survival(x), hi.survival(x));
            assert!(
                l <= e + 3e-3 && e <= h + 1e-9,
                "t={x}: {l} ≲ {e} ≤ {h} violated"
            );
        }
        // Percentiles inherit the order (with the same lower-side band).
        for &p in &[0.5, 0.9, 0.99] {
            let (ql, qe, qh) = (
                lo.quantile(p).unwrap(),
                exact.quantile(p).unwrap(),
                hi.quantile(p).unwrap(),
            );
            assert!(ql <= qe + 0.05 && qe <= qh + 1e-9, "p={p}: {ql} {qe} {qh}");
        }
    }

    #[test]
    fn result_diagnostics_populated() {
        let sqd = Sqd::new(3, 2, 0.5).unwrap();
        let r = sqd.upper_bound(2).unwrap();
        assert_eq!(r.level_states, 6); // C(4, 2)
        assert!(r.boundary_states > 0);
        assert!(r.g_iterations >= 1);
        assert!(r.waiting_jobs >= 0.0);
    }
}
