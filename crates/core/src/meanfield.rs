//! The mean-field (fluid-limit) ODE behind the paper's asymptotic
//! baseline.
//!
//! Eq. 16 is the *fixed point* of Mitzenmacher's supermarket-model ODE.
//! With `s_i(t)` the fraction of queues holding at least `i` jobs
//! (`s_0 ≡ 1`, `s_i ↓ 0`), the `N → ∞` dynamics of SQ(d) with
//! with-replacement polling are
//!
//! ```text
//! ds_i/dt = λ·(s_{i−1}^d − s_i^d) − (s_i − s_{i+1}),   i ≥ 1,
//! ```
//!
//! whose unique stable equilibrium is `s_i = λ^{(dⁱ−1)/(d−1)}`
//! ([`crate::asymptotic::tail_fraction`]). This module integrates the
//! ODE with classic RK4, which adds to the repertoire:
//!
//! * an independent derivation of the asymptotic curve in Figures 9–10
//!   (the fixed point is *computed*, not assumed);
//! * transient analysis — how fast an empty or overloaded system relaxes
//!   to equilibrium, and how that relaxation slows as `λ → 1`;
//! * a numerically observable contrast between the `N = ∞` fluid path
//!   and the finite-`N` chains the paper actually bounds.
//!
//! Without-replacement polling (the paper's model) has the same limit:
//! the two sampling modes differ by `O(d²/N)`, which vanishes in the
//! fluid scale.

use crate::{CoreError, Result};

/// Truncation: `s_i` below this is treated as zero (and the state vector
/// is extended adaptively whenever its last entry rises above it).
const TAIL_EPS: f64 = 1e-14;

/// The supermarket-model mean-field ODE for SQ(d), integrated with RK4.
///
/// # Example
///
/// ```
/// use slb_core::meanfield::MeanField;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let mut mf = MeanField::new(0.9, 2)?; // starts empty
/// mf.run(200.0, 0.01);                  // relax to equilibrium
/// let delay = mf.mean_delay();
/// let eq16 = slb_core::asymptotic::mean_delay(0.9, 2);
/// assert!((delay - eq16).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeanField {
    lambda: f64,
    d: usize,
    /// `s[i]` is `s_{i+1}` (the redundant `s_0 = 1` is implicit).
    s: Vec<f64>,
    time: f64,
}

impl MeanField {
    /// Starts from an empty system (`s_i = 0` for all `i ≥ 1`).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] unless `0 < λ < 1` and `d ≥ 1`.
    pub fn new(lambda: f64, d: usize) -> Result<Self> {
        MeanField::with_state(lambda, d, vec![0.0])
    }

    /// Starts from an explicit tail-fraction profile `s = (s_1, s_2, …)`,
    /// which must be nonincreasing with values in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] on invalid `λ`, `d` or profile.
    pub fn with_state(lambda: f64, d: usize, s: Vec<f64>) -> Result<Self> {
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(CoreError::InvalidParameters {
                reason: format!("need 0 < lambda < 1, got {lambda}"),
            });
        }
        if d < 1 {
            return Err(CoreError::InvalidParameters {
                reason: "need d >= 1".into(),
            });
        }
        if s.is_empty() {
            return Err(CoreError::InvalidParameters {
                reason: "state must have at least one entry".into(),
            });
        }
        let mut prev = 1.0_f64;
        for (i, &v) in s.iter().enumerate() {
            if !(0.0..=1.0).contains(&v) || v > prev + 1e-12 {
                return Err(CoreError::InvalidParameters {
                    reason: format!(
                        "tail fractions must be nonincreasing in [0, 1]; s_{} = {v}",
                        i + 1
                    ),
                });
            }
            prev = v;
        }
        Ok(MeanField {
            lambda,
            d,
            s,
            time: 0.0,
        })
    }

    /// Starts from the equilibrium profile (useful to verify it *is* an
    /// equilibrium, or as a base for perturbation studies).
    ///
    /// # Errors
    ///
    /// As [`MeanField::new`].
    pub fn at_fixed_point(lambda: f64, d: usize) -> Result<Self> {
        let mut s = Vec::new();
        let mut i = 1u32;
        loop {
            let v = crate::asymptotic::tail_fraction(lambda, d, i);
            if v < TAIL_EPS {
                break;
            }
            s.push(v);
            i += 1;
            if i > 100_000 {
                break;
            }
        }
        if s.is_empty() {
            s.push(0.0);
        }
        MeanField::with_state(lambda, d, s)
    }

    /// Current integration time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current tail fractions `(s_1, s_2, …)`.
    pub fn tail_fractions(&self) -> &[f64] {
        &self.s
    }

    /// Mean number of jobs per queue, `Σ_{i≥1} s_i`.
    pub fn mean_jobs_per_queue(&self) -> f64 {
        self.s.iter().sum()
    }

    /// Mean delay via Little's law at the per-queue arrival rate `λ`
    /// (exact at equilibrium; a fluid estimate in transients).
    pub fn mean_delay(&self) -> f64 {
        self.mean_jobs_per_queue() / self.lambda
    }

    /// `max_i |ds_i/dt|` — zero exactly at the fixed point.
    pub fn equilibrium_residual(&self) -> f64 {
        let ds = self.derivative(&self.s);
        ds.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Advances one RK4 step of size `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0`.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "need positive dt, got {dt}");
        // Adaptive truncation: extend when mass reaches the current edge.
        if *self.s.last().expect("state nonempty") > TAIL_EPS {
            self.s.push(0.0);
        }
        let k1 = self.derivative(&self.s);
        let k2 = self.derivative(&add_scaled(&self.s, &k1, dt / 2.0));
        let k3 = self.derivative(&add_scaled(&self.s, &k2, dt / 2.0));
        let k4 = self.derivative(&add_scaled(&self.s, &k3, dt));
        for i in 0..self.s.len() {
            self.s[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            // Clamp round-off; the exact flow preserves [0, 1].
            self.s[i] = self.s[i].clamp(0.0, 1.0);
        }
        // Restore monotonicity lost to round-off at the tail.
        for i in 1..self.s.len() {
            if self.s[i] > self.s[i - 1] {
                self.s[i] = self.s[i - 1];
            }
        }
        self.time += dt;
    }

    /// Integrates for `horizon` time units with fixed step `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon ≥ 0` and `dt > 0`.
    pub fn run(&mut self, horizon: f64, dt: f64) {
        assert!(horizon >= 0.0, "need nonnegative horizon");
        let steps = (horizon / dt).ceil() as u64;
        for _ in 0..steps {
            self.step(dt);
        }
    }

    /// Integrates until the equilibrium residual drops below `tol`,
    /// returning the time taken — the *relaxation time*, which diverges
    /// as `λ → 1`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if `max_time` elapses first.
    ///
    /// # Panics
    ///
    /// Panics unless `tol > 0` and `dt > 0`.
    pub fn run_to_equilibrium(&mut self, tol: f64, dt: f64, max_time: f64) -> Result<f64> {
        assert!(tol > 0.0, "need positive tolerance");
        let start = self.time;
        while self.equilibrium_residual() > tol {
            if self.time - start > max_time {
                return Err(CoreError::InvalidParameters {
                    reason: format!(
                        "no equilibrium within {max_time} time units (residual {})",
                        self.equilibrium_residual()
                    ),
                });
            }
            self.step(dt);
        }
        Ok(self.time - start)
    }

    /// `ds/dt` at profile `s` (indices shifted: `s[i]` is `s_{i+1}`).
    fn derivative(&self, s: &[f64]) -> Vec<f64> {
        let k = s.len();
        let d = self.d as i32;
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let s_prev = if i == 0 { 1.0 } else { s[i - 1] };
            let s_next = if i + 1 < k { s[i + 1] } else { 0.0 };
            out.push(self.lambda * (s_prev.powi(d) - s[i].powi(d)) - (s[i] - s_next));
        }
        out
    }
}

fn add_scaled(s: &[f64], ds: &[f64], h: f64) -> Vec<f64> {
    s.iter().zip(ds).map(|(a, b)| a + h * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asymptotic;

    #[test]
    fn parameter_validation() {
        assert!(MeanField::new(0.0, 2).is_err());
        assert!(MeanField::new(1.0, 2).is_err());
        assert!(MeanField::new(0.5, 0).is_err());
        assert!(MeanField::with_state(0.5, 2, vec![]).is_err());
        assert!(MeanField::with_state(0.5, 2, vec![0.2, 0.5]).is_err()); // increasing
        assert!(MeanField::with_state(0.5, 2, vec![1.5]).is_err());
        assert!(MeanField::with_state(0.5, 2, vec![0.9, 0.4, 0.1]).is_ok());
    }

    #[test]
    fn converges_to_eq16_fixed_point() {
        for &(lam, d) in &[(0.5f64, 2usize), (0.9, 2), (0.7, 3), (0.8, 1)] {
            let mut mf = MeanField::new(lam, d).unwrap();
            // The slowest case (d = 1 at λ = 0.8) has fluid spectral gap
            // (1 − √λ)² ≈ 0.011, hence the long horizon.
            mf.run(2_500.0, 0.02);
            for i in 1..=6 {
                let want = asymptotic::tail_fraction(lam, d, i);
                let got = mf
                    .tail_fractions()
                    .get(i as usize - 1)
                    .copied()
                    .unwrap_or(0.0); // truncated ⇒ equilibrium value ≈ 0
                assert!(
                    (got - want).abs() < 1e-7,
                    "λ={lam} d={d} s_{i}: {got} vs {want}"
                );
            }
            assert!(
                (mf.mean_delay() - asymptotic::mean_delay(lam, d)).abs() < 1e-6,
                "λ={lam} d={d}: delay {} vs Eq.16 {}",
                mf.mean_delay(),
                asymptotic::mean_delay(lam, d)
            );
        }
    }

    #[test]
    fn fixed_point_is_stationary() {
        let mf = MeanField::at_fixed_point(0.85, 2).unwrap();
        assert!(
            mf.equilibrium_residual() < 1e-10,
            "residual {}",
            mf.equilibrium_residual()
        );
        // And stays put under integration.
        let mut mf2 = mf.clone();
        mf2.run(10.0, 0.01);
        for (a, b) in mf.tail_fractions().iter().zip(mf2.tail_fractions()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn d1_relaxes_to_geometric() {
        // d = 1 is the M/M/1 fluid: s_i = λⁱ at equilibrium.
        let lam = 0.6;
        let mut mf = MeanField::new(lam, 1).unwrap();
        mf.run(500.0, 0.01);
        for i in 1..=8usize {
            let got = mf.tail_fractions()[i - 1];
            assert!((got - lam.powi(i as i32)).abs() < 1e-8, "s_{i} = {got}");
        }
    }

    #[test]
    fn trajectory_stays_valid() {
        let mut mf = MeanField::new(0.95, 2).unwrap();
        for _ in 0..5_000 {
            mf.step(0.02);
            let s = mf.tail_fractions();
            let mut prev = 1.0;
            for &v in s {
                assert!((0.0..=1.0).contains(&v), "s out of range: {v}");
                assert!(v <= prev + 1e-12, "monotonicity violated");
                prev = v;
            }
        }
    }

    #[test]
    fn overloaded_start_drains_to_equilibrium() {
        // Start with every queue holding ≥ 3 jobs; the drift must shrink
        // total mass toward the equilibrium value.
        let lam = 0.7;
        let mut mf = MeanField::with_state(lam, 2, vec![1.0, 1.0, 1.0]).unwrap();
        let start_mass = mf.mean_jobs_per_queue();
        mf.run(300.0, 0.01);
        let want = asymptotic::mean_delay(lam, 2) * lam;
        assert!(mf.mean_jobs_per_queue() < start_mass);
        assert!((mf.mean_jobs_per_queue() - want).abs() < 1e-6);
    }

    #[test]
    fn relaxation_slows_near_saturation() {
        let relax = |lam: f64| {
            let mut mf = MeanField::new(lam, 2).unwrap();
            mf.run_to_equilibrium(1e-9, 0.02, 100_000.0).unwrap()
        };
        let fast = relax(0.5);
        let slow = relax(0.95);
        assert!(
            slow > 3.0 * fast,
            "relaxation at 0.95 ({slow}) should dwarf 0.5 ({fast})"
        );
    }

    #[test]
    fn higher_d_relaxes_to_lighter_tails() {
        let lam = 0.9;
        let mut d2 = MeanField::new(lam, 2).unwrap();
        let mut d5 = MeanField::new(lam, 5).unwrap();
        d2.run(300.0, 0.01);
        d5.run(300.0, 0.01);
        // Same s_1 = λ (work conservation), lighter deeper tails.
        assert!((d2.tail_fractions()[0] - lam).abs() < 1e-7);
        assert!((d5.tail_fractions()[0] - lam).abs() < 1e-7);
        for i in 1..5 {
            assert!(d5.tail_fractions()[i] < d2.tail_fractions()[i]);
        }
    }
}
