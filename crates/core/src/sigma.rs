//! The Theorem-2 geometric decay root `σ` for renewal arrival processes.
//!
//! Theorem 2 of the paper shows the lower-bound model's stationary tail is
//! `π_{q+1} = σᴺ π_q`, where `σ` is the unique root in `(0, 1)` of
//!
//! ```text
//! x = Σ_{k≥0} βk x^k ,   βk = ∫ (µt)^k/k! · e^{−µt} dA(t) ,
//! ```
//!
//! and `A` is the interarrival distribution *of the aggregate arrival
//! process* (total rate `λN`, i.e. mean interarrival `1/(λN)`). The right-
//! hand side is the probability generating function of the number of
//! service completions during one interarrival, which equals the
//! Laplace–Stieltjes transform of `A` evaluated at `µ(1 − x)`:
//! `Σ_k βk x^k = A*(µ(1−x))`.
//!
//! For Poisson arrivals Theorem 3 reduces this to `σ = ρ` — reproduced
//! here both in closed form and by the generic solver (a unit test pins
//! the identity). Erlang, deterministic and hyperexponential interarrival
//! laws are provided as the natural MAP/PH-flavoured extensions the
//! paper's conclusion points to.

use crate::{CoreError, Result};

/// Interarrival-time distribution of the *aggregate* arrival process.
///
/// All variants are parameterized to have a well-defined mean; the
/// corresponding arrival rate is `1/mean`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interarrival {
    /// Exponential with the given rate (Poisson process).
    Exponential {
        /// Arrival rate (events per unit time).
        rate: f64,
    },
    /// Deterministic (constant) interarrival time.
    Deterministic {
        /// The constant gap between arrivals.
        gap: f64,
    },
    /// Erlang with `k` phases, each of the given rate (mean `k/rate`).
    Erlang {
        /// Number of phases (≥ 1).
        k: u32,
        /// Per-phase rate.
        rate: f64,
    },
    /// Two-branch hyperexponential: with probability `p` the gap is
    /// exp(`rate1`), otherwise exp(`rate2`). Models bursty arrivals
    /// (squared coefficient of variation > 1).
    HyperExp {
        /// Probability of the first branch.
        p: f64,
        /// Rate of the first branch.
        rate1: f64,
        /// Rate of the second branch.
        rate2: f64,
    },
}

impl Interarrival {
    /// Mean interarrival time.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_core::sigma::Interarrival;
    ///
    /// let a = Interarrival::Erlang { k: 4, rate: 8.0 };
    /// assert!((a.mean() - 0.5).abs() < 1e-15);
    /// ```
    pub fn mean(&self) -> f64 {
        match *self {
            Interarrival::Exponential { rate } => 1.0 / rate,
            Interarrival::Deterministic { gap } => gap,
            Interarrival::Erlang { k, rate } => k as f64 / rate,
            Interarrival::HyperExp { p, rate1, rate2 } => p / rate1 + (1.0 - p) / rate2,
        }
    }

    /// Laplace–Stieltjes transform `A*(s) = E[e^{−sT}]` for `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `s < 0`.
    pub fn lst(&self, s: f64) -> f64 {
        assert!(s >= 0.0, "LST argument must be nonnegative, got {s}");
        match *self {
            Interarrival::Exponential { rate } => rate / (rate + s),
            Interarrival::Deterministic { gap } => (-s * gap).exp(),
            Interarrival::Erlang { k, rate } => (rate / (rate + s)).powi(k as i32),
            Interarrival::HyperExp { p, rate1, rate2 } => {
                p * rate1 / (rate1 + s) + (1.0 - p) * rate2 / (rate2 + s)
            }
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] when a rate/gap is non-positive,
    /// `k = 0`, or `p ∉ [0, 1]`.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            Interarrival::Exponential { rate } => rate > 0.0 && rate.is_finite(),
            Interarrival::Deterministic { gap } => gap > 0.0 && gap.is_finite(),
            Interarrival::Erlang { k, rate } => k >= 1 && rate > 0.0 && rate.is_finite(),
            Interarrival::HyperExp { p, rate1, rate2 } => {
                (0.0..=1.0).contains(&p) && rate1 > 0.0 && rate2 > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::InvalidParameters {
                reason: format!("invalid interarrival parameters: {self:?}"),
            })
        }
    }

    /// `βk`: the probability that exactly `k` service completions (rate
    /// `mu` each, all servers busy) fall within one interarrival time
    /// (Eq. 15/19 of the paper). Computed by numerically accumulating the
    /// defining integral through the LST derivative-free identity
    /// `βk = (−µ)^k/k! · d^k A*(s)/ds^k |_{s=µ}`; for the distributions
    /// here closed forms are used instead.
    ///
    /// # Panics
    ///
    /// Panics if `mu <= 0`.
    pub fn beta(&self, k: u32, mu: f64) -> f64 {
        assert!(mu > 0.0, "service rate must be positive");
        match *self {
            // Paper, Eq. 21: βk = (λ/µ)·µ^{k+1}/(λ+µ)^{k+1}.
            Interarrival::Exponential { rate } => {
                (rate / mu) * (mu / (rate + mu)).powi(k as i32 + 1)
            }
            // Poisson(µ·gap) pmf.
            Interarrival::Deterministic { gap } => {
                let a = mu * gap;
                let mut log_p = -a;
                for i in 1..=k {
                    log_p += (a / i as f64).ln();
                }
                log_p.exp()
            }
            // Number of Poisson(µ) events in an Erlang(k0, r) window is
            // negative binomial: C(k+k0−1, k)·(r/(r+µ))^{k0}·(µ/(r+µ))^k.
            Interarrival::Erlang { k: k0, rate } => {
                let p = rate / (rate + mu);
                let q = mu / (rate + mu);
                let mut coeff = 1.0;
                for i in 0..k {
                    coeff *= (k0 as f64 + i as f64) / (i as f64 + 1.0);
                }
                coeff * p.powi(k0 as i32) * q.powi(k as i32)
            }
            Interarrival::HyperExp { p, rate1, rate2 } => {
                let b = |rate: f64| (rate / mu) * (mu / (rate + mu)).powi(k as i32 + 1);
                p * b(rate1) + (1.0 - p) * b(rate2)
            }
        }
    }
}

/// Solves Eq. 15 of the paper: the unique fixed point in `(0, 1)` of
/// `x = A*(µ(1 − x))`, by monotone fixed-point iteration from `x = 0`.
///
/// The iteration is monotone increasing and bounded by the root, so it
/// converges whenever the system is stable (`mean interarrival > 1/µ`
/// would be *unstable*; stability here is `λ_aggregate < µ`, i.e.
/// `1/mean > µ` fails — see the error condition).
///
/// # Errors
///
/// * [`CoreError::InvalidParameters`] if the distribution is invalid or
///   the implied utilization `1/(mean·µ) ≥ 1` (no root inside the unit
///   interval).
///
/// # Example
///
/// ```
/// use slb_core::sigma::{solve_sigma, Interarrival};
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// // Theorem 3: for Poisson arrivals σ = ρ.
/// let a = Interarrival::Exponential { rate: 0.8 };
/// let sigma = solve_sigma(&a, 1.0)?;
/// assert!((sigma - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_sigma(arrival: &Interarrival, mu: f64) -> Result<f64> {
    arrival.validate()?;
    solve_sigma_lst(|s| arrival.lst(s), arrival.mean(), mu)
}

/// As [`solve_sigma`], but driven by an arbitrary Laplace–Stieltjes
/// transform `A*(s)` with the given mean — the hook for phase-type
/// interarrival laws (`slb_markov::PhaseType::lst`) and, more generally,
/// any renewal process whose transform is computable.
///
/// # Errors
///
/// [`CoreError::InvalidParameters`] if `mu ≤ 0`, `mean ≤ 0`, or the
/// implied utilization `1/(mean·µ) ≥ 1`.
///
/// # Example
///
/// ```
/// use slb_core::sigma::solve_sigma_lst;
/// use slb_markov::PhaseType;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Erlang-2 interarrivals with mean 1/0.8 as a PH law.
/// let ph = PhaseType::erlang(2, 1.6)?;
/// let sigma = solve_sigma_lst(|s| ph.lst(s).unwrap(), ph.mean()?, 1.0)?;
/// assert!(sigma > 0.0 && sigma < 0.8); // smoother than Poisson: σ < ρ
/// # Ok(())
/// # }
/// ```
pub fn solve_sigma_lst<F: Fn(f64) -> f64>(lst: F, mean: f64, mu: f64) -> Result<f64> {
    if mu <= 0.0 || !mu.is_finite() {
        return Err(CoreError::InvalidParameters {
            reason: format!("service rate must be positive and finite, got {mu}"),
        });
    }
    if mean <= 0.0 || !mean.is_finite() {
        return Err(CoreError::InvalidParameters {
            reason: format!("mean interarrival must be positive, got {mean}"),
        });
    }
    let rho = 1.0 / (mean * mu);
    if rho >= 1.0 {
        return Err(CoreError::InvalidParameters {
            reason: format!("unstable: implied utilization {rho} >= 1"),
        });
    }
    let g = |x: f64| lst(mu * (1.0 - x));
    let mut x = 0.0_f64;
    for _ in 0..100_000 {
        let next = g(x);
        if (next - x).abs() < 1e-15 {
            return Ok(next);
        }
        x = next;
    }
    // Monotone iterations always converge here; reaching this means the
    // tolerance is tighter than f64 allows for this distribution.
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_sigma_is_rho_theorem3() {
        for &rho in &[0.1, 0.5, 0.75, 0.9, 0.99] {
            let a = Interarrival::Exponential { rate: rho };
            let s = solve_sigma(&a, 1.0).unwrap();
            assert!((s - rho).abs() < 1e-10, "rho {rho}: sigma {s}");
        }
    }

    #[test]
    fn beta_poisson_closed_form_matches_paper() {
        // Eq. 21: βk = ρ/(1+ρ)^{k+1} for µ = 1.
        let rho = 0.6;
        let a = Interarrival::Exponential { rate: rho };
        for k in 0..10 {
            let expect = rho / (1.0 + rho).powi(k as i32 + 1);
            assert!((a.beta(k, 1.0) - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn betas_form_distribution() {
        let cases = [
            Interarrival::Exponential { rate: 0.7 },
            Interarrival::Deterministic { gap: 1.3 },
            Interarrival::Erlang { k: 3, rate: 2.4 },
            Interarrival::HyperExp {
                p: 0.3,
                rate1: 0.5,
                rate2: 3.0,
            },
        ];
        for a in cases {
            let total: f64 = (0..400).map(|k| a.beta(k, 1.0)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{a:?}: total {total}");
        }
    }

    #[test]
    fn beta_generating_function_equals_lst() {
        // Σ βk x^k = A*(µ(1−x)) — the identity the solver relies on.
        let a = Interarrival::Erlang { k: 2, rate: 1.5 };
        for &x in &[0.0f64, 0.3, 0.7, 0.95] {
            let series: f64 = (0..600).map(|k| a.beta(k, 1.0) * x.powi(k as i32)).sum();
            let lst = a.lst(1.0 - x);
            assert!((series - lst).abs() < 1e-10, "x={x}: {series} vs {lst}");
        }
    }

    #[test]
    fn sigma_is_root_of_equation() {
        let cases = [
            Interarrival::Deterministic { gap: 1.6 },
            Interarrival::Erlang { k: 4, rate: 3.0 },
            Interarrival::HyperExp {
                p: 0.4,
                rate1: 0.4,
                rate2: 4.0,
            },
        ];
        for a in cases {
            let s = solve_sigma(&a, 1.0).unwrap();
            assert!((0.0..1.0).contains(&s), "{a:?}: sigma {s}");
            let g = a.lst(1.0 - s);
            assert!((g - s).abs() < 1e-10, "{a:?}: g(σ)={g}, σ={s}");
        }
    }

    #[test]
    fn smoother_arrivals_give_smaller_sigma() {
        // At equal rate, deterministic (CV 0) < Erlang (CV < 1) <
        // Poisson (CV 1) < hyperexponential (CV > 1) in tail decay.
        let rate = 0.8;
        let det = solve_sigma(&Interarrival::Deterministic { gap: 1.0 / rate }, 1.0).unwrap();
        let erl = solve_sigma(
            &Interarrival::Erlang {
                k: 4,
                rate: 4.0 * rate,
            },
            1.0,
        )
        .unwrap();
        let poi = solve_sigma(&Interarrival::Exponential { rate }, 1.0).unwrap();
        // Hyperexp with the same mean but CV² > 1.
        let hyp = solve_sigma(
            &Interarrival::HyperExp {
                p: 0.9,
                rate1: 0.9 * rate / 0.5,
                rate2: 0.1 * rate / 0.5,
            },
            1.0,
        )
        .unwrap();
        assert!(
            det < erl && erl < poi && poi < hyp,
            "{det} {erl} {poi} {hyp}"
        );
    }

    #[test]
    fn unstable_rejected() {
        let a = Interarrival::Exponential { rate: 1.0 };
        assert!(solve_sigma(&a, 1.0).is_err());
        let a = Interarrival::Deterministic { gap: 0.5 };
        assert!(solve_sigma(&a, 1.0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Interarrival::Exponential { rate: 0.0 }.validate().is_err());
        assert!(Interarrival::Erlang { k: 0, rate: 1.0 }.validate().is_err());
        assert!(Interarrival::HyperExp {
            p: 1.5,
            rate1: 1.0,
            rate2: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn phase_type_bridge_matches_closed_forms() {
        use slb_markov::PhaseType;
        // Exponential PH must reproduce Theorem 3's σ = ρ.
        let rho = 0.7;
        let ph = PhaseType::exponential(rho).unwrap();
        let s = solve_sigma_lst(|x| ph.lst(x).unwrap(), ph.mean().unwrap(), 1.0).unwrap();
        assert!((s - rho).abs() < 1e-10, "sigma {s}");
        // Erlang PH matches the enum's Erlang.
        let ph = PhaseType::erlang(3, 2.4).unwrap();
        let via_ph = solve_sigma_lst(|x| ph.lst(x).unwrap(), ph.mean().unwrap(), 1.0).unwrap();
        let via_enum = solve_sigma(&Interarrival::Erlang { k: 3, rate: 2.4 }, 1.0).unwrap();
        assert!((via_ph - via_enum).abs() < 1e-10);
    }

    #[test]
    fn hyperexp_mean() {
        let a = Interarrival::HyperExp {
            p: 0.25,
            rate1: 1.0,
            rate2: 2.0,
        };
        assert!((a.mean() - (0.25 + 0.75 / 2.0)).abs() < 1e-15);
    }
}
