//! Binomial coefficients for the SQ(d) polling probabilities.
//!
//! The arrival rate into a tie group of servers is
//! `λN · [C(e, d) − C(s−1, d)] / C(N, d)` (Section II-A of the paper), so
//! the only combinatorial quantity needed is `C(n, k)`. Values are
//! computed by the multiplicative formula in `f64`; they are exact as long
//! as the result stays below 2⁵³, which covers every QBD-sized
//! configuration (`N ≤ 64`), and carry ~1 ulp of relative error beyond
//! that — irrelevant since the rates are normalized by `C(N, d)`.

/// Binomial coefficient `C(n, k)` with the convention `C(n, k) = 0` for
/// `k > n`.
///
/// # Example
///
/// ```
/// use slb_core::combinatorics::binomial;
///
/// assert_eq!(binomial(6, 2), 15.0);
/// assert_eq!(binomial(3, 5), 0.0);
/// assert_eq!(binomial(5, 0), 1.0);
/// ```
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Probability that an SQ(d) arrival is routed to the tie group occupying
/// (1-based) sorted positions `s..=e`, out of `n` servers:
/// `[C(e, d) − C(s−1, d)] / C(n, d)`.
///
/// The numerator counts the polling outcomes whose minimum polled position
/// lies inside the group: all `d` polled servers must come from positions
/// `1..=e`, minus the outcomes avoiding the group entirely.
///
/// # Panics
///
/// Panics unless `1 ≤ s ≤ e ≤ n` and `1 ≤ d ≤ n`.
///
/// # Example
///
/// ```
/// use slb_core::combinatorics::group_arrival_probability;
///
/// // SQ(2) with N = 3, distinct queue lengths: positions 2 and 3 can
/// // receive the job; position 3 (the shortest) with probability
/// // C(3,2)−C(2,2) = 2 of 3 outcomes.
/// assert!((group_arrival_probability(3, 2, 3, 3) - 2.0 / 3.0).abs() < 1e-15);
/// assert!((group_arrival_probability(3, 2, 2, 2) - 1.0 / 3.0).abs() < 1e-15);
/// assert_eq!(group_arrival_probability(3, 2, 1, 1), 0.0);
/// ```
pub fn group_arrival_probability(n: usize, d: usize, s: usize, e: usize) -> f64 {
    assert!(
        (1..=n).contains(&d),
        "need 1 <= d <= n, got d = {d}, n = {n}"
    );
    assert!(
        1 <= s && s <= e && e <= n,
        "need 1 <= s <= e <= n, got s = {s}, e = {e}, n = {n}"
    );
    (binomial(e, d) - binomial(s - 1, d)) / binomial(n, d)
}

/// Probability that an SQ(d) arrival is routed to the tie group occupying
/// (1-based) sorted positions `s..=e` when the `d` polls are drawn **with
/// replacement** (Mitzenmacher's original model):
/// `(e/n)^d − ((s−1)/n)^d`.
///
/// All polls must land in positions `1..=e`, minus the outcomes that miss
/// the group entirely. With replacement, a poll may repeat a server, so
/// `d` may exceed `n`.
///
/// # Panics
///
/// Panics unless `1 ≤ s ≤ e ≤ n` and `d ≥ 1`.
///
/// # Example
///
/// ```
/// use slb_core::combinatorics::group_arrival_probability_with_replacement;
///
/// // N = 3, d = 2: the shortest queue wins unless both polls miss it:
/// // (3/3)² − (2/3)² = 5/9.
/// let p = group_arrival_probability_with_replacement(3, 2, 3, 3);
/// assert!((p - 5.0 / 9.0).abs() < 1e-15);
/// ```
pub fn group_arrival_probability_with_replacement(n: usize, d: usize, s: usize, e: usize) -> f64 {
    assert!(d >= 1, "need d >= 1, got {d}");
    assert!(
        1 <= s && s <= e && e <= n,
        "need 1 <= s <= e <= n, got s = {s}, e = {e}, n = {n}"
    );
    let frac = |k: usize| (k as f64 / n as f64).powi(d as i32);
    frac(e) - frac(s - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(10, 3), 120.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(2, 3), 0.0);
    }

    #[test]
    fn pascal_recurrence() {
        for n in 1..30 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
                assert!(
                    (lhs - rhs).abs() <= 1e-9 * lhs.max(1.0),
                    "Pascal fails at C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..25 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn paper_identity_sum_of_binomials() {
        // Σ_{i=d}^{N} C(i−1, d−1) = C(N, d)  (Section II-A).
        for n in 1..=20 {
            for d in 1..=n {
                let sum: f64 = (d..=n).map(|i| binomial(i - 1, d - 1)).sum();
                assert!(
                    (sum - binomial(n, d)).abs() < 1e-9 * binomial(n, d).max(1.0),
                    "identity fails at N={n}, d={d}"
                );
            }
        }
    }

    #[test]
    fn group_probabilities_sum_to_one() {
        // Partitioning positions 1..=n into arbitrary consecutive groups,
        // the group arrival probabilities must sum to 1.
        let n = 7;
        for d in 1..=n {
            // Groups: [1,2], [3,3], [4,6], [7,7].
            let groups = [(1, 2), (3, 3), (4, 6), (7, 7)];
            let total: f64 = groups
                .iter()
                .map(|&(s, e)| group_arrival_probability(n, d, s, e))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "d = {d}: total {total}");
        }
    }

    #[test]
    fn distinct_lengths_match_paper_rates() {
        // All-singleton groups: probability of position i is
        // C(i−1, d−1)/C(N, d), zero for i < d.
        let (n, d) = (6, 3);
        for i in 1..=n {
            let p = group_arrival_probability(n, d, i, i);
            let expect = binomial(i - 1, d - 1) / binomial(n, d);
            assert!((p - expect).abs() < 1e-15);
            if i < d {
                assert_eq!(p, 0.0);
            }
        }
    }

    #[test]
    fn jsq_routes_to_bottom_group_only() {
        let n = 5;
        let d = n;
        assert_eq!(group_arrival_probability(n, d, 1, n - 1), 0.0);
        assert!((group_arrival_probability(n, d, n, n) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn with_replacement_probabilities_sum_to_one() {
        let n = 6;
        for d in [1usize, 2, 3, 8] {
            let groups = [(1, 1), (2, 4), (5, 6)];
            let total: f64 = groups
                .iter()
                .map(|&(s, e)| group_arrival_probability_with_replacement(n, d, s, e))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "d = {d}: total {total}");
        }
    }

    #[test]
    fn replacement_modes_agree_at_d1() {
        // A single poll cannot repeat, so the two modes coincide at d = 1.
        let n = 5;
        for (s, e) in [(1usize, 2usize), (3, 3), (4, 5)] {
            let a = group_arrival_probability(n, 1, s, e);
            let b = group_arrival_probability_with_replacement(n, 1, s, e);
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn replacement_weakens_the_shortest_queue() {
        // With replacement, some polls are wasted duplicates, so the
        // shortest position receives the job less often (d > 1).
        let n = 4;
        for d in 2..=4 {
            let without = group_arrival_probability(n, d, n, n);
            let with = group_arrival_probability_with_replacement(n, d, n, n);
            assert!(with < without, "d = {d}: with {with} !< without {without}");
        }
    }

    #[test]
    fn moderate_sizes_finite() {
        // Sanity for the larger sweeps (simulation side never calls this,
        // but the asymptotic-error harness might for bookkeeping).
        let v = binomial(250, 50);
        assert!(v.is_finite() && v > 1e40);
    }
}
