//! # slb-core
//!
//! Finite-regime stochastic delay bounds for the **SQ(d)** randomized
//! load-balancing policy — a Rust implementation of *Godtschalk & Ciucu,
//! "Randomized Load Balancing in Finite Regimes", ICDCS 2016*.
//!
//! ## The model
//!
//! `N` parallel FIFO servers with exponential(µ = 1) service; jobs arrive
//! Poisson with total rate `λN`; each arrival polls `d` servers uniformly
//! without replacement and joins the shortest polled queue ([`Sqd`]).
//! `d = 1` is uniform random routing (N independent M/M/1 queues);
//! `d = N` is join-the-shortest-queue (JSQ).
//!
//! The classical analysis of this policy (Mitzenmacher; Vvedenskaya et
//! al.) is **asymptotic** in `N` ([`asymptotic`], Eq. 16 of the paper).
//! This crate computes **non-asymptotic bounds** valid at any finite `N`:
//! two threshold-truncated Markov models — built by redirecting the
//! transitions that would let the longest/shortest queue differ by more
//! than `T` jobs — sandwich the true mean delay from below and above
//! ([`BoundModel`], [`Sqd::lower_bound`], [`Sqd::upper_bound`]). The
//! truncated chains are quasi-birth-death processes solved by the
//! matrix-geometric machinery of `slb-qbd`; the lower-bound model
//! additionally admits the scalar-tail shortcut `π_{q+1} = ρᴺ π_q`
//! (Theorem 3), implemented in [`Sqd::lower_bound`] and cross-checked by
//! [`Sqd::lower_bound_full_r`].
//!
//! A brute-force truncated-CTMC solver ([`brute`]) provides ground truth
//! for small systems, and [`sigma`] implements the Theorem-2 root `σ` for
//! renewal (non-Poisson) arrival processes. Beyond the paper's mean
//! delays, [`delay_dist`] derives the full sojourn-time distribution of
//! each model as a mixture of Erlangs, giving percentile bounds
//! ([`Sqd::delay_distribution`]).
//!
//! ## Quickstart
//!
//! ```
//! use slb_core::Sqd;
//!
//! # fn main() -> Result<(), slb_core::CoreError> {
//! let sqd = Sqd::new(3, 2, 0.7)?; // N = 3 servers, d = 2 choices, λ = 0.7
//! let lb = sqd.lower_bound(3)?;   // threshold T = 3
//! let ub = sqd.upper_bound(3)?;
//! let approx = sqd.asymptotic_delay();
//! assert!(lb.delay <= ub.delay);
//! // The asymptotic formula underestimates the true delay at small N:
//! assert!(approx < ub.delay);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymptotic;
pub mod brute;
pub mod combinatorics;
pub mod delay_dist;
pub mod meanfield;
pub mod occupancy;
pub mod precedence;
pub mod sigma;
pub mod transient;

mod bounds;
mod error;
mod state;
mod statespace;
mod transitions;

pub use bounds::{BoundKind, BoundModel, BoundResult, Sqd};
pub use delay_dist::DelayDistribution;
pub use error::CoreError;
pub use occupancy::{LumpedModel, OccLocation, OccupancySpace};
pub use state::{Group, State};
pub use statespace::{BlockLocation, BlockSpace, StateIndex};
pub use transitions::{transitions, transitions_with_mode, ModelVariant, PollMode, Transition};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
