//! Transient (time-dependent) analysis of the finite-`N` SQ(d) chain.
//!
//! The paper — like most of the power-of-d literature — studies the
//! stationary regime. This module computes the *time-dependent* state
//! distribution of the exact (truncated) SQ(d) chain by uniformization,
//! answering questions the stationary bounds cannot: how long after a
//! cold start (or a load spike) do the stationary numbers become
//! trustworthy, and how does that warm-up horizon scale with load?
//! Together with [`crate::meanfield`] this quantifies both rungs of the
//! ladder: the `N = ∞` fluid transient and the finite-`N` stochastic
//! transient it approximates.

use slb_markov::{Ctmc, SparseCtmc};

use crate::{transitions_with_mode, CoreError, ModelVariant, PollMode, Result, State};

/// Transient solver for the exact SQ(d) chain, truncated at `m1 ≤ cap`.
///
/// # Example
///
/// ```
/// use slb_core::transient::TransientSqd;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let tr = TransientSqd::new(3, 2, 0.7, 12)?;
/// // From empty, the mean job count climbs toward its stationary value.
/// let early = tr.mean_jobs_at(0.5)?;
/// let late = tr.mean_jobs_at(120.0)?;
/// assert!(early < late);
/// assert!((late - tr.stationary_mean_jobs()).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSqd {
    ctmc: Ctmc,
    states: Vec<State>,
    stationary: Vec<f64>,
    n: usize,
    lambda: f64,
}

impl TransientSqd {
    /// Builds the truncated chain (all sorted states with `m1 ≤ cap`).
    ///
    /// The dense uniformization underneath limits practical sizes to a
    /// few thousand states — ample for the small-`N` regimes the paper
    /// targets (`C(N+cap, N)` states).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] for invalid `(N, d, λ, cap)`;
    /// solver errors from the stationary cross-check.
    pub fn new(n: usize, d: usize, lambda: f64, cap: u32) -> Result<Self> {
        if n == 0 || !(1..=n).contains(&d) {
            return Err(CoreError::InvalidParameters {
                reason: format!("need 1 <= d <= N, got d = {d}, N = {n}"),
            });
        }
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(CoreError::InvalidParameters {
                reason: format!("need 0 < lambda < 1, got {lambda}"),
            });
        }
        if cap < 2 {
            return Err(CoreError::InvalidParameters {
                reason: "cap must be at least 2".into(),
            });
        }

        let states = enumerate_capped(n, cap);
        let index: std::collections::HashMap<&State, usize> =
            states.iter().enumerate().map(|(i, s)| (s, i)).collect();

        let mut sparse = SparseCtmc::new(states.len());
        let mut q = slb_linalg::Matrix::zeros(states.len(), states.len());
        for (i, s) in states.iter().enumerate() {
            let mut outflow = 0.0;
            for tr in transitions_with_mode(
                s,
                d,
                lambda,
                ModelVariant::Base,
                PollMode::WithoutReplacement,
            ) {
                if tr.target.level(0) > cap {
                    continue; // truncation
                }
                let j = index[&tr.target];
                outflow += tr.rate;
                q[(i, j)] += tr.rate;
                if j != i {
                    sparse.add_rate(i, j, tr.rate)?;
                }
            }
            q[(i, i)] -= outflow;
        }
        let stationary = sparse.stationary_jacobi(1e-13, 2_000_000)?;
        let ctmc = Ctmc::from_generator(q)?;

        Ok(TransientSqd {
            ctmc,
            states,
            stationary,
            n,
            lambda,
        })
    }

    /// Number of states in the truncated chain.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The stationary mean number of jobs (truncated chain).
    pub fn stationary_mean_jobs(&self) -> f64 {
        self.states
            .iter()
            .zip(&self.stationary)
            .map(|(s, &p)| p * f64::from(s.total()))
            .sum()
    }

    /// The stationary mean delay via Little's law.
    pub fn stationary_mean_delay(&self) -> f64 {
        self.stationary_mean_jobs() / (self.lambda * self.n as f64)
    }

    /// State distribution at time `t`, starting from the empty system.
    ///
    /// # Errors
    ///
    /// Propagates uniformization failures.
    pub fn distribution_at(&self, t: f64) -> Result<Vec<f64>> {
        let mut initial = vec![0.0; self.states.len()];
        // The all-zero state sorts first in the enumeration only by
        // construction of `enumerate_capped`; locate it robustly.
        let empty = State::empty(self.n);
        let idx = self
            .states
            .iter()
            .position(|s| *s == empty)
            .expect("empty state is enumerated");
        initial[idx] = 1.0;
        Ok(self.ctmc.transient(&initial, t)?)
    }

    /// Mean number of jobs at time `t` (empty start).
    ///
    /// # Errors
    ///
    /// As [`TransientSqd::distribution_at`].
    pub fn mean_jobs_at(&self, t: f64) -> Result<f64> {
        let p = self.distribution_at(t)?;
        Ok(self
            .states
            .iter()
            .zip(&p)
            .map(|(s, &pr)| pr * f64::from(s.total()))
            .sum())
    }

    /// Total-variation distance between the time-`t` law (empty start)
    /// and the stationary law.
    ///
    /// # Errors
    ///
    /// As [`TransientSqd::distribution_at`].
    pub fn tv_distance_at(&self, t: f64) -> Result<f64> {
        let p = self.distribution_at(t)?;
        Ok(0.5
            * p.iter()
                .zip(&self.stationary)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>())
    }

    /// The smallest time (on a doubling-then-bisecting grid, absolute
    /// accuracy `0.01·t`) at which the TV distance from stationarity
    /// drops below `eps` — the finite-`N` warm-up horizon.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if `t_max` is reached first.
    ///
    /// # Panics
    ///
    /// Panics unless `eps ∈ (0, 1)`.
    pub fn relaxation_time(&self, eps: f64, t_max: f64) -> Result<f64> {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        // TV from stationarity is nonincreasing in t (Markov semigroup
        // contraction), so bracketing + bisection is sound.
        let mut hi = 1.0;
        while self.tv_distance_at(hi)? > eps {
            hi *= 2.0;
            if hi > t_max {
                return Err(CoreError::InvalidParameters {
                    reason: format!("no relaxation below {eps} within {t_max}"),
                });
            }
        }
        let mut lo = hi / 2.0;
        if hi <= 1.0 {
            lo = 0.0;
        }
        while hi - lo > 0.01 * hi.max(1.0) {
            let mid = 0.5 * (lo + hi);
            if self.tv_distance_at(mid)? > eps {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(hi)
    }
}

/// All sorted states on `n` servers with `m1 ≤ cap`.
fn enumerate_capped(n: usize, cap: u32) -> Vec<State> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; n];
    fn rec(cur: &mut Vec<u32>, pos: usize, max: u32, out: &mut Vec<State>) {
        if pos == cur.len() {
            out.push(State::new(cur.clone()).expect("sorted by construction"));
            return;
        }
        for v in (0..=max).rev() {
            cur[pos] = v;
            rec(cur, pos + 1, v, out);
        }
    }
    rec(&mut cur, 0, cap, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(TransientSqd::new(0, 1, 0.5, 10).is_err());
        assert!(TransientSqd::new(3, 4, 0.5, 10).is_err());
        assert!(TransientSqd::new(3, 2, 1.0, 10).is_err());
        assert!(TransientSqd::new(3, 2, 0.5, 1).is_err());
    }

    #[test]
    fn starts_empty_and_converges_to_stationary() {
        let tr = TransientSqd::new(3, 2, 0.6, 14).unwrap();
        assert!(tr.mean_jobs_at(0.0).unwrap() < 1e-12);
        assert!(tr.tv_distance_at(0.0).unwrap() > 0.3);
        // Two independent solvers meet here: Jacobi at residual 1e-13
        // and uniformization with its own series truncation.
        let late = tr.mean_jobs_at(120.0).unwrap();
        assert!(
            (late - tr.stationary_mean_jobs()).abs() < 1e-5,
            "{late} vs {}",
            tr.stationary_mean_jobs()
        );
        assert!(tr.tv_distance_at(120.0).unwrap() < 1e-5);
    }

    #[test]
    fn small_time_growth_is_arrival_rate() {
        // E[jobs](dt) = λN·dt + O(dt²) from an empty start.
        let (n, lam) = (3usize, 0.7f64);
        let tr = TransientSqd::new(n, 2, lam, 10).unwrap();
        let dt = 1e-3;
        let got = tr.mean_jobs_at(dt).unwrap();
        let want = lam * n as f64 * dt;
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }

    #[test]
    fn tv_distance_monotone_and_relaxation_bracketed() {
        let tr = TransientSqd::new(3, 2, 0.7, 14).unwrap();
        let mut prev = 1.0;
        for i in 0..=10 {
            let tv = tr.tv_distance_at(i as f64 * 2.0).unwrap();
            assert!(tv <= prev + 1e-9, "TV not contracting at {i}");
            prev = tv;
        }
        let t = tr.relaxation_time(1e-3, 10_000.0).unwrap();
        assert!(tr.tv_distance_at(t).unwrap() <= 1e-3);
        assert!(tr.tv_distance_at(0.5 * t).unwrap() > 1e-3 * 0.5);
    }

    #[test]
    fn relaxation_grows_with_load() {
        let relax = |lam: f64| {
            TransientSqd::new(3, 2, lam, 12)
                .unwrap()
                .relaxation_time(1e-3, 100_000.0)
                .unwrap()
        };
        let fast = relax(0.5);
        let slow = relax(0.9);
        assert!(slow > 2.0 * fast, "{slow} vs {fast}");
    }

    #[test]
    fn stationary_matches_brute_force() {
        let (n, d, lam, cap) = (3usize, 2usize, 0.65f64, 16u32);
        let tr = TransientSqd::new(n, d, lam, cap).unwrap();
        let bf = crate::brute::BruteForce::solve(n, d, lam, cap).unwrap();
        assert!(
            (tr.stationary_mean_delay() - bf.mean_delay()).abs() < 1e-8,
            "{} vs {}",
            tr.stationary_mean_delay(),
            bf.mean_delay()
        );
    }

    #[test]
    fn mean_jobs_trajectory_monotone_from_empty() {
        // From an empty start of this monotone queueing network the mean
        // job count climbs toward its stationary value without
        // overshooting.
        let tr = TransientSqd::new(3, 2, 0.8, 12).unwrap();
        let stat = tr.stationary_mean_jobs();
        let mut prev = 0.0;
        for i in 1..=25 {
            let m = tr.mean_jobs_at(i as f64 * 1.5).unwrap();
            assert!(m >= prev - 1e-9, "dip at step {i}: {m} < {prev}");
            assert!(m <= stat + 1e-9, "overshoot at step {i}");
            prev = m;
        }
    }
}
