//! Transition rates of the SQ(d) model and its threshold-truncated bound
//! variants.
//!
//! For a state with tie groups `g = 1..G` (longest first), Section II-A of
//! the paper gives:
//!
//! * **Arrivals** — the dispatcher polls `d` of `N` servers uniformly
//!   without replacement; the job joins tie group `g` with probability
//!   `[C(e_g, d) − C(s_g − 1, d)] / C(N, d)` and is recorded at the
//!   group's *first* index.
//! * **Departures** — each busy server completes at rate µ = 1; a
//!   departure from group `g` (rate `c_g µ`) is recorded at the group's
//!   *last* index.
//!
//! The bound models ([`ModelVariant::Lower`], [`ModelVariant::Upper`])
//! live on `S_T` (`m1 − mN ≤ T`). Exactly two transition families can
//! exit `S_T`, both only when `m1 − mN = T`; they are redirected as
//! derived in DESIGN.md §3 (the extremal redirects under the paper's
//! precedence order, Eq. 5):
//!
//! | violating transition | Lower model | Upper model |
//! |---|---|---|
//! | arrival to the top group | join the *second-highest* level | join the top **and** add one job to every bottom-level server |
//! | departure from the bottom group | depart from the *second-lowest* level instead | blocked |
//!
//! Lower-model redirects target ⪯-smaller (more balanced) states, upper-
//! model redirects ⪰-larger ones; `precedence::verify_redirects` checks
//! this for every enumerated state.

use crate::combinatorics::{group_arrival_probability, group_arrival_probability_with_replacement};
use crate::State;

/// Service rate of each server (the paper's unit-mean convention).
pub const MU: f64 = 1.0;

/// How the dispatcher samples the `d` polled servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollMode {
    /// `d` distinct servers, uniformly (the paper's model; requires
    /// `d ≤ N`).
    #[default]
    WithoutReplacement,
    /// `d` independent uniform draws, duplicates allowed (Mitzenmacher's
    /// original supermarket model; any `d ≥ 1`). Slightly weaker load
    /// balancing at small `N`; identical as `N → ∞`.
    WithReplacement,
}

/// Which transition structure to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// The exact SQ(d) chain on the full (untruncated) state space.
    Base,
    /// Lower-bound model on `S_T`: threshold-violating transitions are
    /// redirected to more preferable states (jockeying flavour).
    Lower {
        /// Imbalance threshold `T ≥ 1`.
        threshold: u32,
    },
    /// Upper-bound model on `S_T`: violating departures are blocked and
    /// violating arrivals amplified, reducing effective capacity.
    Upper {
        /// Imbalance threshold `T ≥ 1`.
        threshold: u32,
    },
}

impl ModelVariant {
    fn threshold(&self) -> Option<u32> {
        match self {
            ModelVariant::Base => None,
            ModelVariant::Lower { threshold } | ModelVariant::Upper { threshold } => {
                Some(*threshold)
            }
        }
    }
}

/// A single outgoing transition: target state and rate.
///
/// The list returned by [`transitions`] may contain several entries with
/// the same target (a redirect can coincide with a natural transition);
/// consumers accumulate rates additively.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Destination state (sorted).
    pub target: State,
    /// Transition rate (> 0).
    pub rate: f64,
}

/// Generates all outgoing transitions of `state` under SQ(d) with `d`
/// choices, arrival rate `λN` (`lambda` per server), unit service rate,
/// and the given model variant.
///
/// # Panics
///
/// Panics if `d` is not in `1..=state.n()`, if `lambda` is not positive
/// and finite, or (for bound variants) if the state violates `S_T`.
///
/// # Example
///
/// ```
/// use slb_core::{transitions, ModelVariant, State};
///
/// let m = State::new(vec![2, 1, 0]).unwrap();
/// let ts = transitions(&m, 2, 0.5, ModelVariant::Base);
/// // Total arrival rate λN = 1.5 plus two busy servers departing.
/// let total: f64 = ts.iter().map(|t| t.rate).sum();
/// assert!((total - (1.5 + 2.0)).abs() < 1e-12);
/// ```
pub fn transitions(state: &State, d: usize, lambda: f64, variant: ModelVariant) -> Vec<Transition> {
    transitions_with_mode(state, d, lambda, variant, PollMode::WithoutReplacement)
}

/// [`transitions`] generalized over the polling mode.
///
/// # Panics
///
/// As [`transitions`]; additionally, `d > N` is allowed only with
/// [`PollMode::WithReplacement`].
pub fn transitions_with_mode(
    state: &State,
    d: usize,
    lambda: f64,
    variant: ModelVariant,
    mode: PollMode,
) -> Vec<Transition> {
    let n = state.n();
    match mode {
        PollMode::WithoutReplacement => assert!(
            (1..=n).contains(&d),
            "need 1 <= d <= N without replacement, got d = {d}, N = {n}"
        ),
        PollMode::WithReplacement => assert!(d >= 1, "need d >= 1, got {d}"),
    }
    assert!(
        lambda > 0.0 && lambda.is_finite(),
        "arrival rate must be positive and finite, got {lambda}"
    );
    if let Some(t) = variant.threshold() {
        assert!(t >= 1, "threshold must be at least 1");
        assert!(
            state.diff() <= t,
            "state {state} violates the threshold T = {t}"
        );
    }

    let groups = state.groups();
    let ng = groups.len();
    let diff = state.diff();
    let at_threshold = variant.threshold().is_some_and(|t| diff == t);
    let mut out = Vec::with_capacity(2 * ng + 1);

    // --- Arrivals -------------------------------------------------------
    let total_arrival = lambda * n as f64;
    for (gi, g) in groups.iter().enumerate() {
        let p = match mode {
            PollMode::WithoutReplacement => group_arrival_probability(n, d, g.start + 1, g.end + 1),
            PollMode::WithReplacement => {
                group_arrival_probability_with_replacement(n, d, g.start + 1, g.end + 1)
            }
        };
        if p <= 0.0 {
            continue;
        }
        let rate = total_arrival * p;
        // Only an arrival into the top group can push m1 − mN past T.
        let violates = at_threshold && gi == 0;
        let target = if !violates {
            state.with_arrival_at(g.start)
        } else {
            match variant {
                ModelVariant::Base => unreachable!("Base has no threshold"),
                ModelVariant::Lower { .. } => {
                    // Join the second-highest level instead (the largest
                    // admissible state preceding m + e1).
                    state.with_arrival_at(groups[1].start)
                }
                ModelVariant::Upper { .. } => {
                    // Join the top and raise every bottom-level server:
                    // the least admissible state dominating m + e1.
                    let bottom = groups[ng - 1];
                    let mut v = state.as_slice().to_vec();
                    v[0] += 1;
                    for x in &mut v[bottom.start..=bottom.end] {
                        *x += 1;
                    }
                    State::new(v).expect("upper redirect stays sorted")
                }
            }
        };
        out.push(Transition { target, rate });
    }

    // --- Departures ------------------------------------------------------
    for (gi, g) in groups.iter().enumerate() {
        if g.level == 0 {
            continue; // idle servers (only possibly the bottom group)
        }
        let rate = g.len() as f64 * MU;
        // Only a departure from the bottom group can push m1 − mN past T.
        let is_bottom = gi == ng - 1;
        let violates = at_threshold && is_bottom;
        let target = if !violates {
            state.with_departure_at(g.end)
        } else {
            match variant {
                ModelVariant::Base => unreachable!("Base has no threshold"),
                ModelVariant::Lower { .. } => {
                    // Serve the second-lowest level instead (threshold
                    // jockeying): the largest admissible state preceding
                    // m − eN.
                    state.with_departure_at(groups[ng - 2].end)
                }
                ModelVariant::Upper { .. } => continue, // blocked
            }
        };
        out.push(Transition { target, rate });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> State {
        State::new(v.to_vec()).unwrap()
    }

    fn rate_to(ts: &[Transition], target: &State) -> f64 {
        ts.iter()
            .filter(|t| &t.target == target)
            .map(|t| t.rate)
            .sum()
    }

    #[test]
    fn base_rates_distinct_lengths() {
        // Paper Section II-A, distinct case: λ(m, m+e_i) =
        // C(i−1, d−1)/C(N, d) · λN for i ≥ d.
        let m = s(&[3, 2, 1, 0]);
        let (n, d, lam) = (4, 2, 0.5);
        let ts = transitions(&m, d, lam, ModelVariant::Base);
        let lam_n = lam * n as f64;
        // i = 1 (position 0): C(0,1)/C(4,2) = 0.
        assert_eq!(rate_to(&ts, &s(&[4, 2, 1, 0])), 0.0);
        // i = 2: C(1,1)/6 = 1/6.
        assert!((rate_to(&ts, &s(&[3, 3, 1, 0])) - lam_n / 6.0).abs() < 1e-12);
        // i = 3: C(2,1)/6 = 2/6.
        assert!((rate_to(&ts, &s(&[3, 2, 2, 0])) - lam_n * 2.0 / 6.0).abs() < 1e-12);
        // i = 4: C(3,1)/6 = 3/6.
        assert!((rate_to(&ts, &s(&[3, 2, 1, 1])) - lam_n * 3.0 / 6.0).abs() < 1e-12);
        // Departures: each busy server at rate 1, recorded per group.
        assert!((rate_to(&ts, &s(&[2, 2, 1, 0])) - 1.0).abs() < 1e-12);
        assert!((rate_to(&ts, &s(&[3, 1, 1, 0])) - 1.0).abs() < 1e-12);
        assert!((rate_to(&ts, &s(&[3, 2, 0, 0])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn base_rates_tied_lengths() {
        // Paper's tied case: group rate [C(i+j, d) − C(i−1, d)]/C(N, d)·λN,
        // recorded at the group's first index; departures at the last.
        let m = s(&[2, 1, 1]);
        let (n, d, lam) = (3, 2, 0.6);
        let lam_n = lam * n as f64;
        let ts = transitions(&m, d, lam, ModelVariant::Base);
        // Arrival to the level-1 group (positions 2..3, 1-based):
        // [C(3,2) − C(1,2)]/C(3,2) = 3/3 = 1 → target (2,2,1).
        assert!((rate_to(&ts, &s(&[2, 2, 1])) - lam_n).abs() < 1e-12);
        // Arrival to the top group: zero (needs both polls on one server).
        assert_eq!(rate_to(&ts, &s(&[3, 1, 1])), 0.0);
        // Departures: group conventions — from level-1 group at its last
        // index → (2,1,0); from top group → (1,1,1).
        assert!((rate_to(&ts, &s(&[2, 1, 0])) - 2.0).abs() < 1e-12);
        assert!((rate_to(&ts, &s(&[1, 1, 1])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_outflow_conservation() {
        // Arrival probabilities sum to 1, so total arrival outflow is λN;
        // departures contribute one per busy server.
        for v in [&[3u32, 2, 1, 0][..], &[2, 2, 2, 2], &[5, 5, 0, 0]] {
            let m = s(v);
            let ts = transitions(&m, 2, 0.7, ModelVariant::Base);
            let total: f64 = ts.iter().map(|t| t.rate).sum();
            let expect = 0.7 * 4.0 + m.busy() as f64;
            assert!((total - expect).abs() < 1e-12, "state {m}");
        }
    }

    #[test]
    fn lower_redirect_arrival_to_second_level() {
        // (2,2,0), T=2: arrival to the top group would reach diff 3.
        let m = s(&[2, 2, 0]);
        let ts = transitions(&m, 2, 0.5, ModelVariant::Lower { threshold: 2 });
        // Natural target (3,2,0) must not appear.
        assert_eq!(rate_to(&ts, &s(&[3, 2, 0])), 0.0);
        // Redirect: join second level (level 0) → (2,2,1); this is also the
        // natural target of the bottom-group arrival, so rates accumulate:
        // top-group poll prob 1/3 + bottom prob 2/3 = 1 → rate λN.
        assert!((rate_to(&ts, &s(&[2, 2, 1])) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lower_redirect_departure_jockeys() {
        // (3,1,1), T=2: departure from the bottom group would reach diff 3;
        // lower model serves the second-lowest level (the 3) instead.
        let m = s(&[3, 1, 1]);
        let ts = transitions(&m, 2, 0.5, ModelVariant::Lower { threshold: 2 });
        assert_eq!(rate_to(&ts, &s(&[3, 1, 0])), 0.0);
        // Natural top departure rate 1 + redirected bottom rate 2.
        assert!((rate_to(&ts, &s(&[2, 1, 1])) - 3.0).abs() < 1e-12);
        // Lower model never loses capacity.
        let total: f64 = ts.iter().map(|t| t.rate).sum();
        assert!((total - (0.5 * 3.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn upper_redirect_arrival_amplifies() {
        // (2,2,0), T=2: upper model sends the top arrival to
        // (3,2,1) — top + every bottom-level server.
        let m = s(&[2, 2, 0]);
        let ts = transitions(&m, 2, 0.5, ModelVariant::Upper { threshold: 2 });
        assert_eq!(rate_to(&ts, &s(&[3, 2, 0])), 0.0);
        assert!((rate_to(&ts, &s(&[3, 2, 1])) - 0.5).abs() < 1e-12);
        // The non-violating bottom arrival is untouched.
        assert!((rate_to(&ts, &s(&[2, 2, 1])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upper_blocks_bottom_departure() {
        // (3,1,1), T=2: bottom-group departures (rate 2) are blocked.
        let m = s(&[3, 1, 1]);
        let ts = transitions(&m, 2, 0.5, ModelVariant::Upper { threshold: 2 });
        assert_eq!(rate_to(&ts, &s(&[3, 1, 0])), 0.0);
        // Only the top departure remains.
        let dep_total: f64 = ts
            .iter()
            .filter(|t| t.target.total() < m.total())
            .map(|t| t.rate)
            .sum();
        assert!((dep_total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_transitions_stay_in_threshold_set() {
        // Exhaustive closure check over a slice of S_T.
        let t = 2u32;
        for variant in [
            ModelVariant::Lower { threshold: t },
            ModelVariant::Upper { threshold: t },
        ] {
            for v in [
                &[0u32, 0, 0][..],
                &[1, 0, 0],
                &[2, 0, 0],
                &[2, 2, 0],
                &[2, 1, 1],
                &[3, 1, 1],
                &[3, 3, 1],
                &[4, 2, 2],
                &[2, 2, 2],
            ] {
                let m = s(v);
                for tr in transitions(&m, 2, 0.9, variant) {
                    assert!(
                        tr.target.diff() <= t,
                        "{variant:?}: {m} -> {} leaves S_T",
                        tr.target
                    );
                }
            }
        }
    }

    #[test]
    fn no_violation_below_threshold() {
        // At diff < T the bound models coincide with the base model.
        let m = s(&[2, 1, 1]);
        let base = transitions(&m, 2, 0.5, ModelVariant::Base);
        let low = transitions(&m, 2, 0.5, ModelVariant::Lower { threshold: 2 });
        let up = transitions(&m, 2, 0.5, ModelVariant::Upper { threshold: 2 });
        assert_eq!(base, low);
        assert_eq!(base, up);
    }

    #[test]
    fn jsq_special_case_routes_to_shortest() {
        // d = N: every arrival goes to the bottom group.
        let m = s(&[3, 2, 1]);
        let ts = transitions(&m, 3, 0.5, ModelVariant::Base);
        assert!((rate_to(&ts, &s(&[3, 2, 2])) - 1.5).abs() < 1e-12);
        assert_eq!(rate_to(&ts, &s(&[4, 2, 1])), 0.0);
        assert_eq!(rate_to(&ts, &s(&[3, 3, 1])), 0.0);
    }

    #[test]
    fn d1_uniform_routing() {
        // d = 1: each group receives λN · (group size / N).
        let m = s(&[3, 2, 1]);
        let ts = transitions(&m, 1, 0.9, ModelVariant::Base);
        for (target, frac) in [
            (s(&[4, 2, 1]), 1.0 / 3.0),
            (s(&[3, 3, 1]), 1.0 / 3.0),
            (s(&[3, 2, 2]), 1.0 / 3.0),
        ] {
            assert!((rate_to(&ts, &target) - 0.9 * 3.0 * frac).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "violates the threshold")]
    fn bound_variant_rejects_out_of_set_state() {
        let m = s(&[5, 0, 0]);
        let _ = transitions(&m, 2, 0.5, ModelVariant::Lower { threshold: 2 });
    }

    #[test]
    fn with_replacement_outflow_conserved() {
        let m = s(&[3, 2, 1, 0]);
        let ts = transitions_with_mode(&m, 2, 0.7, ModelVariant::Base, PollMode::WithReplacement);
        let total: f64 = ts.iter().map(|t| t.rate).sum();
        assert!((total - (0.7 * 4.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn with_replacement_rates_hand_computed() {
        // N = 2, d = 2 with replacement on (1, 0): position 2 receives
        // the job unless both polls hit position 1: 1 − (1/2)² = 3/4.
        let m = s(&[1, 0]);
        let ts = transitions_with_mode(&m, 2, 0.5, ModelVariant::Base, PollMode::WithReplacement);
        let lam_n = 0.5 * 2.0;
        assert!((rate_to(&ts, &s(&[1, 1])) - lam_n * 0.75).abs() < 1e-12);
        assert!((rate_to(&ts, &s(&[2, 0])) - lam_n * 0.25).abs() < 1e-12);
    }

    #[test]
    fn with_replacement_allows_d_beyond_n() {
        let m = s(&[2, 1]);
        let ts = transitions_with_mode(&m, 5, 0.5, ModelVariant::Base, PollMode::WithReplacement);
        // d = 5 polls on 2 servers: shortest wins with prob 1 − (1/2)⁵.
        let lam_n = 0.5 * 2.0;
        let p_short = 1.0 - 0.5f64.powi(5);
        assert!((rate_to(&ts, &s(&[2, 2])) - lam_n * p_short).abs() < 1e-12);
    }

    #[test]
    fn with_replacement_bound_models_closed() {
        for variant in [
            ModelVariant::Lower { threshold: 2 },
            ModelVariant::Upper { threshold: 2 },
        ] {
            for v in [&[2u32, 2, 0][..], &[3, 1, 1], &[2, 1, 1], &[4, 2, 2]] {
                let m = s(v);
                for tr in transitions_with_mode(&m, 3, 0.9, variant, PollMode::WithReplacement) {
                    assert!(tr.target.diff() <= 2, "{m} -> {}", tr.target);
                }
            }
        }
    }
}
