//! The exact-but-asymptotic mean-delay formula (Eq. 16 of the paper).
//!
//! In the `N → ∞` mean-field limit (Mitzenmacher; Vvedenskaya et al.),
//! the fraction of queues holding at least `i` jobs is
//! `s_i = λ^{(dⁱ−1)/(d−1)}` and the mean sojourn time of a job is
//!
//! ```text
//! E[Delay] = Σ_{i≥1} λ^{(dⁱ − d)/(d − 1)} ,
//! ```
//!
//! independent of `N`. The paper's Figure 9 quantifies how misleading this
//! `N`-independence is at small `N` and high utilization; the functions
//! here regenerate the formula side of that comparison.

/// Terms of Eq. 16 are added until they drop below this threshold; the
/// doubly-exponential exponent makes the tail vanish almost immediately.
const TERM_EPS: f64 = 1e-15;

/// Mean sojourn time (delay including service) of SQ(d) in the asymptotic
/// regime, Eq. 16: `Σ_{i≥1} λ^{(dⁱ−d)/(d−1)}`, which is `1/(1−λ)` when
/// `d = 1`.
///
/// # Panics
///
/// Panics unless `0 ≤ lambda < 1` and `d ≥ 1`.
///
/// # Example
///
/// ```
/// use slb_core::asymptotic::mean_delay;
///
/// // Power of two: at λ = 0.99 the improvement over random is enormous.
/// let d1 = mean_delay(0.99, 1);
/// let d2 = mean_delay(0.99, 2);
/// assert!(d1 > 90.0 && d2 < 7.0);
/// ```
pub fn mean_delay(lambda: f64, d: usize) -> f64 {
    assert!(
        (0.0..1.0).contains(&lambda),
        "need 0 <= lambda < 1, got {lambda}"
    );
    assert!(d >= 1, "need d >= 1");
    if lambda == 0.0 {
        return 1.0;
    }
    if d == 1 {
        return 1.0 / (1.0 - lambda);
    }
    let mut sum = 0.0;
    // exponent(i) = (d^i − d)/(d−1) = d·(d^{i−1} − 1)/(d−1); computed
    // iteratively to avoid overflowing d^i for large i (the loop exits
    // long before).
    let mut exponent = 0.0_f64; // i = 1 term: λ⁰ = 1
    let mut d_pow = 1.0_f64; // d^{i−1}
    loop {
        let term = lambda.powf(exponent);
        sum += term;
        if term < TERM_EPS {
            break;
        }
        // exponent_{i+1} − exponent_i = d^i  (telescoping of the
        // geometric numerator).
        d_pow *= d as f64;
        exponent += d_pow;
        if !exponent.is_finite() {
            break;
        }
    }
    sum
}

/// Asymptotic fraction of queues with at least `i` jobs:
/// `s_i = λ^{(dⁱ−1)/(d−1)}` (the fixed point of the mean-field ODE).
///
/// # Panics
///
/// Panics unless `0 ≤ lambda < 1` and `d ≥ 1`.
pub fn tail_fraction(lambda: f64, d: usize, i: u32) -> f64 {
    assert!(
        (0.0..1.0).contains(&lambda),
        "need 0 <= lambda < 1, got {lambda}"
    );
    assert!(d >= 1, "need d >= 1");
    if i == 0 {
        return 1.0;
    }
    if lambda == 0.0 {
        return 0.0;
    }
    let exponent = if d == 1 {
        i as f64
    } else {
        // (d^i − 1)/(d − 1), computed in logs-free iterative form.
        let mut e = 0.0;
        let mut p = 1.0;
        for _ in 0..i {
            e += p;
            p *= d as f64;
            if e > 1e6 {
                break; // λ^{huge} underflows to 0 anyway
            }
        }
        e
    };
    lambda.powf(exponent)
}

/// Asymptotic mean number of jobs per queue: `Σ_{i≥1} s_i`. By Little's
/// law, `mean_delay = mean_jobs_per_queue / λ`.
///
/// # Panics
///
/// Panics unless `0 ≤ lambda < 1` and `d ≥ 1`.
pub fn mean_jobs_per_queue(lambda: f64, d: usize) -> f64 {
    assert!(
        (0.0..1.0).contains(&lambda),
        "need 0 <= lambda < 1, got {lambda}"
    );
    let mut sum = 0.0;
    for i in 1..10_000u32 {
        let s = tail_fraction(lambda, d, i);
        sum += s;
        if s < TERM_EPS {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_is_mm1() {
        for &l in &[0.1, 0.5, 0.9, 0.99] {
            assert!((mean_delay(l, 1) - 1.0 / (1.0 - l)).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_load_is_pure_service() {
        assert_eq!(mean_delay(0.0, 2), 1.0);
        assert_eq!(mean_delay(0.0, 1), 1.0);
    }

    #[test]
    fn d2_hand_series() {
        // d = 2: exponents (2^i − 2)/1 = 0, 2, 6, 14, 30, …
        let l = 0.8_f64;
        let expect =
            1.0 + l.powi(2) + l.powi(6) + l.powi(14) + l.powi(30) + l.powi(62) + l.powi(126);
        assert!((mean_delay(l, 2) - expect).abs() < 1e-9);
    }

    #[test]
    fn power_of_two_improvement_is_doubly_exponential() {
        // Known closed-form comparison at high load: delay(d=2) ≪ delay(d=1).
        let l = 0.99;
        assert!(mean_delay(l, 1) / mean_delay(l, 2) > 10.0);
        // And d is monotone: more choices, less delay.
        assert!(mean_delay(l, 2) > mean_delay(l, 5));
        assert!(mean_delay(l, 5) > mean_delay(l, 10));
    }

    #[test]
    fn tail_fractions_consistent_with_delay() {
        // E[Delay] = Σ_{i≥0} s_i (per-queue jobs / λ = sojourn by Little):
        // mean_jobs_per_queue = Σ_{i≥1} s_i and s_i = λ^{(dⁱ−1)/(d−1)},
        // so Σ_{i≥1} λ^{(dⁱ−d)/(d−1)} = Σ_{i≥1} s_i / λ.
        for &(l, d) in &[(0.7, 2usize), (0.9, 3), (0.95, 5)] {
            let delay = mean_delay(l, d);
            let jobs = mean_jobs_per_queue(l, d);
            assert!(
                (delay - jobs / l).abs() < 1e-9,
                "λ={l}, d={d}: {delay} vs {}",
                jobs / l
            );
        }
    }

    #[test]
    fn tail_fraction_boundary_cases() {
        assert_eq!(tail_fraction(0.5, 2, 0), 1.0);
        assert_eq!(tail_fraction(0.0, 2, 3), 0.0);
        assert!((tail_fraction(0.5, 2, 1) - 0.5).abs() < 1e-15);
        // s_2 = λ^{(4−1)/1} = λ³ for d = 2.
        assert!((tail_fraction(0.5, 2, 2) - 0.125).abs() < 1e-15);
    }

    #[test]
    fn delay_increases_with_load() {
        for d in [1usize, 2, 5] {
            let mut prev = 0.0;
            for l in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
                let v = mean_delay(l, d);
                assert!(v > prev, "not monotone at λ={l}, d={d}");
                prev = v;
            }
        }
    }
}
