//! Enumeration and indexing of the threshold-truncated state space.
//!
//! The bound models live on
//! `S_T = { m : m1 ≥ … ≥ mN ≥ 0, m1 − mN ≤ T }`, partitioned (Eq. 8 of the
//! paper) into the boundary block
//! `B_≤(N−1)T = { m ∈ S_T : #m ≤ (N−1)T }` — which contains every state
//! with an idle server — and repeating blocks
//! `B_q = { m : (N−1)T + qN < #m ≤ (N−1)T + (q+1)N }`, each containing
//! exactly `C(N+T−1, T)` states, one per *shape* `m − mN·1`.
//!
//! The level-shift bijection `m ↔ m + 1` maps `B_q` onto `B_{q+1}`
//! index-for-index because states are ordered by `(total, lex)` within
//! each block.

use std::collections::HashMap;

use crate::combinatorics::binomial;
use crate::{CoreError, Result, State};

/// An ordered, indexed set of states with O(1) lookup.
#[derive(Debug, Clone)]
pub struct StateIndex {
    states: Vec<State>,
    map: HashMap<State, usize>,
}

impl StateIndex {
    /// Builds an index from a list of states, sorting them canonically by
    /// `(total jobs, lexicographic)` — the paper's intra-block order.
    ///
    /// # Panics
    ///
    /// Panics if the input contains duplicate states.
    pub fn new(mut states: Vec<State>) -> Self {
        states.sort_by(|a, b| a.total().cmp(&b.total()).then(a.cmp(b)));
        let mut map = HashMap::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            let prev = map.insert(s.clone(), i);
            assert!(prev.is_none(), "duplicate state {s} in index");
        }
        StateIndex { states, map }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Index of `state`, if present.
    pub fn get(&self, state: &State) -> Option<usize> {
        self.map.get(state).copied()
    }

    /// State at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> &State {
        &self.states[i]
    }

    /// Iterates over `(index, state)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &State)> {
        self.states.iter().enumerate()
    }
}

/// Location of a state within the block partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockLocation {
    /// In the boundary block, at this index.
    Boundary(usize),
    /// In repeating block `q`, at this within-block index.
    Level {
        /// Repeating-block number (0-based).
        q: usize,
        /// Index within the block.
        index: usize,
    },
}

/// The block-partitioned, threshold-truncated state space for given
/// `(N, T)`.
///
/// # Example
///
/// ```
/// use slb_core::BlockSpace;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let space = BlockSpace::new(3, 2)?;
/// // Paper: each repeating block holds C(N+T−1, T) = C(4, 2) = 6 states.
/// assert_eq!(space.block_len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockSpace {
    n: usize,
    t: u32,
    boundary: StateIndex,
    block0: StateIndex,
}

impl BlockSpace {
    /// Enumerates the boundary block and the template repeating block for
    /// `n` servers and threshold `t`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if `n < 2` or `t < 1`.
    pub fn new(n: usize, t: u32) -> Result<Self> {
        if n < 2 {
            return Err(CoreError::InvalidParameters {
                reason: format!("need at least 2 servers for the bound models, got {n}"),
            });
        }
        if t < 1 {
            return Err(CoreError::InvalidParameters {
                reason: "threshold T must be at least 1".into(),
            });
        }
        let boundary_cap = (n as u32 - 1) * t;

        let shapes = enumerate_shapes(n, t);

        let mut boundary = Vec::new();
        let mut block0 = Vec::new();
        for shape in &shapes {
            let sigma = shape.total();
            // Boundary: bases 0..=⌊(cap − σ)/N⌋.
            let mut base = 0u32;
            while sigma + base * n as u32 <= boundary_cap {
                boundary.push(add_base(shape, base));
                base += 1;
            }
            // Block 0: the unique total in (cap, cap + N] congruent to σ.
            // total = σ + b·N with b minimal such that total > cap.
            let b = (boundary_cap - sigma) / n as u32 + 1;
            let total = sigma + b * n as u32;
            debug_assert!(total > boundary_cap && total <= boundary_cap + n as u32);
            block0.push(add_base(shape, b));
        }

        let space = BlockSpace {
            n,
            t,
            boundary: StateIndex::new(boundary),
            block0: StateIndex::new(block0),
        };
        debug_assert_eq!(
            space.block_len() as f64,
            binomial(n - 1 + t as usize, t as usize)
        );
        Ok(space)
    }

    /// Number of servers `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Threshold `T`.
    pub fn threshold(&self) -> u32 {
        self.t
    }

    /// Highest total-job count of the boundary block, `(N−1)·T`.
    pub fn boundary_cap(&self) -> u32 {
        (self.n as u32 - 1) * self.t
    }

    /// The boundary block.
    pub fn boundary(&self) -> &StateIndex {
        &self.boundary
    }

    /// The template repeating block `B_0`.
    pub fn block0(&self) -> &StateIndex {
        &self.block0
    }

    /// Number of states per repeating block, `C(N+T−1, T)`.
    pub fn block_len(&self) -> usize {
        self.block0.len()
    }

    /// Locates a state of `S_T` within the partition.
    ///
    /// Returns `None` if the state lies outside `S_T` (wrong imbalance) or
    /// has the wrong dimension.
    pub fn locate(&self, state: &State) -> Option<BlockLocation> {
        if state.n() != self.n || state.diff() > self.t {
            return None;
        }
        let total = state.total();
        if total <= self.boundary_cap() {
            return self.boundary.get(state).map(BlockLocation::Boundary);
        }
        let q = ((total - self.boundary_cap() - 1) / self.n as u32) as usize;
        // Reduce by q levels to land in block 0.
        let mut reduced = state.clone();
        for _ in 0..q {
            reduced = reduced.minus_one()?;
        }
        self.block0
            .get(&reduced)
            .map(|index| BlockLocation::Level { q, index })
    }

    /// The state at `(block q, index)`: the template state shifted up `q`
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn level_state(&self, q: usize, index: usize) -> State {
        let mut s = self.block0.state(index).clone();
        for _ in 0..q {
            s = s.plus_one();
        }
        s
    }
}

/// All shapes for `(n, t)`: non-increasing vectors of length `n` with
/// minimum exactly 0 and maximum at most `t`.
fn enumerate_shapes(n: usize, t: u32) -> Vec<State> {
    let mut out = Vec::new();
    let mut current = vec![0u32; n];
    // Recursive descent over non-increasing sequences bounded by t; the
    // last component is pinned to 0 (shape minimum is 0 by definition).
    fn rec(current: &mut Vec<u32>, pos: usize, max: u32, out: &mut Vec<State>) {
        let n = current.len();
        if pos == n - 1 {
            current[pos] = 0;
            out.push(State::new(current.clone()).expect("shape is sorted"));
            return;
        }
        for v in (0..=max).rev() {
            current[pos] = v;
            rec(current, pos + 1, v, out);
        }
    }
    rec(&mut current, 0, t, &mut out);
    out
}

/// `shape + base·1`.
fn add_base(shape: &State, base: u32) -> State {
    State::new(shape.as_slice().iter().map(|&x| x + base).collect())
        .expect("adding a constant preserves sortedness")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_matches_paper_formula() {
        // Paper: block size C(N+T−1, T).
        for &(n, t) in &[(3usize, 2u32), (3, 3), (6, 3), (4, 2), (5, 1), (12, 3)] {
            let space = BlockSpace::new(n, t).unwrap();
            let expect = binomial(n - 1 + t as usize, t as usize) as usize;
            assert_eq!(space.block_len(), expect, "N={n}, T={t}");
        }
    }

    #[test]
    fn boundary_contains_every_idle_state() {
        let space = BlockSpace::new(3, 2).unwrap();
        for (_, s) in space.boundary().iter() {
            assert!(s.total() <= space.boundary_cap());
            assert!(s.diff() <= 2);
        }
        // Every state with an idle server has total ≤ (N−1)T.
        let full = State::new(vec![2, 2, 0]).unwrap();
        assert!(matches!(
            space.locate(&full),
            Some(BlockLocation::Boundary(_))
        ));
        // The extreme boundary state (T, …, T, 0).
        let extreme = State::new(vec![2, 2, 0]).unwrap();
        assert_eq!(extreme.total(), space.boundary_cap());
    }

    #[test]
    fn block0_states_have_all_servers_busy() {
        for &(n, t) in &[(3usize, 2u32), (4, 3), (6, 2)] {
            let space = BlockSpace::new(n, t).unwrap();
            for (_, s) in space.block0().iter() {
                assert!(s.level(n - 1) >= 1, "block-0 state {s} has idle server");
                assert!(s.total() > space.boundary_cap());
                assert!(s.total() <= space.boundary_cap() + n as u32);
            }
        }
    }

    #[test]
    fn shapes_are_unique_per_block() {
        let space = BlockSpace::new(4, 2).unwrap();
        let mut shapes: Vec<State> = space.block0().iter().map(|(_, s)| s.shape()).collect();
        shapes.sort();
        shapes.dedup();
        assert_eq!(shapes.len(), space.block_len());
    }

    #[test]
    fn locate_roundtrips() {
        let space = BlockSpace::new(3, 2).unwrap();
        // Every boundary state locates to itself.
        for (i, s) in space.boundary().iter() {
            assert_eq!(space.locate(s), Some(BlockLocation::Boundary(i)));
        }
        // Every block-q state locates to (q, index of template).
        for q in 0..4 {
            for (i, _) in space.block0().iter() {
                let s = space.level_state(q, i);
                assert_eq!(
                    space.locate(&s),
                    Some(BlockLocation::Level { q, index: i }),
                    "state {s} at level {q}"
                );
            }
        }
    }

    #[test]
    fn locate_rejects_outside_threshold() {
        let space = BlockSpace::new(3, 2).unwrap();
        let bad = State::new(vec![5, 1, 1]).unwrap(); // diff 4 > 2
        assert_eq!(space.locate(&bad), None);
        let wrong_n = State::new(vec![1, 1]).unwrap();
        assert_eq!(space.locate(&wrong_n), None);
    }

    #[test]
    fn level_shift_preserves_index_order() {
        // The m ↔ m+1 bijection must be index-preserving between blocks.
        let space = BlockSpace::new(4, 3).unwrap();
        let shifted: Vec<State> = space.block0().iter().map(|(_, s)| s.plus_one()).collect();
        let reindexed = StateIndex::new(shifted.clone());
        for (i, s) in space.block0().iter() {
            assert_eq!(reindexed.get(&s.plus_one()), Some(i));
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BlockSpace::new(1, 2).is_err());
        assert!(BlockSpace::new(3, 0).is_err());
    }

    #[test]
    fn n3_t2_explicit_block_contents() {
        // Hand-enumerated B0 for N=3, T=2: totals in (4, 7].
        let space = BlockSpace::new(3, 2).unwrap();
        let expect = [
            // total 5
            vec![3, 1, 1],
            vec![2, 2, 1],
            // total 6
            vec![2, 2, 2],
            vec![3, 2, 1],
            // total 7
            vec![3, 2, 2],
            vec![3, 3, 1],
        ];
        assert_eq!(space.block_len(), 6);
        for e in &expect {
            let s = State::new(e.clone()).unwrap();
            assert!(space.block0().get(&s).is_some(), "expected {s} in block 0");
        }
    }

    #[test]
    fn boundary_count_small_case() {
        // N=2, T=1: boundary = states with total ≤ 1, diff ≤ 1:
        // (0,0), (1,0). Block0: totals in (1, 3]: shapes (0,0)->(1,1)? and
        // (1,0)->(2,1): both diff ≤ 1 with min ≥ 1.
        let space = BlockSpace::new(2, 1).unwrap();
        assert_eq!(space.boundary().len(), 2);
        assert_eq!(space.block_len(), 2);
        assert!(space
            .block0()
            .get(&State::new(vec![1, 1]).unwrap())
            .is_some());
        assert!(space
            .block0()
            .get(&State::new(vec![2, 1]).unwrap())
            .is_some());
    }
}
