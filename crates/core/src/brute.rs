//! Brute-force ground truth: the exact SQ(d) chain, truncated at a queue
//! cap, solved as a sparse CTMC.
//!
//! The untransformed SQ(d) Markov process has the "irregular" generator
//! the paper says makes exact analysis intractable *at scale* — but for
//! small `N` it can simply be enumerated and solved. This module does
//! exactly that and serves as the oracle against which the lower/upper
//! bound models are validated: for every test configuration,
//! `lower ≤ brute force ≤ upper` must hold.
//!
//! Truncation: arrivals that would push a queue past `cap` are dropped.
//! With `cap` chosen so that `P(m1 ≥ cap)` is negligible (the stationary
//! tail decays at least geometrically with ratio λ), the bias is far below
//! the tolerances used in tests; [`BruteForce::truncation_mass`] exposes
//! the actual mass on the capped layer so callers can check.

use std::collections::HashMap;

use slb_linalg::CooBuilder;
use slb_markov::{generator_residual, stationary_jacobi_csr};

use crate::{transitions_with_mode, CoreError, ModelVariant, PollMode, Result, State};

/// Exact (truncated) SQ(d) solver for small systems.
///
/// # Example
///
/// ```
/// use slb_core::brute::BruteForce;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// // d = 1 decomposes into independent M/M/1 queues: E[Delay] = 1/(1−λ).
/// let bf = BruteForce::solve(2, 1, 0.5, 25)?;
/// assert!((bf.mean_delay() - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BruteForce {
    n: usize,
    d: usize,
    lambda: f64,
    mode: PollMode,
    states: Vec<State>,
    pi: Vec<f64>,
    index: HashMap<State, usize>,
    cap: u32,
}

impl BruteForce {
    /// Enumerates all sorted states with `m1 ≤ cap` and solves the SQ(d)
    /// chain restricted to them.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameters`] for `n == 0`, `d ∉ 1..=n`,
    ///   `λ ∉ (0, 1)` or `cap < 2`.
    /// * [`CoreError::Markov`] if the iterative stationary solve fails.
    pub fn solve(n: usize, d: usize, lambda: f64, cap: u32) -> Result<Self> {
        BruteForce::solve_with_mode(n, d, lambda, cap, PollMode::WithoutReplacement)
    }

    /// As [`BruteForce::solve`], with an explicit polling mode.
    ///
    /// # Errors
    ///
    /// As [`BruteForce::solve`].
    pub fn solve_with_mode(
        n: usize,
        d: usize,
        lambda: f64,
        cap: u32,
        mode: PollMode,
    ) -> Result<Self> {
        let d_ok = match mode {
            PollMode::WithoutReplacement => (1..=n).contains(&d),
            PollMode::WithReplacement => d >= 1,
        };
        if n == 0 || !d_ok {
            return Err(CoreError::InvalidParameters {
                reason: format!("need valid d for N = {n} under {mode:?}, got d = {d}"),
            });
        }
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(CoreError::InvalidParameters {
                reason: format!("need 0 < lambda < 1, got {lambda}"),
            });
        }
        if cap < 2 {
            return Err(CoreError::InvalidParameters {
                reason: "cap must be at least 2".into(),
            });
        }

        let states = enumerate_capped(n, cap);
        let index: HashMap<State, usize> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();

        // Assemble the truncated generator directly in the shared CSR
        // kernel: off-diagonal rates plus the matching -outflow diagonal.
        let to_core = |e: slb_linalg::LinalgError| CoreError::InvalidParameters {
            reason: format!("generator assembly failed: {e}"),
        };
        let mut coo = CooBuilder::new(states.len(), states.len());
        for (i, s) in states.iter().enumerate() {
            let mut outflow = 0.0;
            for tr in transitions_with_mode(s, d, lambda, ModelVariant::Base, mode) {
                if tr.target.level(0) > cap {
                    continue; // truncation: drop arrivals past the cap
                }
                let j = index[&tr.target];
                if j != i {
                    coo.add(i, j, tr.rate).map_err(to_core)?;
                    outflow += tr.rate;
                }
            }
            coo.add(i, i, -outflow).map_err(to_core)?;
        }
        let q = coo.build();
        let pi = stationary_jacobi_csr(&q, 1e-13, 2_000_000)?;
        debug_assert!(generator_residual(&q, &pi) < 1e-8, "stationary residual");

        Ok(BruteForce {
            n,
            d,
            lambda,
            mode,
            states,
            pi,
            index,
            cap,
        })
    }

    /// Number of enumerated states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Stationary probability of a state (0 if outside the truncation).
    pub fn prob(&self, state: &State) -> f64 {
        self.index.get(state).map_or(0.0, |&i| self.pi[i])
    }

    /// Mean number of jobs in the system.
    pub fn mean_jobs(&self) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .map(|(s, &p)| p * f64::from(s.total()))
            .sum()
    }

    /// Mean number of *waiting* jobs.
    pub fn mean_waiting(&self) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .map(|(s, &p)| p * f64::from(s.waiting()))
            .sum()
    }

    /// Mean sojourn time (delay including service) via Little's law,
    /// `E[T] = E[L] / (λN)`.
    pub fn mean_delay(&self) -> f64 {
        self.mean_jobs() / (self.lambda * self.n as f64)
    }

    /// Stationary probability mass on states with `m1 = cap` — an upper
    /// proxy for the truncation bias. Keep this below ~1e-10 by raising
    /// `cap` when using the result as an oracle.
    pub fn truncation_mass(&self) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .filter(|(s, _)| s.level(0) == self.cap)
            .map(|(_, &p)| p)
            .sum()
    }

    /// Stationary fraction of servers holding at least `k` jobs, for
    /// `k = 0..=k_max` — the finite-`N` analogue of the asymptotic tail
    /// fractions `s_k = λ^{(dᵏ−1)/(d−1)}`.
    pub fn queue_tail_fractions(&self, k_max: u32) -> Vec<f64> {
        let mut tails = vec![0.0; k_max as usize + 1];
        for (s, &p) in self.states.iter().zip(&self.pi) {
            for (k, t) in tails.iter_mut().enumerate() {
                let frac =
                    s.as_slice().iter().filter(|&&x| x >= k as u32).count() as f64 / self.n as f64;
                *t += p * frac;
            }
        }
        tails
    }

    /// The exact sojourn-time distribution of the (truncated) SQ(d)
    /// chain: by PASTA the tagged arrival sees `π`, joins a server with
    /// `k` jobs with the SQ(d) polling probability, and then experiences
    /// an `Erlang(k+1, 1)` sojourn (see [`crate::delay_dist`]).
    ///
    /// # Errors
    ///
    /// Propagates weight validation failures (possible only if the
    /// truncation mass is large enough to distort the mixture).
    pub fn delay_distribution(&self) -> Result<crate::DelayDistribution> {
        use crate::delay_dist::arrival_level_weights;

        let mut weights: Vec<f64> = Vec::new();
        for (s, &p) in self.states.iter().zip(&self.pi) {
            if p <= 0.0 {
                continue;
            }
            for (level, prob) in arrival_level_weights(s, self.d, ModelVariant::Base, self.mode) {
                let k = level as usize;
                if weights.len() <= k {
                    weights.resize(k + 1, 0.0);
                }
                weights[k] += p * prob;
            }
        }
        crate::DelayDistribution::from_weights(weights)
    }

    /// Marginal distribution of the imbalance `m1 − mN`.
    pub fn imbalance_pmf(&self) -> Vec<f64> {
        let mut pmf = vec![0.0; self.cap as usize + 1];
        for (s, &p) in self.states.iter().zip(&self.pi) {
            pmf[s.diff() as usize] += p;
        }
        pmf
    }
}

/// All sorted states on `n` servers with `m1 ≤ cap`.
fn enumerate_capped(n: usize, cap: u32) -> Vec<State> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; n];
    fn rec(cur: &mut Vec<u32>, pos: usize, max: u32, out: &mut Vec<State>) {
        if pos == cur.len() {
            out.push(State::new(cur.clone()).expect("sorted by construction"));
            return;
        }
        for v in (0..=max).rev() {
            cur[pos] = v;
            rec(cur, pos + 1, v, out);
        }
    }
    rec(&mut cur, 0, cap, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_counts_multisets() {
        // Sorted vectors of length n with entries ≤ cap: C(n+cap, n).
        let states = enumerate_capped(3, 4);
        assert_eq!(states.len(), 35); // C(7, 3)
        let states = enumerate_capped(2, 3);
        assert_eq!(states.len(), 10); // C(5, 2)
    }

    #[test]
    fn d1_matches_mm1() {
        // SQ(1) = independent M/M/1 queues; delay is 1/(1−λ) regardless
        // of N.
        let bf = BruteForce::solve(3, 1, 0.4, 30).unwrap();
        assert!(bf.truncation_mass() < 1e-10);
        assert!(
            (bf.mean_delay() - 1.0 / 0.6).abs() < 1e-6,
            "delay {}",
            bf.mean_delay()
        );
    }

    #[test]
    fn d2_beats_d1_and_loses_to_jsq() {
        let (n, lam, cap) = (3, 0.7, 25);
        let d1 = BruteForce::solve(n, 1, lam, cap).unwrap().mean_delay();
        let d2 = BruteForce::solve(n, 2, lam, cap).unwrap().mean_delay();
        let d3 = BruteForce::solve(n, 3, lam, cap).unwrap().mean_delay();
        assert!(d1 > d2 && d2 > d3, "{d1} > {d2} > {d3} violated");
    }

    #[test]
    fn jsq_keeps_queues_balanced() {
        let bf = BruteForce::solve(3, 3, 0.8, 25).unwrap();
        let pmf = bf.imbalance_pmf();
        // JSQ concentrates imbalance on {0, 1} far more than random
        // (measured: ≈ 0.77 at λ = 0.8 vs ≈ 0.5 for d = 1).
        assert!(pmf[0] + pmf[1] > 0.7, "pmf {pmf:?}");
        let rand = BruteForce::solve(3, 1, 0.8, 25).unwrap();
        let rand_pmf = rand.imbalance_pmf();
        assert!(rand_pmf[0] + rand_pmf[1] < pmf[0] + pmf[1]);
    }

    #[test]
    fn invalid_parameters() {
        assert!(BruteForce::solve(0, 1, 0.5, 10).is_err());
        assert!(BruteForce::solve(3, 4, 0.5, 10).is_err());
        assert!(BruteForce::solve(3, 2, 1.0, 10).is_err());
        assert!(BruteForce::solve(3, 2, 0.5, 1).is_err());
        // d > N is fine with replacement.
        assert!(BruteForce::solve_with_mode(3, 4, 0.5, 10, PollMode::WithReplacement).is_ok());
    }

    #[test]
    fn replacement_slightly_worse_at_small_n() {
        // Wasted duplicate polls make with-replacement SQ(2) strictly
        // worse than without at N = 3 (the gap vanishes as N grows).
        let (n, lam, cap) = (3, 0.8, 28);
        let without = BruteForce::solve(n, 2, lam, cap).unwrap().mean_delay();
        let with = BruteForce::solve_with_mode(n, 2, lam, cap, PollMode::WithReplacement)
            .unwrap()
            .mean_delay();
        assert!(
            with > without,
            "with {with} should exceed without {without}"
        );
        // Both still beat random routing.
        let random = BruteForce::solve(n, 1, lam, cap).unwrap().mean_delay();
        assert!(with < random);
    }

    #[test]
    fn tail_fractions_basics() {
        let bf = BruteForce::solve(3, 2, 0.6, 28).unwrap();
        let tails = bf.queue_tail_fractions(6);
        // s_0 = 1; s_1 = utilization = λ (work conservation); decreasing.
        assert!((tails[0] - 1.0).abs() < 1e-10);
        assert!((tails[1] - 0.6).abs() < 1e-6, "s1 = {}", tails[1]);
        for k in 1..tails.len() {
            assert!(tails[k] <= tails[k - 1] + 1e-12);
        }
        // Finite N with d = 2 has heavier tails than the N → ∞ limit at
        // small k... and the asymptotic s_2 = λ³ anchors the scale.
        let s2_asym = 0.6f64.powi(3);
        assert!(
            (tails[2] - s2_asym).abs() < 0.05,
            "s2 {} vs {}",
            tails[2],
            s2_asym
        );
    }

    #[test]
    fn d1_delay_distribution_is_mm1_exponential() {
        // SQ(1): the tagged job joins a uniformly random M/M/1 queue, so
        // its sojourn is exp(1 − λ) — the classical M/M/1 result.
        let lam = 0.5;
        let bf = BruteForce::solve(2, 1, lam, 30).unwrap();
        let dist = bf.delay_distribution().unwrap();
        for i in 0..=20 {
            let t = i as f64 * 0.4;
            let want = (-(1.0 - lam) * t).exp();
            assert!(
                (dist.survival(t) - want).abs() < 1e-6,
                "t={t}: {} vs {want}",
                dist.survival(t)
            );
        }
        assert!((dist.mean() - 1.0 / (1.0 - lam)).abs() < 1e-6);
    }

    #[test]
    fn delay_distribution_mean_matches_little() {
        for &(n, d, lam) in &[(3usize, 2usize, 0.6f64), (3, 3, 0.8), (4, 2, 0.5)] {
            let bf = BruteForce::solve(n, d, lam, 28).unwrap();
            let dist = bf.delay_distribution().unwrap();
            assert!(
                (dist.mean() - bf.mean_delay()).abs() < 1e-6,
                "N={n} d={d}: {} vs {}",
                dist.mean(),
                bf.mean_delay()
            );
        }
    }

    #[test]
    fn higher_d_stochastically_smaller_delay() {
        // More choices ⇒ the whole delay distribution shifts down, not
        // just the mean.
        let (n, lam, cap) = (3usize, 0.75f64, 28u32);
        let d1 = BruteForce::solve(n, 1, lam, cap)
            .unwrap()
            .delay_distribution()
            .unwrap();
        let d2 = BruteForce::solve(n, 2, lam, cap)
            .unwrap()
            .delay_distribution()
            .unwrap();
        let d3 = BruteForce::solve(n, 3, lam, cap)
            .unwrap()
            .delay_distribution()
            .unwrap();
        for i in 1..=40 {
            let t = i as f64 * 0.3;
            assert!(d3.survival(t) <= d2.survival(t) + 1e-9, "t={t}");
            assert!(d2.survival(t) <= d1.survival(t) + 1e-9, "t={t}");
        }
    }

    #[test]
    fn mass_and_little_consistency() {
        let bf = BruteForce::solve(2, 2, 0.6, 30).unwrap();
        // π sums to 1.
        let total: f64 = bf.pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // waiting = jobs − busy servers.
        let busy: f64 = bf
            .states
            .iter()
            .zip(&bf.pi)
            .map(|(s, &p)| p * s.busy() as f64)
            .sum();
        assert!((bf.mean_jobs() - bf.mean_waiting() - busy).abs() < 1e-10);
        // Utilization: busy fraction = λ (work conservation).
        assert!((busy / 2.0 - 0.6).abs() < 1e-6, "busy {busy}");
    }
}
