//! Occupancy-lumped ("macro-state") representation of the bound models.
//!
//! The dense path in [`crate::BoundModel`] enumerates sorted server
//! tuples `m1 ≥ … ≥ mN` and assembles dense QBD blocks — fine for the
//! paper's `N ≤ 16`, hopeless at production scale where the repeating
//! block holds `C(N+T−1, T)` states (32,896 at `N = 256, T = 2`;
//! 131,328 at `N = 512`) and a dense block would need gigabytes.
//!
//! This module exploits that every transition rate depends on the state
//! only through its *occupancy vector*: how many servers sit at each
//! level. A macro-state is stored as `[base, c_0, …, c_T]` where `base`
//! is the shortest-queue length and `c_j` counts servers at level
//! `base + j` (so `c_0 ≥ 1` and `Σ c_j = N`). This is an exact lumping —
//! the canonical sorted tuple and its occupancy vector are two spellings
//! of the same state, and [`OccupancySpace`] enumerates them in exactly
//! the canonical `(total, lexicographic)` order of
//! [`crate::BlockSpace`], so the lumped generator blocks are
//! entry-for-entry equal to the dense ones (a fact pinned by tests).
//! The payoff is the *assembly path*: transitions are generated straight
//! from the `T + 1` counters in `O(T)` per state, rates land directly in
//! sparse [`CooBuilder`]s, and no dense `m × m` matrix ever exists.
//!
//! [`LumpedModel`] mirrors [`crate::BoundModel`] on top of this space
//! and solves with the sparse machinery of `slb-qbd`:
//! the Theorem-3 scalar tail for the lower bound
//! ([`Sqd::lower_bound_lumped`]), a reflecting level-doubling truncation
//! for the upper bound ([`Sqd::upper_bound_lumped`]), and a
//! decay-rate-only fast path ([`Sqd::decay_rate_lumped`]).

use std::cmp::Ordering;

use slb_linalg::{Budget, CooBuilder};
use slb_qbd::{decay_rate_sparse, decay_rate_sparse_budgeted, SparseQbdBlocks, SparseSolveOptions};

use crate::combinatorics::{
    binomial, group_arrival_probability, group_arrival_probability_with_replacement,
};
use crate::transitions::MU;
use crate::{BoundKind, BoundResult, CoreError, PollMode, Result, Sqd, State};

/// Location of a macro-state within the lumped block partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccLocation {
    /// In the boundary block, at this index.
    Boundary(usize),
    /// In repeating block `q`, at this within-block index.
    Level {
        /// Repeating-block number (0-based).
        q: usize,
        /// Index within the block.
        index: usize,
    },
}

/// The block-partitioned threshold state space in occupancy coordinates.
///
/// Stores each macro-state as a `T + 2` record `[base, c_0, …, c_T]` in
/// one flat, canonically sorted array per block; lookup is a binary
/// search, so no per-state hashing or tuple materialisation happens even
/// at `N = 1024` (where the repeating block holds 524,800 states for
/// `T = 2`).
///
/// # Example
///
/// ```
/// use slb_core::occupancy::OccupancySpace;
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let space = OccupancySpace::new(3, 2)?;
/// // Same block cardinality as the dense space: C(N+T−1, T) = 6.
/// assert_eq!(space.block_len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OccupancySpace {
    n: usize,
    t: u32,
    stride: usize,
    boundary: Vec<u32>,
    block0: Vec<u32>,
}

impl OccupancySpace {
    /// Enumerates the boundary block and the template repeating block for
    /// `n` servers and threshold `t`, in canonical `(total, lex)` order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if `n < 2` or `t < 1`.
    pub fn new(n: usize, t: u32) -> Result<Self> {
        Self::new_budgeted(n, t, &Budget::unlimited())
    }

    /// [`OccupancySpace::new`] under a cooperative [`Budget`], polled
    /// between enumeration batches — at production `N` the enumeration
    /// alone is seconds of work, and it runs before any solver gets a
    /// chance to poll.
    ///
    /// # Errors
    ///
    /// As [`OccupancySpace::new`], plus [`CoreError::Interrupted`] when
    /// the budget trips mid-enumeration.
    pub fn new_budgeted(n: usize, t: u32, budget: &Budget) -> Result<Self> {
        if n < 2 {
            return Err(CoreError::InvalidParameters {
                reason: format!("need at least 2 servers for the bound models, got {n}"),
            });
        }
        if t < 1 {
            return Err(CoreError::InvalidParameters {
                reason: "threshold T must be at least 1".into(),
            });
        }
        let t = t as usize;
        let stride = t + 2;
        let cap = (n as u64 - 1) * t as u64;

        let mut boundary = Vec::new();
        let mut block0 = Vec::new();
        let mut counts = vec![0u32; t + 1];
        // `enumerate_counts` drives a plain callback, so a budget trip
        // is latched here and the remaining visits become no-ops; the
        // error surfaces once the recursion unwinds.
        let mut tripped = None;
        let mut visited = 0usize;
        enumerate_counts(&mut counts, 0, n as u32, &mut |c| {
            if tripped.is_some() {
                return;
            }
            visited += 1;
            if visited % 4096 == 0 {
                if let Err(e) = budget.check("occupancy-enumeration", visited, f64::NAN) {
                    tripped = Some(e);
                    return;
                }
            }
            let sigma: u64 = c
                .iter()
                .enumerate()
                .map(|(j, &cj)| j as u64 * u64::from(cj))
                .sum();
            debug_assert!(sigma <= cap);
            // Boundary: bases 0..=⌊(cap − σ)/N⌋; block 0: the next base.
            let b_max = (cap - sigma) / n as u64;
            for b in 0..=b_max {
                boundary.push(b as u32);
                boundary.extend_from_slice(c);
            }
            block0.push(b_max as u32 + 1);
            block0.extend_from_slice(c);
        });
        if let Some(e) = tripped {
            return Err(CoreError::from(slb_qbd::QbdError::from(e)));
        }

        // The canonical sorts dominate construction at production `N`
        // (millions of flat records) and cannot poll internally, so
        // re-check between and after them: abort latency is bounded by
        // one sort, not the whole construction.
        let boundary = sort_canonical(boundary, stride, n);
        budget
            .check("occupancy-sort", visited, f64::NAN)
            .map_err(|e| CoreError::from(slb_qbd::QbdError::from(e)))?;
        let block0 = sort_canonical(block0, stride, n);
        budget
            .check("occupancy-sort", visited, f64::NAN)
            .map_err(|e| CoreError::from(slb_qbd::QbdError::from(e)))?;
        let space = OccupancySpace {
            n,
            t: t as u32,
            stride,
            boundary,
            block0,
        };
        debug_assert_eq!(space.block_len() as f64, binomial(n - 1 + t, t));
        Ok(space)
    }

    /// Number of servers `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Threshold `T`.
    pub fn threshold(&self) -> u32 {
        self.t
    }

    /// Record length of one macro-state, `T + 2`.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Highest total-job count of the boundary block, `(N−1)·T`.
    pub fn boundary_cap(&self) -> u64 {
        (self.n as u64 - 1) * u64::from(self.t)
    }

    /// Number of boundary macro-states.
    pub fn boundary_len(&self) -> usize {
        self.boundary.len() / self.stride
    }

    /// Number of macro-states per repeating block, `C(N+T−1, T)`.
    pub fn block_len(&self) -> usize {
        self.block0.len() / self.stride
    }

    /// The `i`-th boundary macro-state, `[base, c_0, …, c_T]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn boundary_state(&self, i: usize) -> &[u32] {
        &self.boundary[i * self.stride..(i + 1) * self.stride]
    }

    /// The `i`-th template-block macro-state, `[base, c_0, …, c_T]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block0_state(&self, i: usize) -> &[u32] {
        &self.block0[i * self.stride..(i + 1) * self.stride]
    }

    /// Locates a canonical macro-state within the partition; `None` if it
    /// lies outside the threshold set or has the wrong record length.
    pub fn locate(&self, occ: &[u32]) -> Option<OccLocation> {
        if occ.len() != self.stride {
            return None;
        }
        let mut scratch = occ.to_vec();
        self.locate_scratch(&mut scratch)
    }

    /// As [`OccupancySpace::locate`], but reduces the base in place
    /// (restoring it before returning) to avoid an allocation per lookup
    /// on the assembly hot path.
    fn locate_scratch(&self, occ: &mut [u32]) -> Option<OccLocation> {
        debug_assert_eq!(occ.len(), self.stride);
        debug_assert!(occ[1] >= 1, "macro-state not canonical: c_0 = 0");
        let total = total_of(occ, self.n);
        let cap = self.boundary_cap();
        if total <= cap {
            return self.find_in(&self.boundary, occ).map(OccLocation::Boundary);
        }
        let q = ((total - cap - 1) / self.n as u64) as usize;
        if (occ[0] as usize) < q {
            return None;
        }
        occ[0] -= q as u32;
        let found = self.find_in(&self.block0, occ);
        occ[0] += q as u32;
        found.map(|index| OccLocation::Level { q, index })
    }

    /// Binary search for `occ` in a canonically sorted flat block.
    fn find_in(&self, flat: &[u32], occ: &[u32]) -> Option<usize> {
        let stride = self.stride;
        let (mut lo, mut hi) = (0usize, flat.len() / stride);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_occ(&flat[mid * stride..(mid + 1) * stride], occ, self.n) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Some(mid),
            }
        }
        None
    }
}

/// Expands a macro-state `[base, c_0, …, c_T]` into the equivalent
/// sorted server tuple — the inverse of [`state_to_occupancy`], used to
/// cross-check the lumping against the dense space.
///
/// # Example
///
/// ```
/// use slb_core::occupancy::occupancy_to_state;
///
/// // base 1, two servers at level 1, one at level 2 → (2,1,1).
/// let s = occupancy_to_state(&[1, 2, 1]);
/// assert_eq!(s.as_slice(), &[2, 1, 1]);
/// ```
///
/// # Panics
///
/// Panics if the record is shorter than 2 entries or all counts are 0.
pub fn occupancy_to_state(occ: &[u32]) -> State {
    assert!(occ.len() >= 2, "macro-state needs [base, c_0, ..]");
    let base = occ[0];
    let mut v = Vec::new();
    for (j, &cj) in occ[1..].iter().enumerate().rev() {
        for _ in 0..cj {
            v.push(base + j as u32);
        }
    }
    State::new(v).expect("expansion is sorted non-increasing")
}

/// Compresses a sorted server tuple into the macro-state
/// `[base, c_0, …, c_T]`; `None` if its imbalance exceeds `t`.
///
/// # Example
///
/// ```
/// use slb_core::occupancy::state_to_occupancy;
/// use slb_core::State;
///
/// let s = State::new(vec![2, 1, 1]).unwrap();
/// assert_eq!(state_to_occupancy(&s, 2), Some(vec![1, 2, 1, 0]));
/// assert_eq!(state_to_occupancy(&s, 1), Some(vec![1, 2, 1]));
/// ```
pub fn state_to_occupancy(s: &State, t: u32) -> Option<Vec<u32>> {
    if s.diff() > t {
        return None;
    }
    let base = s.level(s.n() - 1);
    let mut occ = vec![0u32; t as usize + 2];
    occ[0] = base;
    for &m in s.as_slice() {
        occ[1 + (m - base) as usize] += 1;
    }
    Some(occ)
}

/// All count vectors `(c_0, …, c_T)` with `Σ c_j = n` and `c_0 ≥ 1`.
fn enumerate_counts(c: &mut [u32], j: usize, remaining: u32, f: &mut dyn FnMut(&[u32])) {
    let last = c.len() - 1;
    if j == last {
        c[j] = remaining;
        if c[0] >= 1 {
            f(c);
        }
        return;
    }
    let lo = u32::from(j == 0);
    for v in lo..=remaining {
        c[j] = v;
        enumerate_counts(c, j + 1, remaining - v, f);
    }
}

/// Total jobs of a macro-state, `base·N + Σ j·c_j`.
fn total_of(occ: &[u32], n: usize) -> u64 {
    let base = u64::from(occ[0]);
    let sigma: u64 = occ[1..]
        .iter()
        .enumerate()
        .map(|(j, &cj)| j as u64 * u64::from(cj))
        .sum();
    base * n as u64 + sigma
}

/// Servers at absolute level `lvl` of a macro-state.
fn count_at(occ: &[u32], lvl: u64) -> u32 {
    let base = u64::from(occ[0]);
    if lvl < base || lvl - base >= occ.len() as u64 - 1 {
        return 0;
    }
    occ[1 + (lvl - base) as usize]
}

/// Canonical order of macro-states: by total, then lexicographically on
/// the expanded non-increasing tuple — identical to the dense
/// [`crate::StateIndex`] order, which is what makes the lumped blocks
/// entry-for-entry comparable to the dense ones. Comparing expansions
/// reduces to walking absolute levels top-down: at the first level where
/// the counts differ, the state with *more* servers there is the
/// lexicographically greater one.
fn cmp_occ(a: &[u32], b: &[u32], n: usize) -> Ordering {
    let (ta, tb) = (total_of(a, n), total_of(b, n));
    if ta != tb {
        return ta.cmp(&tb);
    }
    let top = |occ: &[u32]| {
        let diff = occ[1..].iter().rposition(|&c| c > 0).unwrap_or(0);
        u64::from(occ[0]) + diff as u64
    };
    let mut lvl = top(a).max(top(b));
    loop {
        match count_at(a, lvl).cmp(&count_at(b, lvl)) {
            Ordering::Equal => {}
            other => return other,
        }
        if lvl == 0 {
            return Ordering::Equal;
        }
        lvl -= 1;
    }
}

/// Sorts a flat record array canonically (by index permutation, to keep
/// the big blocks allocation-light).
fn sort_canonical(flat: Vec<u32>, stride: usize, n: usize) -> Vec<u32> {
    let count = flat.len() / stride;
    let mut idx: Vec<u32> = (0..count as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        let (a, b) = (a as usize * stride, b as usize * stride);
        cmp_occ(&flat[a..a + stride], &flat[b..b + stride], n)
    });
    let mut out = Vec::with_capacity(flat.len());
    for i in idx {
        let at = i as usize * stride;
        out.extend_from_slice(&flat[at..at + stride]);
    }
    out
}

/// Reusable buffers for the transition generator.
struct TransitionScratch {
    /// Tie groups top-down: `(relative level, start, end)` with 1-based
    /// inclusive positions in the expanded sorted tuple.
    groups: Vec<(usize, usize, usize)>,
    /// Target macro-state being built.
    target: Vec<u32>,
}

impl TransitionScratch {
    fn new(stride: usize) -> Self {
        TransitionScratch {
            groups: Vec::with_capacity(stride),
            target: vec![0; stride],
        }
    }
}

/// Arrival into the tie group at relative level `j`: one server moves
/// from `base + j` to `base + j + 1`, re-based when the bottom level
/// empties.
fn arrival_into(occ: &[u32], j: usize, target: &mut [u32]) {
    let t = occ.len() - 2;
    target.copy_from_slice(occ);
    target[1 + j] -= 1;
    target[2 + j] += 1;
    if j == 0 && target[1] == 0 {
        target[0] += 1;
        for i in 0..t {
            target[1 + i] = target[2 + i];
        }
        target[1 + t] = 0;
    }
}

/// Departure from the tie group at relative level `j`: one server moves
/// from `base + j` down; `j = 0` opens a new bottom level (requires
/// `c_T = 0`, guaranteed because a bottom departure at full imbalance is
/// redirected or blocked).
fn departure_into(occ: &[u32], j: usize, target: &mut [u32]) {
    let t = occ.len() - 2;
    target.copy_from_slice(occ);
    if j >= 1 {
        target[1 + j] -= 1;
        target[j] += 1;
    } else {
        debug_assert!(occ[0] >= 1, "departure below level 0");
        debug_assert_eq!(occ[1 + t], 0, "bottom departure at full imbalance");
        target[0] -= 1;
        for i in (1..=t).rev() {
            target[1 + i] = target[i];
        }
        target[1] = 1;
        target[2] -= 1;
    }
}

/// The upper model's threshold arrival: the polled top-group server
/// takes the job (level `T → T+1`) *and* every bottom server gains a
/// phantom job, keeping the imbalance at `T` (Section IV's amplified
/// redirect). The whole state shifts one base level up.
fn upper_arrival_into(occ: &[u32], target: &mut [u32]) {
    let t = occ.len() - 2;
    debug_assert!(occ[1 + t] > 0, "upper redirect requires diff = T");
    target[0] = occ[0] + 1;
    // New counts live on old levels 1..=T+1.
    target[1..1 + t].copy_from_slice(&occ[2..2 + t]);
    target[1 + t] = 0;
    target[1] += occ[1]; // bottom servers join old level 1
    target[t] -= 1; // one server left old level T …
    target[1 + t] += 1; // … for old level T+1
}

/// Enumerates the transitions of one macro-state of a bound model,
/// mirroring `transitions_with_mode` on the dense tuples exactly
/// (including the paper's four threshold redirects), but in `O(T)` per
/// state. Parallel transitions to the same target are emitted
/// separately; the sparse builder accumulates them, as the dense `+=`
/// does.
#[allow(clippy::too_many_arguments)] // internal hot path; a params struct would just rename the list
fn for_each_transition(
    occ: &[u32],
    n: usize,
    d: usize,
    lambda: f64,
    kind: BoundKind,
    mode: PollMode,
    scratch: &mut TransitionScratch,
    mut emit: impl FnMut(&mut [u32], f64),
) {
    let t = occ.len() - 2;
    let TransitionScratch { groups, target } = scratch;
    groups.clear();
    let mut above = 0usize;
    for j in (0..=t).rev() {
        let cj = occ[1 + j] as usize;
        if cj == 0 {
            continue;
        }
        groups.push((j, above + 1, above + cj));
        above += cj;
    }
    let ng = groups.len();
    let at_threshold = groups[0].0 == t;

    // Arrivals: polled group → one level up, except the top group at
    // full imbalance, which each model redirects its own way.
    for (gi, &(j, s1, e1)) in groups.iter().enumerate() {
        let p = match mode {
            PollMode::WithoutReplacement => group_arrival_probability(n, d, s1, e1),
            PollMode::WithReplacement => group_arrival_probability_with_replacement(n, d, s1, e1),
        };
        if p <= 0.0 {
            continue;
        }
        let rate = lambda * n as f64 * p;
        if !(at_threshold && gi == 0) {
            arrival_into(occ, j, target);
            emit(target, rate);
        } else {
            match kind {
                BoundKind::Lower => {
                    arrival_into(occ, groups[1].0, target);
                    emit(target, rate);
                }
                BoundKind::Upper => {
                    upper_arrival_into(occ, target);
                    emit(target, rate);
                }
            }
        }
    }

    // Departures: each busy group one level down, except the bottom
    // group at full imbalance (lower: redirected one group up; upper:
    // blocked).
    for (gi, &(j, _, _)) in groups.iter().enumerate() {
        if occ[0] == 0 && j == 0 {
            continue; // idle servers do not complete jobs
        }
        let rate = f64::from(occ[1 + j]) * MU;
        if !(at_threshold && gi == ng - 1) {
            departure_into(occ, j, target);
            emit(target, rate);
        } else if kind == BoundKind::Lower {
            departure_into(occ, groups[ng - 2].0, target);
            emit(target, rate);
        }
    }
}

/// Waiting jobs of a macro-state, `total − busy`.
fn waiting_of(occ: &[u32], n: usize) -> f64 {
    let idle = if occ[0] == 0 { u64::from(occ[1]) } else { 0 };
    (total_of(occ, n) - (n as u64 - idle)) as f64
}

/// A bound model assembled over the occupancy-lumped state space —
/// the sparse, production-`N` counterpart of [`crate::BoundModel`].
///
/// # Example
///
/// ```
/// use slb_core::occupancy::LumpedModel;
/// use slb_core::{BoundKind, Sqd};
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let sqd = Sqd::new(64, 2, 0.85)?;
/// let model = LumpedModel::new(sqd, BoundKind::Lower, 2)?;
/// // N = 64, T = 2 already needs 2,080 phases — the dense path would
/// // build three 2,080² blocks; the lumped blocks stay sparse.
/// assert_eq!(model.space().block_len(), 2_080);
/// let blocks = model.qbd_blocks()?;
/// assert!(blocks.is_stable()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LumpedModel {
    sqd: Sqd,
    kind: BoundKind,
    t: u32,
    space: OccupancySpace,
}

impl LumpedModel {
    /// Builds the model and enumerates its macro-state space.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] for invalid `(N, T)`.
    pub fn new(sqd: Sqd, kind: BoundKind, t: u32) -> Result<Self> {
        Self::new_budgeted(sqd, kind, t, &Budget::unlimited())
    }

    /// [`LumpedModel::new`] under a cooperative [`Budget`]: the
    /// macro-state enumeration polls it, so a deadline can interrupt
    /// model construction, not just the solve.
    ///
    /// # Errors
    ///
    /// As [`LumpedModel::new`], plus [`CoreError::Interrupted`] when
    /// the budget trips mid-enumeration.
    pub fn new_budgeted(sqd: Sqd, kind: BoundKind, t: u32, budget: &Budget) -> Result<Self> {
        let space = OccupancySpace::new_budgeted(sqd.n(), t, budget)?;
        Ok(LumpedModel {
            sqd,
            kind,
            t,
            space,
        })
    }

    /// Which bound this model computes.
    pub fn kind(&self) -> BoundKind {
        self.kind
    }

    /// Threshold `T`.
    pub fn threshold(&self) -> u32 {
        self.t
    }

    /// The underlying macro-state space.
    pub fn space(&self) -> &OccupancySpace {
        &self.space
    }

    /// Assembles the six QBD generator blocks directly in sparse form.
    ///
    /// Boundary rows fill `R00/R01`, template-block rows fill
    /// `R10/A1/A0`, and `A2` is read off the first repeating block one
    /// level up — the same extraction points as the dense
    /// [`crate::BoundModel::qbd_blocks`], so level independence carries
    /// over unchanged.
    ///
    /// # Errors
    ///
    /// Propagates block-validation failures (which would indicate a bug
    /// in the lumped transition rules rather than bad user input).
    pub fn qbd_blocks(&self) -> Result<SparseQbdBlocks> {
        self.qbd_blocks_budgeted(&Budget::unlimited())
    }

    /// [`LumpedModel::qbd_blocks`] under a cooperative [`Budget`],
    /// polled between row batches. At production `N` the assembly
    /// itself is minutes of work (hundreds of thousands of macro-state
    /// rows), so a deadline or cancellation must be able to interrupt
    /// it *before* any solver iteration runs.
    ///
    /// # Errors
    ///
    /// As [`LumpedModel::qbd_blocks`], plus [`CoreError::Interrupted`]
    /// when the budget trips mid-assembly.
    pub fn qbd_blocks_budgeted(&self, budget: &Budget) -> Result<SparseQbdBlocks> {
        // Rows per budget poll: coarse enough to keep the poll cost
        // invisible, fine enough that an abort lands within a few
        // thousand sparse-row assemblies.
        const ROW_BATCH: usize = 512;
        let poll = |row: usize| -> Result<()> {
            if row % ROW_BATCH == 0 {
                budget
                    .check("lumped-assembly", row, f64::NAN)
                    .map_err(|e| CoreError::from(slb_qbd::QbdError::from(e)))?;
            }
            Ok(())
        };
        let sp = &self.space;
        let (nb, m) = (sp.boundary_len(), sp.block_len());
        let (d, lambda, mode) = (self.sqd.d(), self.sqd.lambda(), self.sqd.poll_mode());
        let kind = self.kind;
        let n = sp.n();

        let mut r00 = CooBuilder::new(nb, nb);
        let mut r01 = CooBuilder::new(nb, m);
        let mut r10 = CooBuilder::new(m, nb);
        let mut a0 = CooBuilder::new(m, m);
        let mut a1 = CooBuilder::new(m, m);
        let mut a2 = CooBuilder::new(m, m);
        let add = |b: &mut CooBuilder, r: usize, c: usize, v: f64| {
            b.add(r, c, v).expect("indices in range by construction");
        };

        let mut scratch = TransitionScratch::new(sp.stride());

        // Boundary rows.
        for i in 0..nb {
            poll(i)?;
            let occ = sp.boundary_state(i);
            let mut outflow = 0.0;
            for_each_transition(occ, n, d, lambda, kind, mode, &mut scratch, |tgt, rate| {
                outflow += rate;
                match sp.locate_scratch(tgt) {
                    Some(OccLocation::Boundary(j)) => add(&mut r00, i, j, rate),
                    Some(OccLocation::Level { q: 0, index: j }) => add(&mut r01, i, j, rate),
                    other => unreachable!("boundary transition {occ:?} -> {tgt:?} at {other:?}"),
                }
            });
            add(&mut r00, i, i, -outflow);
        }

        // Template-block rows.
        for i in 0..m {
            poll(i)?;
            let occ = sp.block0_state(i);
            let mut outflow = 0.0;
            for_each_transition(occ, n, d, lambda, kind, mode, &mut scratch, |tgt, rate| {
                outflow += rate;
                match sp.locate_scratch(tgt) {
                    Some(OccLocation::Boundary(j)) => add(&mut r10, i, j, rate),
                    Some(OccLocation::Level { q: 0, index: j }) => add(&mut a1, i, j, rate),
                    Some(OccLocation::Level { q: 1, index: j }) => add(&mut a0, i, j, rate),
                    other => unreachable!("level-0 transition {occ:?} -> {tgt:?} at {other:?}"),
                }
            });
            add(&mut a1, i, i, -outflow);
        }

        // Downward block A2, extracted one level up (level independence
        // makes the A1/A0 rates there copies of the ones above).
        let mut up = vec![0u32; sp.stride()];
        for i in 0..m {
            poll(i)?;
            up.copy_from_slice(sp.block0_state(i));
            up[0] += 1;
            for_each_transition(
                &up,
                n,
                d,
                lambda,
                kind,
                mode,
                &mut scratch,
                |tgt, rate| match sp.locate_scratch(tgt) {
                    Some(OccLocation::Level { q: 0, index: j }) => add(&mut a2, i, j, rate),
                    Some(OccLocation::Level { q: 1 | 2, .. }) => {}
                    other => unreachable!("level-1 transition {up:?} -> {tgt:?} at {other:?}"),
                },
            );
        }

        SparseQbdBlocks::new(
            r00.build(),
            r01.build(),
            r10.build(),
            a0.build(),
            a1.build(),
            a2.build(),
        )
        .map_err(CoreError::from)
    }

    /// Solves the lower model with the Theorem-3 scalar tail `β = ρᴺ`
    /// on the sparse blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] on an upper model (the scalar
    /// tail is a lower-model theorem); solver failures otherwise.
    pub fn solve_scalar_tail(&self, opts: &SparseSolveOptions) -> Result<BoundResult> {
        if self.kind != BoundKind::Lower {
            return Err(CoreError::InvalidParameters {
                reason: "the ρᴺ scalar tail (Theorem 3) applies to the lower model only".into(),
            });
        }
        let blocks = self.qbd_blocks_budgeted(&opts.budget)?;
        let beta = self.sqd.lambda().powi(self.sqd.n() as i32);
        let sol = blocks.solve_scalar_tail(beta, opts)?;
        let (cb, c0, growth) = self.cost_vectors();
        Ok(self.result(sol.mean_linear_cost(&cb, &c0, &growth), sol.residual()))
    }

    /// Solves either model by the reflecting level-doubling truncation
    /// (no rate matrix `R` is ever formed or densified).
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] when the drift condition fails;
    /// solver failures otherwise.
    pub fn solve_truncated(&self, opts: &SparseSolveOptions) -> Result<BoundResult> {
        let blocks = self.qbd_blocks_budgeted(&opts.budget)?;
        let sol = blocks.solve_decay_tail(opts)?;
        let (cb, c0, growth) = self.cost_vectors();
        Ok(self.result(sol.mean_linear_cost(&cb, &c0, &growth), sol.residual()))
    }

    /// The tail decay rate `sp(R)` of this model, computed without ever
    /// forming `R` (Perron-root bisection of `A(z) = A0 + zA1 + z²A2`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] when the drift condition fails;
    /// solver failures otherwise.
    pub fn decay_rate(&self, tol: f64) -> Result<f64> {
        Ok(decay_rate_sparse(&self.qbd_blocks()?, tol)?)
    }

    /// [`LumpedModel::decay_rate`] under a cooperative [`Budget`].
    ///
    /// # Errors
    ///
    /// As [`LumpedModel::decay_rate`], plus [`CoreError::Interrupted`]
    /// when the budget trips mid-bisection.
    pub fn decay_rate_budgeted(&self, tol: f64, budget: &Budget) -> Result<f64> {
        Ok(decay_rate_sparse_budgeted(
            &self.qbd_blocks_budgeted(budget)?,
            tol,
            budget,
        )?)
    }

    /// Waiting-job cost vectors: boundary costs, template-block costs,
    /// and the per-level growth (`N` — every server is busy on repeating
    /// levels).
    fn cost_vectors(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let sp = &self.space;
        let n = sp.n();
        let cb = (0..sp.boundary_len())
            .map(|i| waiting_of(sp.boundary_state(i), n))
            .collect();
        let c0 = (0..sp.block_len())
            .map(|i| waiting_of(sp.block0_state(i), n))
            .collect();
        let growth = vec![n as f64; sp.block_len()];
        (cb, c0, growth)
    }

    fn result(&self, waiting: f64, residual: f64) -> BoundResult {
        let mean_wait = waiting / (self.sqd.lambda() * self.sqd.n() as f64);
        BoundResult {
            delay: mean_wait + 1.0,
            waiting_jobs: waiting,
            residual,
            g_iterations: 0,
            boundary_states: self.space.boundary_len(),
            level_states: self.space.block_len(),
        }
    }
}

impl Sqd {
    /// Lower bound on the mean delay via the occupancy-lumped sparse
    /// path — same value as [`Sqd::lower_bound`] (pinned to `1e-8`
    /// relative agreement by tests), but scaling to production `N`
    /// where the dense path cannot allocate its blocks.
    ///
    /// # Errors
    ///
    /// Propagates state-space or solver failures; the lower-bound model
    /// is stable for every `λ < 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_core::Sqd;
    ///
    /// # fn main() -> Result<(), slb_core::CoreError> {
    /// let sqd = Sqd::new(8, 2, 0.8)?;
    /// let dense = sqd.lower_bound(2)?;
    /// let lumped = sqd.lower_bound_lumped(2)?;
    /// assert!((dense.delay - lumped.delay).abs() < 1e-8 * dense.delay);
    /// # Ok(())
    /// # }
    /// ```
    pub fn lower_bound_lumped(&self, t: u32) -> Result<BoundResult> {
        self.lower_bound_lumped_with(t, &SparseSolveOptions::default())
    }

    /// [`Sqd::lower_bound_lumped`] with caller-supplied solve options —
    /// in particular a [`SparseSolveOptions::budget`], which is how the
    /// serving stack makes the multi-minute production-`N` solve abort
    /// at its request deadline instead of holding a worker.
    ///
    /// # Errors
    ///
    /// As [`Sqd::lower_bound_lumped`], plus [`CoreError::Interrupted`]
    /// when the budget trips mid-solve.
    pub fn lower_bound_lumped_with(
        &self,
        t: u32,
        opts: &SparseSolveOptions,
    ) -> Result<BoundResult> {
        LumpedModel::new_budgeted(*self, BoundKind::Lower, t, &opts.budget)?.solve_scalar_tail(opts)
    }

    /// Upper bound on the mean delay via the occupancy-lumped sparse
    /// path — same value as [`Sqd::upper_bound`], computed by the
    /// reflecting level-doubling truncation instead of the dense rate
    /// matrix.
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] when blocking reduces capacity
    /// below the offered load at this `(λ, T)` — raise `T` in that case.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_core::Sqd;
    ///
    /// # fn main() -> Result<(), slb_core::CoreError> {
    /// let sqd = Sqd::new(6, 2, 0.7)?;
    /// let dense = sqd.upper_bound(3)?;
    /// let lumped = sqd.upper_bound_lumped(3)?;
    /// assert!((dense.delay - lumped.delay).abs() < 1e-8 * dense.delay);
    /// # Ok(())
    /// # }
    /// ```
    pub fn upper_bound_lumped(&self, t: u32) -> Result<BoundResult> {
        self.upper_bound_lumped_with(t, &SparseSolveOptions::default())
    }

    /// [`Sqd::upper_bound_lumped`] with caller-supplied solve options
    /// (see [`Sqd::lower_bound_lumped_with`] for the budget rationale).
    ///
    /// # Errors
    ///
    /// As [`Sqd::upper_bound_lumped`], plus [`CoreError::Interrupted`]
    /// when the budget trips mid-solve.
    pub fn upper_bound_lumped_with(
        &self,
        t: u32,
        opts: &SparseSolveOptions,
    ) -> Result<BoundResult> {
        LumpedModel::new_budgeted(*self, BoundKind::Upper, t, &opts.budget)?.solve_truncated(opts)
    }

    /// The geometric tail decay rate `sp(R)` of a bound model, via the
    /// sparse Perron-root fast path — no stationary solve, no `R`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UpperBoundUnstable`] when the drift condition fails.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_core::{BoundKind, Sqd};
    ///
    /// # fn main() -> Result<(), slb_core::CoreError> {
    /// let sqd = Sqd::new(4, 2, 0.8)?;
    /// let eta = sqd.decay_rate_lumped(BoundKind::Lower, 2)?;
    /// // The lower model's tail decays at least as fast as ρᴺ … scaled
    /// // chains decay geometrically with rate strictly below 1.
    /// assert!(eta > 0.0 && eta < 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decay_rate_lumped(&self, kind: BoundKind, t: u32) -> Result<f64> {
        LumpedModel::new(*self, kind, t)?.decay_rate(1e-10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockSpace, BoundModel};

    #[test]
    fn space_matches_dense_blockspace_in_order() {
        for &(n, t) in &[(2usize, 1u32), (3, 2), (4, 3), (6, 2), (5, 1)] {
            let occ = OccupancySpace::new(n, t).unwrap();
            let dense = BlockSpace::new(n, t).unwrap();
            assert_eq!(occ.boundary_len(), dense.boundary().len(), "N={n} T={t}");
            assert_eq!(occ.block_len(), dense.block_len(), "N={n} T={t}");
            for (i, s) in dense.boundary().iter() {
                assert_eq!(&occupancy_to_state(occ.boundary_state(i)), s);
            }
            for (i, s) in dense.block0().iter() {
                assert_eq!(&occupancy_to_state(occ.block0_state(i)), s);
            }
        }
    }

    #[test]
    fn locate_agrees_with_dense() {
        let occ = OccupancySpace::new(4, 2).unwrap();
        let dense = BlockSpace::new(4, 2).unwrap();
        for i in 0..occ.boundary_len() {
            let s = occ.boundary_state(i);
            assert_eq!(occ.locate(s), Some(OccLocation::Boundary(i)));
        }
        for q in 0..3u32 {
            for i in 0..occ.block_len() {
                let mut s = occ.block0_state(i).to_vec();
                s[0] += q;
                assert_eq!(
                    occ.locate(&s),
                    Some(OccLocation::Level {
                        q: q as usize,
                        index: i
                    })
                );
                // And the dense space sees the very same (q, index).
                let ds = occupancy_to_state(&s);
                assert_eq!(
                    dense.locate(&ds),
                    Some(crate::BlockLocation::Level {
                        q: q as usize,
                        index: i
                    })
                );
            }
        }
    }

    #[test]
    fn roundtrip_state_occupancy() {
        let s = State::new(vec![4, 3, 3, 2]).unwrap();
        let occ = state_to_occupancy(&s, 2).unwrap();
        assert_eq!(occ, vec![2, 1, 2, 1]);
        assert_eq!(occupancy_to_state(&occ), s);
        assert_eq!(state_to_occupancy(&s, 1), None);
    }

    #[test]
    fn lumped_blocks_equal_dense_blocks() {
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.7f64, 2u32),
            (3, 1, 0.6, 2),
            (4, 4, 0.8, 2), // JSQ
            (4, 2, 0.85, 3),
            (5, 3, 0.5, 1),
        ] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            for kind in [BoundKind::Lower, BoundKind::Upper] {
                let dense = BoundModel::new(sqd, kind, t).unwrap().qbd_blocks().unwrap();
                let lumped = LumpedModel::new(sqd, kind, t)
                    .unwrap()
                    .qbd_blocks()
                    .unwrap();
                let pairs = [
                    ("R00", lumped.r00().to_dense(), dense.r00()),
                    ("R01", lumped.r01().to_dense(), dense.r01()),
                    ("R10", lumped.r10().to_dense(), dense.r10()),
                    ("A0", lumped.a0().to_dense(), dense.a0()),
                    ("A1", lumped.a1().to_dense(), dense.a1()),
                    ("A2", lumped.a2().to_dense(), dense.a2()),
                ];
                for (name, sparse, dense) in pairs {
                    assert!(
                        sparse.approx_eq(dense, 1e-12),
                        "N={n} d={d} λ={lam} T={t} {kind:?}: {name} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn with_replacement_blocks_equal_dense() {
        let sqd = Sqd::new_with_mode(4, 5, 0.7, PollMode::WithReplacement).unwrap();
        for kind in [BoundKind::Lower, BoundKind::Upper] {
            let dense = BoundModel::new(sqd, kind, 2).unwrap().qbd_blocks().unwrap();
            let lumped = LumpedModel::new(sqd, kind, 2)
                .unwrap()
                .qbd_blocks()
                .unwrap();
            assert!(lumped.a1().to_dense().approx_eq(dense.a1(), 1e-12));
            assert!(lumped.a0().to_dense().approx_eq(dense.a0(), 1e-12));
            assert!(lumped.a2().to_dense().approx_eq(dense.a2(), 1e-12));
        }
    }

    #[test]
    fn lumped_bounds_match_dense_to_1e8() {
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.7f64, 2u32),
            (6, 2, 0.8, 2),
            (8, 2, 0.9, 2),
            (10, 3, 0.85, 2),
            (16, 2, 0.8, 1),
        ] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            let ld = sqd.lower_bound(t).unwrap().delay;
            let ll = sqd.lower_bound_lumped(t).unwrap().delay;
            assert!(
                (ld - ll).abs() <= 1e-8 * ld,
                "lower N={n} d={d} λ={lam} T={t}: dense {ld} vs lumped {ll}"
            );
            match sqd.upper_bound(t) {
                Ok(ud) => {
                    let ul = sqd.upper_bound_lumped(t).unwrap().delay;
                    assert!(
                        (ud.delay - ul).abs() <= 1e-8 * ud.delay,
                        "upper N={n} d={d} λ={lam} T={t}: dense {} vs lumped {ul}",
                        ud.delay
                    );
                }
                Err(CoreError::UpperBoundUnstable { .. }) => {
                    // The lumped path must agree on infeasibility.
                    assert!(matches!(
                        sqd.upper_bound_lumped(t),
                        Err(CoreError::UpperBoundUnstable { .. })
                    ));
                }
                Err(e) => panic!("unexpected dense failure: {e}"),
            }
        }
    }

    #[test]
    fn decay_rate_matches_dense() {
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.7f64, 2u32),
            (4, 2, 0.85, 2),
            (6, 2, 0.6, 1),
        ] {
            let sqd = Sqd::new(n, d, lam).unwrap();
            for kind in [BoundKind::Lower, BoundKind::Upper] {
                let blocks = BoundModel::new(sqd, kind, t).unwrap().qbd_blocks().unwrap();
                if !blocks.is_stable().unwrap() {
                    continue;
                }
                let dense = slb_qbd::decay_rate(&blocks, 1e-13, 10_000).unwrap();
                let sparse = sqd.decay_rate_lumped(kind, t).unwrap();
                assert!(
                    (dense - sparse).abs() <= 1e-6 * dense.max(1e-12),
                    "N={n} {kind:?}: dense sp(R) {dense} vs sparse {sparse}"
                );
            }
        }
    }

    #[test]
    fn scalar_tail_rejected_for_upper_model() {
        let sqd = Sqd::new(3, 2, 0.5).unwrap();
        let model = LumpedModel::new(sqd, BoundKind::Upper, 2).unwrap();
        assert!(matches!(
            model.solve_scalar_tail(&SparseSolveOptions::default()),
            Err(CoreError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn production_n_space_enumerates() {
        // The N = 256 block from the issue: C(257, 2) = 32,896 phases.
        let space = OccupancySpace::new(256, 2).unwrap();
        assert_eq!(space.block_len(), 32_896);
        assert!(space.boundary_len() > space.block_len());
        // Spot-check canonical invariants on a few records.
        for i in (0..space.block_len()).step_by(1_001) {
            let occ = space.block0_state(i);
            assert!(occ[1] >= 1);
            assert_eq!(occ[1..].iter().sum::<u32>(), 256);
        }
    }

    // Tier-1 `cargo test` runs in debug, where a quarter-million-phase
    // sparse solve would dominate the suite; the production-scale
    // regression (N = 512 under a time budget) therefore only arms in
    // release test runs (`cargo test --release`, as the bench/CI lane
    // does).
    #[cfg(not(debug_assertions))]
    #[test]
    fn n512_bounds_within_time_budget() {
        let budget = std::time::Duration::from_secs(300);
        let start = std::time::Instant::now();
        let sqd = Sqd::new(512, 2, 0.9).unwrap();
        let lb = sqd.lower_bound_lumped(2).unwrap();
        assert!(lb.delay >= 1.0 && lb.residual < 1e-6);
        assert_eq!(lb.level_states, 131_328); // C(513, 2)
        let elapsed = start.elapsed();
        assert!(
            elapsed < budget,
            "N=512 lumped lower bound took {elapsed:?} (budget {budget:?})"
        );
    }
}
