use std::error::Error;
use std::fmt;

use slb_markov::MarkovError;
use slb_qbd::QbdError;

/// Error type for SQ(d) model construction and bound evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Model parameters violate a precondition (e.g. `d > N`, `λ ≥ 1`).
    InvalidParameters {
        /// Description of the violated precondition.
        reason: String,
    },
    /// The upper-bound model is unstable at this `(λ, T)`: blocking
    /// bottom-level departures reduces capacity, so the upper-bound chain
    /// saturates strictly before `λ = 1`. Increase `T` or lower `λ`.
    UpperBoundUnstable {
        /// Mean upward drift of the level process.
        up_drift: f64,
        /// Mean downward drift of the level process.
        down_drift: f64,
    },
    /// The underlying QBD machinery failed.
    Qbd(QbdError),
    /// The underlying Markov-chain machinery failed (brute-force solver).
    Markov(MarkovError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameters { reason } => {
                write!(f, "invalid parameters: {reason}")
            }
            CoreError::UpperBoundUnstable {
                up_drift,
                down_drift,
            } => write!(
                f,
                "upper-bound model unstable at this utilization/threshold \
                 (drift up {up_drift:.6} >= down {down_drift:.6}); increase T or lower λ"
            ),
            CoreError::Qbd(e) => write!(f, "QBD solver failure: {e}"),
            CoreError::Markov(e) => write!(f, "Markov solver failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Qbd(e) => Some(e),
            CoreError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QbdError> for CoreError {
    fn from(e: QbdError) -> Self {
        match e {
            QbdError::Unstable {
                up_drift,
                down_drift,
            } => CoreError::UpperBoundUnstable {
                up_drift,
                down_drift,
            },
            other => CoreError::Qbd(other),
        }
    }
}

impl From<MarkovError> for CoreError {
    fn from(e: MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CoreError::InvalidParameters {
            reason: "d > N".into(),
        };
        assert!(e.to_string().contains("d > N"));
    }

    #[test]
    fn unstable_conversion() {
        let e = CoreError::from(QbdError::Unstable {
            up_drift: 1.0,
            down_drift: 0.9,
        });
        assert!(matches!(e, CoreError::UpperBoundUnstable { .. }));
    }

    #[test]
    fn send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
