use std::error::Error;
use std::fmt;

use slb_markov::MarkovError;
use slb_qbd::QbdError;

/// Error type for SQ(d) model construction and bound evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Model parameters violate a precondition (e.g. `d > N`, `λ ≥ 1`).
    InvalidParameters {
        /// Description of the violated precondition.
        reason: String,
    },
    /// The upper-bound model is unstable at this `(λ, T)`: blocking
    /// bottom-level departures reduces capacity, so the upper-bound chain
    /// saturates strictly before `λ = 1`. Increase `T` or lower `λ`.
    UpperBoundUnstable {
        /// Mean upward drift of the level process.
        up_drift: f64,
        /// Mean downward drift of the level process.
        down_drift: f64,
    },
    /// An iterative solve was interrupted cooperatively — its budget's
    /// deadline passed, its cancel token fired, or the `solver.cancel`
    /// fail point triggered — before reaching convergence.
    Interrupted {
        /// Name of the interrupted stage.
        method: &'static str,
        /// Iterations completed before the interruption.
        iterations: usize,
        /// Residual at the point of interruption (`NaN` when the stage
        /// had not yet measured one).
        residual: f64,
        /// Wall-clock time the solve ran before being interrupted.
        elapsed: std::time::Duration,
    },
    /// An iterative solve exhausted its iteration cap without meeting
    /// its tolerance: the result would be the last iterate, which is
    /// not a bound. Callers report this as a row status rather than a
    /// silent value.
    NonConverged {
        /// Name of the stage that stalled.
        method: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// The underlying QBD machinery failed.
    Qbd(QbdError),
    /// The underlying Markov-chain machinery failed (brute-force solver).
    Markov(MarkovError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameters { reason } => {
                write!(f, "invalid parameters: {reason}")
            }
            CoreError::UpperBoundUnstable {
                up_drift,
                down_drift,
            } => write!(
                f,
                "upper-bound model unstable at this utilization/threshold \
                 (drift up {up_drift:.6} >= down {down_drift:.6}); increase T or lower λ"
            ),
            // The "interrupted:" prefix is load-bearing: the serving
            // layer classifies stringly-typed job errors by it to turn
            // a budget abort into a 503 rather than a 422.
            CoreError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            } => write!(
                f,
                "interrupted: {method} stopped after {iterations} iterations \
                 ({:.3}s elapsed, residual {residual:.3e})",
                elapsed.as_secs_f64()
            ),
            CoreError::NonConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "nonconverged: {method} exhausted {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            CoreError::Qbd(e) => write!(f, "QBD solver failure: {e}"),
            CoreError::Markov(e) => write!(f, "Markov solver failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Qbd(e) => Some(e),
            CoreError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QbdError> for CoreError {
    fn from(e: QbdError) -> Self {
        match e {
            QbdError::Unstable {
                up_drift,
                down_drift,
            } => CoreError::UpperBoundUnstable {
                up_drift,
                down_drift,
            },
            QbdError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            } => CoreError::Interrupted {
                method,
                iterations,
                residual,
                elapsed,
            },
            QbdError::NoConvergence {
                method,
                iterations,
                residual,
            } => CoreError::NonConverged {
                method,
                iterations,
                residual,
            },
            other => CoreError::Qbd(other),
        }
    }
}

impl From<MarkovError> for CoreError {
    fn from(e: MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = CoreError::InvalidParameters {
            reason: "d > N".into(),
        };
        assert!(e.to_string().contains("d > N"));
    }

    #[test]
    fn unstable_conversion() {
        let e = CoreError::from(QbdError::Unstable {
            up_drift: 1.0,
            down_drift: 0.9,
        });
        assert!(matches!(e, CoreError::UpperBoundUnstable { .. }));
    }

    #[test]
    fn budget_conversions_keep_structure() {
        let e = CoreError::from(QbdError::Interrupted {
            method: "null_vector_gs",
            iterations: 17,
            residual: 1e-4,
            elapsed: std::time::Duration::from_millis(90),
        });
        assert!(matches!(
            e,
            CoreError::Interrupted {
                method: "null_vector_gs",
                iterations: 17,
                ..
            }
        ));
        assert!(e.to_string().starts_with("interrupted:"));
        let e = CoreError::from(QbdError::NoConvergence {
            method: "decay_rate_bisection",
            iterations: 200,
            residual: 0.5,
        });
        assert!(matches!(
            e,
            CoreError::NonConverged {
                method: "decay_rate_bisection",
                iterations: 200,
                ..
            }
        ));
        assert!(e.to_string().starts_with("nonconverged:"));
    }

    #[test]
    fn send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
