//! Full sojourn-time (delay) distributions, not just means.
//!
//! The paper reports mean delays; its machinery supports more. With
//! Poisson arrivals, PASTA lets a *tagged* arriving job see the
//! stationary state `m`, and the SQ(d) poll assigns it a server holding
//! `k` jobs with a probability determined by `m`'s tie groups (including,
//! in the bound models, the redirect rules). With exponential unit-rate
//! service and FIFO, a job landing behind `k` jobs has sojourn
//! `Erlang(k+1, 1)` — memorylessness makes the in-service remainder
//! whole. The delay law is therefore a **mixture of Erlangs**
//!
//! ```text
//! P(Delay > t) = Σ_k w_k · P(Erlang(k+1) > t),
//! w_k = Σ_m π(m) · P(tagged job assigned a server with k jobs | m)
//! ```
//!
//! For the **base** (untransformed) chain this mixture is the *exact*
//! delay law, computed here from the brute-force stationary distribution.
//! For the **bound models** the same polling kernel is integrated against
//! each model's stationary law, producing distributional companions to
//! the paper's mean bounds. One caveat matters and is worth recording:
//! unlike the waiting-job cost behind the paper's mean bounds, the
//! polling kernel is **not precedence-monotone** — e.g.
//! `(1,1,0) ⪯ (2,0,0)` yet SQ(2) assigns the tagged job a *shorter* queue
//! in the imbalanced state, because polling steers arrivals away from
//! long queues. Consequently the ⪯-ordering of the chains does not
//! transfer to these curves as a theorem. Numerically (see the tests and
//! EXPERIMENTS.md): the upper curve was a pointwise upper bound of the
//! exact survival in *every* configuration probed, while the lower curve
//! tracks the exact survival to within a few `1e-3` (occasionally
//! crossing it by that much). Treat the lower curve as a sharp estimate
//! with that error bar, not a certified bound.

use crate::combinatorics::{group_arrival_probability, group_arrival_probability_with_replacement};
use crate::{CoreError, ModelVariant, PollMode, Result, State};

/// P(Erlang(n, 1) > t) = e^{−t} Σ_{i<n} tⁱ/i!, computed by the stable
/// forward recurrence.
///
/// # Panics
///
/// Panics if `n == 0` or `t` is negative/NaN.
pub fn erlang_survival(n: usize, t: f64) -> f64 {
    assert!(n > 0, "Erlang needs at least one stage");
    assert!(t >= 0.0, "time must be nonnegative, got {t}");
    let mut term = (-t).exp();
    let mut sum = term;
    for i in 1..n {
        term *= t / i as f64;
        sum += term;
    }
    sum.min(1.0)
}

/// Probability that the tagged arrival in `state` is assigned a server
/// currently holding `level` jobs, for each reachable `level` — the
/// per-state mixture kernel. With [`ModelVariant::Base`] this is the pure
/// SQ(d) polling law; with a bound variant the threshold redirects are
/// applied (used by diagnostics; the distribution bounds themselves use
/// the base kernel, see the module docs).
pub fn arrival_level_weights(
    state: &State,
    d: usize,
    variant: ModelVariant,
    mode: PollMode,
) -> Vec<(u32, f64)> {
    let n = state.n();
    let groups = state.groups();
    let ng = groups.len();
    let at_threshold = match variant {
        ModelVariant::Base => false,
        ModelVariant::Lower { threshold } | ModelVariant::Upper { threshold } => {
            state.diff() == threshold
        }
    };
    let mut out = Vec::with_capacity(ng);
    for (gi, g) in groups.iter().enumerate() {
        let p = match mode {
            PollMode::WithoutReplacement => group_arrival_probability(n, d, g.start + 1, g.end + 1),
            PollMode::WithReplacement => {
                group_arrival_probability_with_replacement(n, d, g.start + 1, g.end + 1)
            }
        };
        if p <= 0.0 {
            continue;
        }
        let level = if at_threshold && gi == 0 {
            match variant {
                ModelVariant::Base => unreachable!("Base has no threshold"),
                // Lower model: the job jockeys to the second-highest level.
                ModelVariant::Lower { .. } => groups[1].level,
                // Upper model: the job really does join the top server;
                // the phantom jobs land on *other* servers.
                ModelVariant::Upper { .. } => groups[0].level,
            }
        } else {
            g.level
        };
        out.push((level, p));
    }
    out
}

/// A sojourn-time distribution as a mixture of Erlangs: `weights[k]` is
/// the probability that the tagged job is assigned a server already
/// holding `k` jobs, so its delay is `Erlang(k+1, 1)`.
///
/// # Example
///
/// ```
/// use slb_core::{BoundKind, Sqd};
///
/// # fn main() -> Result<(), slb_core::CoreError> {
/// let sqd = Sqd::new(3, 2, 0.7)?;
/// let lo = sqd.delay_distribution(BoundKind::Lower, 3)?;
/// let hi = sqd.delay_distribution(BoundKind::Upper, 3)?;
/// // Median and 99th-percentile delay bounds.
/// assert!(lo.quantile(0.5)? <= hi.quantile(0.5)?);
/// assert!(lo.quantile(0.99)? <= hi.quantile(0.99)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayDistribution {
    weights: Vec<f64>,
}

impl DelayDistribution {
    /// Builds the distribution from raw mixture weights, which must be
    /// nonnegative and sum to 1 within `1e-6` (small deficits from
    /// geometric-tail truncation are renormalized away).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] on negative weights or a sum far
    /// from 1.
    pub fn from_weights(mut weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(CoreError::InvalidParameters {
                reason: "mixture needs at least one weight".into(),
            });
        }
        if let Some(w) = weights.iter().find(|w| **w < -1e-12 || !w.is_finite()) {
            return Err(CoreError::InvalidParameters {
                reason: format!("invalid mixture weight {w}"),
            });
        }
        let sum: f64 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(CoreError::InvalidParameters {
                reason: format!("mixture weights sum to {sum}, expected 1"),
            });
        }
        for w in &mut weights {
            *w = (*w / sum).max(0.0);
        }
        while weights.len() > 1 && weights.last() == Some(&0.0) {
            weights.pop();
        }
        Ok(DelayDistribution { weights })
    }

    /// The mixture weights; `weights()[k]` is the probability of finding
    /// `k` jobs at the assigned server.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mean delay `Σ_k w_k (k+1)` (each Erlang stage has unit mean).
    pub fn mean(&self) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(k, w)| w * (k as f64 + 1.0))
            .sum()
    }

    /// Variance of the delay: `E[D²] − E[D]²` with
    /// `E[D²] = Σ_k w_k (k+1)(k+2)` for unit-rate Erlangs.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let m2: f64 = self
            .weights
            .iter()
            .enumerate()
            .map(|(k, w)| w * (k as f64 + 1.0) * (k as f64 + 2.0))
            .sum();
        (m2 - m * m).max(0.0)
    }

    /// Survival function `P(Delay > t)`.
    ///
    /// # Panics
    ///
    /// Panics for negative `t`.
    pub fn survival(&self, t: f64) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(k, w)| w * erlang_survival(k + 1, t))
            .sum()
    }

    /// Cumulative distribution function `P(Delay ≤ t)`.
    ///
    /// # Panics
    ///
    /// Panics for negative `t`.
    pub fn cdf(&self, t: f64) -> f64 {
        (1.0 - self.survival(t)).clamp(0.0, 1.0)
    }

    /// Probability density `Σ_k w_k tᵏ e^{−t}/k!`.
    ///
    /// # Panics
    ///
    /// Panics for negative `t`.
    pub fn pdf(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be nonnegative, got {t}");
        let mut term = (-t).exp();
        let mut density = self.weights[0] * term;
        for (k, &w) in self.weights.iter().enumerate().skip(1) {
            term *= t / k as f64;
            density += w * term;
        }
        density
    }

    /// The `p`-quantile of the delay (e.g. `p = 0.99` for the tail
    /// percentile), located by bracketed bisection to absolute `1e-10`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(p > 0.0 && p < 1.0) {
            return Err(CoreError::InvalidParameters {
                reason: format!("quantile level must be in (0, 1), got {p}"),
            });
        }
        let mut hi = 1.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e9 {
                return Err(CoreError::InvalidParameters {
                    reason: "quantile bracket failed to close".into(),
                });
            }
        }
        let mut lo = 0.0;
        while hi - lo > 1e-10 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_survival_one_stage_is_exponential() {
        for &t in &[0.0, 0.3, 1.0, 4.2] {
            assert!((erlang_survival(1, t) - (-t).exp()).abs() < 1e-14);
        }
    }

    #[test]
    fn erlang_survival_monotone_in_stages_and_time() {
        for n in 1..8 {
            assert!(erlang_survival(n, 1.3) < erlang_survival(n + 1, 1.3));
        }
        for &t in &[0.1, 0.5, 2.0] {
            assert!(erlang_survival(3, t) > erlang_survival(3, t + 0.5));
        }
        assert!((erlang_survival(5, 0.0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn mixture_basics() {
        let d = DelayDistribution::from_weights(vec![0.5, 0.3, 0.2]).unwrap();
        assert!((d.mean() - (0.5 + 0.3 * 2.0 + 0.2 * 3.0)).abs() < 1e-14);
        assert!((d.cdf(0.0)).abs() < 1e-14);
        assert!(d.cdf(50.0) > 1.0 - 1e-12);
        // CDF is monotone.
        let mut prev = 0.0;
        for i in 1..100 {
            let c = d.cdf(i as f64 * 0.2);
            assert!(c >= prev - 1e-14);
            prev = c;
        }
        // Quantile inverts the CDF.
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let q = d.quantile(p).unwrap();
            assert!((d.cdf(q) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = DelayDistribution::from_weights(vec![0.2, 0.5, 0.3]).unwrap();
        // Simpson's rule on [0, 60].
        let (a, b, steps) = (0.0, 60.0, 6000);
        let h = (b - a) / steps as f64;
        let mut integral = d.pdf(a) + d.pdf(b);
        for i in 1..steps {
            let x = a + i as f64 * h;
            integral += if i % 2 == 1 { 4.0 } else { 2.0 } * d.pdf(x);
        }
        integral *= h / 3.0;
        assert!((integral - 1.0).abs() < 1e-8, "integral {integral}");
    }

    #[test]
    fn variance_of_pure_erlang() {
        // w concentrated at k: delay = Erlang(k+1), variance k+1.
        let mut w = vec![0.0; 4];
        w[3] = 1.0;
        let d = DelayDistribution::from_weights(w).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-14);
        assert!((d.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(DelayDistribution::from_weights(vec![]).is_err());
        assert!(DelayDistribution::from_weights(vec![0.5, -0.5, 1.0]).is_err());
        assert!(DelayDistribution::from_weights(vec![0.5, 0.2]).is_err());
        let d = DelayDistribution::from_weights(vec![1.0]).unwrap();
        assert!(d.quantile(0.0).is_err());
        assert!(d.quantile(1.0).is_err());
    }

    #[test]
    fn arrival_levels_base_model() {
        // (2, 1, 0), d = 2: tagged job joins level 1 w.p. C(2,2)−C(1,2)
        // = 1/3... and level 0 w.p. 2/3 (positions ordered).
        let s = State::new(vec![2, 1, 0]).unwrap();
        let w = arrival_level_weights(&s, 2, ModelVariant::Base, PollMode::WithoutReplacement);
        let total: f64 = w.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let p_level0: f64 = w.iter().filter(|&&(l, _)| l == 0).map(|&(_, p)| p).sum();
        assert!((p_level0 - 2.0 / 3.0).abs() < 1e-12);
        // Top level (2 jobs) is unreachable with d = 2 polls.
        assert!(w.iter().all(|&(l, _)| l != 2));
    }

    #[test]
    fn arrival_levels_respect_redirects() {
        // (2, 2, 0) at T = 2: top-group arrival (prob 1/3) redirects.
        let s = State::new(vec![2, 2, 0]).unwrap();
        let low = arrival_level_weights(
            &s,
            2,
            ModelVariant::Lower { threshold: 2 },
            PollMode::WithoutReplacement,
        );
        // Lower: the redirected job joins level 0 (second/bottom group).
        let p0: f64 = low.iter().filter(|&&(l, _)| l == 0).map(|&(_, p)| p).sum();
        assert!((p0 - 1.0).abs() < 1e-12, "{low:?}");

        let up = arrival_level_weights(
            &s,
            2,
            ModelVariant::Upper { threshold: 2 },
            PollMode::WithoutReplacement,
        );
        // Upper: the job really joins the level-2 server.
        let p2: f64 = up.iter().filter(|&&(l, _)| l == 2).map(|&(_, p)| p).sum();
        assert!((p2 - 1.0 / 3.0).abs() < 1e-12, "{up:?}");
    }
}
