//! Chaos harness for `slb serve`: spawns real daemons with named fail
//! points armed through `SLB_FAULTS`/`SLB_FAULT_SEED` and proves the
//! overload-safety contract over real sockets — panicking queries
//! answer 500 while every worker survives, overload sheds queries with
//! 503 + `Retry-After` while `/healthz` stays fast, injected disk-write
//! failures never lose answers, and the same seed replays a
//! byte-identical fault schedule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use slb_cli::client;
use slb_exp::{answer, CacheStore, Json, Query};

/// A spawned `slb serve` child plus the address it reported.
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawns the real binary with extra flags and fault-injection env.
fn start_daemon(cache_dir: &std::path::Path, args: &[&str], env: &[(&str, &str)]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_slb"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"])
        .args(["--cache-dir", &cache_dir.to_string_lossy()])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn slb serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("listening line names the address")
        .to_string();
    assert!(
        line.contains("listening"),
        "unexpected first line: {line:?}"
    );
    Daemon {
        child,
        addr,
        stdout,
    }
}

fn shutdown_and_wait(mut daemon: Daemon) {
    client::post_shutdown(&daemon.addr).expect("shutdown");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            assert!(status.success(), "daemon exit: {status:?}");
            let mut rest = String::new();
            let _ = daemon.stdout.read_to_string(&mut rest);
            assert!(rest.contains("drained and shut down"), "{rest:?}");
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn stat(stats: &str, name: &str) -> f64 {
    Json::parse(stats)
        .unwrap()
        .get(name)
        .unwrap_or_else(|| panic!("/stats missing '{name}': {stats}"))
        .as_f64()
        .unwrap()
}

const BOUNDS_BODY: &str = "{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":0.6,\"t\":2}";

fn bounds_query() -> Query {
    Query::from_json(&Json::parse(BOUNDS_BODY).unwrap()).unwrap()
}

#[test]
fn panicking_queries_answer_500_and_every_worker_survives() {
    let base = std::env::temp_dir().join(format!("slb-chaos-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let daemon = start_daemon(
        &base,
        &["--threads", "2"],
        &[("SLB_FAULTS", "server.answer_panic=1")],
    );
    let addr = daemon.addr.clone();

    // Far more panics than workers: if panics killed workers, the pool
    // would be dead long before the last request.
    for _ in 0..8 {
        let (status, body) =
            client::request(&addr, "POST", "/v1/query", Some(BOUNDS_BODY)).unwrap();
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("error"), "{body}");
    }
    let (status, _) = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "liveness must survive the panic storm");
    let (_, stats) = client::request(&addr, "GET", "/stats", None).unwrap();
    assert!(stat(&stats, "panics") >= 8.0, "{stats}");
    assert_eq!(stat(&stats, "workers_alive"), 2.0, "{stats}");
    shutdown_and_wait(daemon);

    // A fresh, disarmed daemon over the same cache dir answers the
    // very query that panicked — correctly, matching direct evaluation.
    let daemon = start_daemon(&base, &["--threads", "2"], &[]);
    let served = client::post_query(&daemon.addr, &bounds_query()).unwrap();
    let local = base.join("direct");
    let direct = answer(&bounds_query(), &CacheStore::open(&local)).unwrap();
    assert_eq!(served.rows, direct.rows, "recovery must answer correctly");
    shutdown_and_wait(daemon);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn overload_sheds_queries_while_liveness_stays_fast() {
    let base = std::env::temp_dir().join(format!("slb-chaos-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    // Every admitted connection sleeps deadline/2 = 1.5s in the
    // injected slow read; with 2 workers and max-inflight 2, the
    // daemon is saturated by two occupier queries.
    let daemon = start_daemon(
        &base,
        &[
            "--threads",
            "2",
            "--max-inflight",
            "2",
            "--deadline-ms",
            "3000",
        ],
        &[("SLB_FAULTS", "server.slow_read=1")],
    );
    let addr = daemon.addr.clone();

    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                client::request(&addr, "POST", "/v1/query", Some(BOUNDS_BODY)).unwrap()
            })
        })
        .collect();
    // Let the accept loop admit both occupiers before piling on.
    std::thread::sleep(Duration::from_millis(400));

    // Over-admission queries are shed: 503, Retry-After, no queueing.
    let mut shed = 0;
    for _ in 0..4 {
        let (status, headers, body) =
            client::request_full(&addr, "POST", "/v1/query", Some(BOUNDS_BODY)).unwrap();
        if status == 503 {
            shed += 1;
            assert!(body.contains("overloaded"), "{body}");
            let retry_after = headers.iter().find(|(name, _)| name == "retry-after");
            assert!(retry_after.is_some(), "503 must carry Retry-After");
        }
    }
    assert!(shed >= 1, "expected at least one shed query");

    // Liveness and observability keep answering, promptly, mid-overload.
    let started = Instant::now();
    let (status, _) = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "/healthz slowed to {:?} under overload",
        started.elapsed()
    );
    let (status, stats) = client::request(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert!(stat(&stats, "rejected") >= shed as f64, "{stats}");

    // The occupiers finish normally (their deadline was not exceeded).
    for occupier in occupiers {
        let (status, body) = occupier.join().unwrap();
        assert_eq!(status, 200, "occupier failed: {body}");
    }
    shutdown_and_wait(daemon);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn injected_disk_write_failures_never_lose_answers() {
    let base = std::env::temp_dir().join(format!("slb-chaos-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let daemon = start_daemon(
        &base,
        &["--threads", "1"],
        &[("SLB_FAULTS", "store.disk_write=1")],
    );
    let addr = daemon.addr.clone();

    // The compute succeeds and is served even though every disk write
    // fails; the replay is a pure memory hit.
    let first = client::post_query(&addr, &bounds_query()).unwrap();
    assert_eq!(first.computed, 1);
    let replay = client::post_query(&addr, &bounds_query()).unwrap();
    assert_eq!(replay.computed, 0, "index must still replay");
    assert_eq!(replay.rows, first.rows);
    shutdown_and_wait(daemon);

    // Nothing reached disk, so a fresh (disarmed) daemon recomputes —
    // and now persists — the same answer.
    let daemon = start_daemon(&base, &["--threads", "1"], &[]);
    let recovered = client::post_query(&daemon.addr, &bounds_query()).unwrap();
    assert_eq!(
        recovered.computed, 1,
        "the armed run must not have persisted"
    );
    assert_eq!(recovered.rows, first.rows);
    shutdown_and_wait(daemon);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn injected_mid_solve_cancellation_answers_503_and_never_corrupts_cache() {
    let base = std::env::temp_dir().join(format!("slb-chaos-cancel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    // `solver.cancel` fires at the solver's own budget poll — the
    // deepest cancellation point there is, mid-iteration inside the
    // numeric loops.
    let daemon = start_daemon(
        &base,
        &["--threads", "1"],
        &[("SLB_FAULTS", "solver.cancel=1")],
    );
    let addr = daemon.addr.clone();

    let (status, body) = client::request(&addr, "POST", "/v1/query", Some(BOUNDS_BODY)).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("interrupted"), "{body}");
    let (_, stats) = client::request(&addr, "GET", "/stats", None).unwrap();
    assert!(stat(&stats, "solve_aborted") >= 1.0, "{stats}");
    assert_eq!(stat(&stats, "workers_alive"), 1.0, "{stats}");
    shutdown_and_wait(daemon);

    // Nothing partial was published: the disarmed daemon *recomputes*
    // (no cache entry to replay) and the answer matches direct
    // evaluation byte for byte.
    let daemon = start_daemon(&base, &["--threads", "1"], &[]);
    let recovered = client::post_query(&daemon.addr, &bounds_query()).unwrap();
    assert_eq!(
        recovered.computed, 1,
        "an interrupted solve must not have persisted anything"
    );
    let direct = answer(&bounds_query(), &CacheStore::open(base.join("direct"))).unwrap();
    assert_eq!(recovered.rows, direct.rows);
    shutdown_and_wait(daemon);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn cancelled_sweep_leaves_a_clean_cache_for_replay() {
    let base = std::env::temp_dir().join(format!("slb-chaos-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    std::fs::create_dir_all(&cache).unwrap();
    let spec_path = base.join("grid.toml");
    std::fs::write(
        &spec_path,
        "[scenario]\nname = \"chaos-grid\"\nfamily = \"logred-iters\"\nd = 2\n\
         [axes]\nn = [3]\nt = [2]\nrho = [0.5, 0.7, 0.9]\nkind = [\"lower\", \"upper\"]\n",
    )
    .unwrap();
    let out = base.join("grid.csv");
    let sweep = |faults: Option<&str>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_slb"));
        cmd.args(["sweep", &spec_path.to_string_lossy()])
            .args(["--cache-dir", &cache.to_string_lossy()])
            .args(["--out", &out.to_string_lossy()])
            .args(["--jobs", "2"]);
        if let Some(f) = faults {
            cmd.env("SLB_FAULTS", f);
        }
        cmd.output().expect("run slb sweep")
    };

    // Armed: every job's solver poll trips → the sweep fails with a
    // structured interrupted error, not a panic or a bogus table.
    let armed = sweep(Some("solver.cancel=1"));
    assert!(!armed.status.success());
    let stderr = String::from_utf8_lossy(&armed.stderr);
    assert!(stderr.contains("interrupted"), "{stderr}");

    // Disarmed: nothing partial was cached, so the whole grid is
    // recomputed (0 cached) — and a replay is then a pure cache hit.
    let clean = sweep(None);
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("(0 cached, 6 computed)"), "{stdout}");
    let first_csv = std::fs::read_to_string(&out).unwrap();

    let replay = sweep(None);
    assert!(replay.status.success());
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(stdout.contains("(6 cached, 0 computed)"), "{stdout}");
    assert_eq!(std::fs::read_to_string(&out).unwrap(), first_csv);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn same_seed_replays_a_byte_identical_fault_schedule() {
    const SEED: &str = "42";
    const CALLS: usize = 16;
    let spec = "server.answer_panic=0.5";

    // The pure schedule the daemons must follow.
    let expected: Vec<u16> = slb_fault::schedule(42, "server.answer_panic", 0.5, CALLS as u64)
        .into_iter()
        .map(|fires| if fires { 500 } else { 200 })
        .collect();
    assert!(expected.contains(&500) && expected.contains(&200));

    let run = |tag: &str, seed: &str| -> Vec<u16> {
        let base =
            std::env::temp_dir().join(format!("slb-chaos-seed-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        // One worker and strictly sequential requests: the per-point
        // call order is the request order.
        let daemon = start_daemon(
            &base,
            &["--threads", "1"],
            &[("SLB_FAULTS", spec), ("SLB_FAULT_SEED", seed)],
        );
        let statuses = (0..CALLS)
            .map(|_| {
                client::request(&daemon.addr, "POST", "/v1/query", Some(BOUNDS_BODY))
                    .unwrap()
                    .0
            })
            .collect();
        shutdown_and_wait(daemon);
        let _ = std::fs::remove_dir_all(&base);
        statuses
    };

    let first = run("a", SEED);
    let second = run("b", SEED);
    assert_eq!(first, expected, "daemon must follow the pure schedule");
    assert_eq!(first, second, "same seed, same schedule");
    let other = run("c", "43");
    assert_ne!(first, other, "a different seed reschedules");
}

#[test]
fn client_retries_transient_failures_but_not_client_errors() {
    // A hand-rolled one-thread server: first connection is shed with
    // 503 + Retry-After, the second succeeds — the retrying client
    // should surface only the success.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let responses = [
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 22\r\nRetry-After: 0\r\n\
             Connection: close\r\n\r\n{\"error\":\"overloaded\"}"
                .to_string(),
            "HTTP/1.1 200 OK\r\nContent-Length: 11\r\nConnection: close\r\n\r\n{\"ok\":true}"
                .to_string(),
        ];
        let mut served = 0;
        for response in &responses {
            let (mut conn, _) = listener.accept().unwrap();
            let mut drain = [0u8; 1024];
            let _ = conn.read(&mut drain);
            conn.write_all(response.as_bytes()).unwrap();
            served += 1;
        }
        served
    });

    let policy = client::RetryPolicy {
        retries: 3,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(50),
        seed: 7,
    };
    let (status, body) =
        client::request_with_retries(&addr, "POST", "/v1/query", Some("{}"), &policy).unwrap();
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
    assert_eq!(server.join().unwrap(), 2, "exactly one retry");

    // 4xx responses are final: exactly one attempt, no retries.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut drain = [0u8; 1024];
        let _ = conn.read(&mut drain);
        conn.write_all(
            b"HTTP/1.1 422 Unprocessable Entity\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}",
        )
        .unwrap();
        // A second accept would hang the test; reaching here is proof
        // enough that only one connection arrived before the client
        // returned.
    });
    let (status, _) =
        client::request_with_retries(&addr, "POST", "/v1/query", Some("bad"), &policy).unwrap();
    assert_eq!(status, 422, "client errors must not be retried");
    server.join().unwrap();

    // A dead address exhausts the retry budget and reports the
    // transport error.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead = listener.local_addr().unwrap().to_string();
    drop(listener);
    let err = client::request_with_retries(&dead, "GET", "/healthz", None, &policy).unwrap_err();
    assert!(err.contains("connecting to"), "{err}");
}
