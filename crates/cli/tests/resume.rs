//! Crash-resume determinism for `slb sweep`: a real sweep process is
//! interrupted with SIGINT mid-run, resumed with `--resume`, and must
//! recompute only the unpublished points while producing byte-identical
//! output — at any worker-thread count — to an uninterrupted run.

use std::io::Read;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A scaling-family grid whose points route through the occupancy-lumped
/// solvers (n > 12): every solve polls its budget, so the armed
/// `solver.slow_iter` fault (1 ms sleep per poll) stretches each point
/// to seconds — a wide, deterministic window for the mid-run SIGINT.
const SPEC: &str = r#"
[scenario]
name = "resume-grid"
family = "scaling"
d = 2
rho = 0.85
t = 2
jobs = 20000
seed = 5

[axes]
policy = ["sqd"]
n = [14, 15, 16, 17, 18, 19]
"#;

fn sweep_cmd(spec: &Path, cache: &Path, out: &Path, jobs: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_slb"));
    cmd.args(["sweep", &spec.to_string_lossy()])
        .args(["--cache-dir", &cache.to_string_lossy()])
        .args(["--out", &out.to_string_lossy()])
        .args(["--jobs", jobs]);
    cmd
}

fn wait_with_timeout(mut child: Child) -> (std::process::ExitStatus, String, String) {
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "sweep did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut stdout = String::new();
    let mut stderr = String::new();
    if let Some(mut s) = child.stdout.take() {
        let _ = s.read_to_string(&mut stdout);
    }
    if let Some(mut s) = child.stderr.take() {
        let _ = s.read_to_string(&mut stderr);
    }
    (status, stdout, stderr)
}

#[test]
fn sigint_mid_sweep_then_resume_is_byte_identical_at_any_thread_count() {
    let base = std::env::temp_dir().join(format!("slb-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    std::fs::create_dir_all(&cache).unwrap();
    let spec = base.join("resume.toml");
    std::fs::write(&spec, SPEC).unwrap();
    let out1 = base.join("run.csv");
    let out2 = base.join("replay.csv");

    // Run 1: slowed solves, SIGINT mid-run. The process must drain
    // gracefully (in-flight solves abort at their next budget poll),
    // checkpoint the completed points, and name --resume in the error.
    let child = sweep_cmd(&spec, &cache, &out1, "1")
        .env("SLB_FAULTS", "solver.slow_iter=1")
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn slb sweep");
    std::thread::sleep(Duration::from_millis(2500));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(kill.success());
    let (status, _, stderr) = wait_with_timeout(child);
    assert!(!status.success(), "interrupted sweep must fail: {stderr}");
    assert!(stderr.contains("interrupted after"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");
    // How many points the interrupted run banked (0 is possible if the
    // signal landed inside the very first solve).
    let done: usize = stderr
        .split("interrupted after ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable interrupt message: {stderr}"));
    assert!(done < 6, "SIGINT landed after the whole grid: {stderr}");

    // Run 2: --resume recomputes only the unpublished points.
    let child = sweep_cmd(&spec, &cache, &out1, "1")
        .arg("--resume")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn resume sweep");
    let (status, stdout, stderr) = wait_with_timeout(child);
    assert!(status.success(), "{stderr}");
    assert!(
        stdout.contains(&format!("({done} cached, {} computed)", 6 - done)),
        "expected {done} replayed / {} recomputed: {stdout}",
        6 - done
    );
    if done > 0 {
        assert!(
            stdout.contains(&format!("resumed: {done} of 6 points")),
            "{stdout}"
        );
    }
    let resumed_csv = std::fs::read_to_string(&out1).unwrap();

    // Run 3: a fresh run over the warm cache at a different thread
    // count replays everything ("0 computed") byte-identically.
    let child = sweep_cmd(&spec, &cache, &out2, "8")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn replay sweep");
    let (status, stdout, stderr) = wait_with_timeout(child);
    assert!(status.success(), "{stderr}");
    assert!(stdout.contains("(6 cached, 0 computed)"), "{stdout}");
    assert_eq!(
        std::fs::read_to_string(&out2).unwrap(),
        resumed_csv,
        "resumed and replayed outputs must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&base);
}
