//! End-to-end test of `slb serve`: spawns the real binary on an
//! ephemeral port, speaks the wire protocol over real sockets, checks
//! that served answers match direct (in-process) `slb query` answers
//! byte-for-byte, and exercises graceful shutdown both ways (the
//! `/v1/shutdown` endpoint and SIGINT).

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use slb_cli::client;
use slb_exp::{answer, CacheStore, Json, Metric, Query, SimBudget};

/// A spawned `slb serve` child plus the address it reported.
struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn start_daemon(cache_dir: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_slb"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--cache-dir",
            &cache_dir.to_string_lossy(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn slb serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    // The first line reports the resolved ephemeral port.
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("listening line names the address")
        .to_string();
    assert!(
        line.contains("listening"),
        "unexpected first line: {line:?}"
    );
    Daemon {
        child,
        addr,
        stdout,
    }
}

fn wait_exit(mut daemon: Daemon) -> (std::process::ExitStatus, String) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            let mut rest = String::new();
            let _ = daemon.stdout.read_to_string(&mut rest);
            return (status, rest);
        }
        assert!(Instant::now() < deadline, "server did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn tiny_budget() -> SimBudget {
    SimBudget {
        jobs: 20_000,
        replications: 1,
        seed: 11,
    }
}

#[test]
fn serves_queries_matching_direct_evaluation() {
    let base = std::env::temp_dir().join(format!("slb-serve-e2e-{}", std::process::id()));
    let served_cache = base.join("served");
    let local_cache = base.join("local");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&served_cache).unwrap();
    let daemon = start_daemon(&served_cache);
    let addr = daemon.addr.clone();

    // Liveness and stats.
    let (status, body) = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
    let (status, body) = client::request(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{body}");

    // A served service query answers with exactly the rows a direct
    // in-process evaluation (fresh cache, same parameters) produces.
    let service = Query::Service {
        policy: "sqd".into(),
        n: 6,
        d: 2,
        rho: 0.6,
        budget: tiny_budget(),
    };
    let served = client::post_query(&addr, &service).unwrap();
    assert_eq!(served.computed, 1);
    let direct = answer(&service, &CacheStore::open(&local_cache)).unwrap();
    assert_eq!(
        served.rows, direct.rows,
        "served rows must be byte-identical"
    );

    // Replay: the second ask is a pure cache hit.
    let replay = client::post_query(&addr, &service).unwrap();
    assert_eq!(replay.computed, 0);
    assert_eq!(replay.cache_hits, 1);
    assert_eq!(replay.rows, direct.rows);

    // A capacity query over the socket matches the local planner.
    let capacity = Query::Capacity {
        policy: "sqd".into(),
        lambda: 3.0,
        d: 2,
        metric: Metric::Mean,
        slo: 1.8,
        n_max: 64,
        budget: tiny_budget(),
    };
    let served_cap = client::post_query(&addr, &capacity).unwrap();
    let direct_cap = answer(&capacity, &CacheStore::open(&local_cache)).unwrap();
    let served_n = served_cap.capacity.as_ref().unwrap().n_required;
    assert_eq!(served_n, direct_cap.capacity.as_ref().unwrap().n_required);
    assert!(served_n.is_some(), "this SLO is feasible");
    assert_eq!(served_cap.rows, direct_cap.rows);

    // Error paths over the real socket.
    let (status, body) = client::request(&addr, "POST", "/v1/query", Some("not json")).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"));
    let (status, _) =
        client::request(&addr, "POST", "/v1/query", Some("{\"kind\":\"teleport\"}")).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::request(
        &addr,
        "POST",
        "/v1/query",
        Some("{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":1.5,\"t\":2}"),
    )
    .unwrap();
    assert_eq!(status, 422, "well-formed but unanswerable");
    let (status, _) = client::request(&addr, "GET", "/no/such/path", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "DELETE", "/healthz", None).unwrap();
    assert_eq!(status, 405);

    // Raw protocol garbage gets a 400, not a hang or a crash.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"BLARGH\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    BufReader::new(&mut raw).read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");

    // Stats reflect the traffic, then graceful endpoint shutdown.
    let (_, stats) = client::request(&addr, "GET", "/stats", None).unwrap();
    let doc = Json::parse(&stats).unwrap();
    let stat = |name: &str| {
        doc.get(name)
            .unwrap_or_else(|| panic!("/stats missing '{name}': {stats}"))
            .as_f64()
            .unwrap()
    };
    assert!(stat("requests") >= 8.0, "{stats}");
    assert!(stat("cache_hits") >= 1.0, "{stats}");
    // Robustness gauges: present, and quiet under normal traffic.
    assert_eq!(stat("rejected"), 0.0, "{stats}");
    assert_eq!(stat("panics"), 0.0, "{stats}");
    assert_eq!(stat("workers_alive"), 2.0, "{stats}");
    assert_eq!(stat("max_inflight"), 8.0, "4x the 2 threads: {stats}");
    assert_eq!(stat("evicted"), 0.0, "{stats}");
    let in_flight = stat("in_flight");
    assert!(
        (1.0..=8.0).contains(&in_flight),
        "the /stats request itself is admitted: {stats}"
    );
    assert!(stat("queue_depth") <= 8.0, "{stats}");
    client::post_shutdown(&addr).unwrap();
    let (status, rest) = wait_exit(daemon);
    assert!(status.success(), "server exit: {status:?}");
    assert!(rest.contains("drained and shut down"), "{rest:?}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn over_deadline_solve_aborts_mid_iteration_and_frees_the_worker() {
    let base = std::env::temp_dir().join(format!("slb-serve-abort-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    // A short deadline the N = 24 lumped solve cannot possibly meet
    // in a debug build. (CI's release-build cancel-smoke job runs the
    // same check at the production N = 64.)
    let mut child = Command::new(env!("CARGO_BIN_EXE_slb"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--deadline-ms",
            "250",
            "--cache-dir",
            &base.to_string_lossy(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn slb serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line.trim().rsplit("http://").next().unwrap().to_string();
    let daemon = Daemon {
        child,
        addr: addr.clone(),
        stdout,
    };

    // A query worth seconds of solve against a 250 ms budget. The
    // budget threaded into the solve must abort it mid-iteration and
    // answer 503 promptly — not after the full solve.
    let big = "{\"kind\":\"bounds\",\"n\":24,\"d\":2,\"rho\":0.9,\"t\":4,\
               \"jobs\":20000,\"replications\":1,\"seed\":7}";
    let started = Instant::now();
    let (status, body) = client::request(&addr, "POST", "/v1/query", Some(big)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("interrupted"), "{body}");
    assert!(
        elapsed < Duration::from_millis(250 + 1500),
        "503 must arrive within deadline + poll latency, took {elapsed:?}"
    );

    // The worker was freed, not wedged: the abort is counted, every
    // worker is alive, and a small query still answers immediately.
    let (_, stats) = client::request(&addr, "GET", "/stats", None).unwrap();
    let doc = Json::parse(&stats).unwrap();
    let stat = |name: &str| doc.get(name).unwrap().as_f64().unwrap();
    assert!(stat("solve_aborted") >= 1.0, "{stats}");
    assert_eq!(stat("workers_alive"), 2.0, "{stats}");
    let small = Query::Bounds {
        n: 3,
        d: 2,
        rho: 0.6,
        t: 2,
        budget: tiny_budget(),
    };
    let answered = client::post_query(&addr, &small).unwrap();
    assert_eq!(answered.computed, 1, "worker must still answer queries");

    client::post_shutdown(&addr).unwrap();
    let (status, _) = wait_exit(daemon);
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sigint_shuts_down_gracefully() {
    let base = std::env::temp_dir().join(format!("slb-serve-sig-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let daemon = start_daemon(&base);
    let (status, _) = client::request(&daemon.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    let kill = Command::new("kill")
        .args(["-INT", &daemon.child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(kill.success());
    let (status, rest) = wait_exit(daemon);
    assert!(status.success(), "SIGINT exit: {status:?}");
    assert!(rest.contains("drained and shut down"), "{rest:?}");
    let _ = std::fs::remove_dir_all(&base);
}
