//! `slb` — command-line interface to the finite-regime randomized
//! load-balancing toolkit.
//!
//! ```text
//! slb bounds    --n 3 --d 2 --rho 0.7 --t 3        mean-delay bounds at one point
//! slb sweep     experiments/fig10.toml --smoke     declarative scenario sweep
//! slb query     --kind capacity --lambda 40 ...    one typed query (local or --addr)
//! slb serve     --addr 127.0.0.1:7077              capacity-planning service
//! slb dist      --n 3 --d 2 --rho 0.7 --t 3        delay percentile bounds
//! slb simulate  --n 3 --d 2 --rho 0.7 --jobs 1e6   discrete-event simulation
//! slb sigma     --law erlang --k 2 --rho 0.7       Theorem-2 decay root σ
//! slb meanfield --d 2 --rho 0.9                    N = ∞ fixed point + relaxation
//! slb burst     --n 3 --d 2 --rho 0.7 --t 3 ...    bounds under MMPP arrivals
//! ```
//!
//! Every subcommand prints an aligned table; `--csv <path>` additionally
//! writes it as CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
slb — finite-regime randomized load balancing (ICDCS 2016 reproduction)

USAGE: slb <COMMAND> [FLAGS]

COMMANDS:
  bounds     Lower/upper mean-delay bounds, asymptotic and brute force at one point
             --n <servers> --d <choices> --rho <utilization> --t <threshold>
  sweep      Run a declarative scenario sweep (cached, multithreaded)
             <spec.toml> [--smoke] [--threads N (alias --jobs)]
             [--out file.csv|file.json] [--check] [--no-cache]
             [--cache-dir dir]  (simulation budget comes from the spec)
             Flag-only form sweeps one Figure-10 panel:
             --n --d --t [--points 9] [--csv out.csv]
  query      Answer one typed query: bounds, service percentiles, or the
             smallest N meeting a delay SLO (capacity planning)
             --kind bounds|service|capacity, then per kind:
               bounds:   --n --d --rho --t
               service:  --policy sqd|jsq --n --d --rho
               capacity: --policy --lambda --d --metric mean|p50|p90|p99
                         --slo --n-max
             [--jobs N --replications R --seed S] simulation budget
             [--addr host:port] ask a running server instead of solving
             [--retries N] retry connect failures/503s with backoff (default 2)
             [--cache-dir dir] [--json] [--check]
  serve      Long-running capacity-planning service (HTTP/1.1 on std::net)
             [--addr 127.0.0.1:7077] [--threads N] [--cache-dir dir]
             [--max-inflight N] admitted connections (default 4x threads)
             [--deadline-ms MS] total per-request wall budget (default 10000)
             [--index-cap N] in-process index bound (default 4096)
             Endpoints: GET /healthz, GET /stats, POST /v1/query,
             POST /v1/shutdown; SIGINT/SIGTERM drain and exit
             Overload sheds /v1/query with 503 + Retry-After; /healthz
             and /stats keep answering. SLB_FAULTS/SLB_FAULT_SEED arm
             deterministic fault injection (chaos testing)
  dist       Delay percentile bounds (median/p90/p99 by default)
             --n --d --rho --t [--percentiles 0.5,0.9,0.99]
  simulate   Discrete-event simulation of a dispatch policy
             --n --rho [--policy sqd|random|jsq|rr|jiq|sqd-mem] [--d 2]
             [--jobs 1000000] [--warmup jobs/10] [--seed 1]
  sigma      Theorem-2 decay root σ for renewal arrivals
             --law <poisson|erlang|deterministic|hyperexp> --rho <ρ>
             [--k 2] [--p 0.5] [--r1 0.5] [--r2 2.0]
  meanfield  Mean-field (N = ∞) fixed point and relaxation time
             --d --rho [--kmax 8]
  burst      Bounds under 2-phase MMPP arrivals (MAP extension)
             --n --d --rho --t [--r01 0.5] [--r10 0.5] [--l0 0.5] [--l1 1.5]

GLOBAL FLAGS:
  --csv <path>   also write the table as CSV
  --help         this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let rest = &args[1..];
    let result = match cmd {
        "bounds" => commands::bounds(rest),
        "sweep" => commands::sweep(rest),
        "query" => commands::query(rest),
        "serve" => commands::serve(rest),
        "dist" => commands::dist(rest),
        "simulate" => commands::simulate(rest),
        "sigma" => commands::sigma(rest),
        "meanfield" => commands::meanfield(rest),
        "burst" => commands::burst(rest),
        other => {
            eprintln!("error: unknown command '{other}'\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
