//! Subcommand implementations. Each takes the flag slice after the
//! command word, prints an aligned table, and optionally writes CSV.

use slb_bench::{arg_parse, arg_value, f4, Table};
use slb_core::brute::BruteForce;
use slb_core::meanfield::MeanField;
use slb_core::sigma::{solve_sigma, Interarrival};
use slb_core::{asymptotic, BoundKind, Sqd};
use slb_exp::json::Json;
use slb_mapph::MapSqd;
use slb_markov::Map;
use slb_sim::{Policy, SimConfig};

type CmdResult = Result<(), String>;

fn finish(table: &Table, args: &[String]) -> CmdResult {
    print!("{}", table.to_aligned());
    if let Some(path) = arg_value(args, "--csv") {
        table
            .write_csv(&path)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn parse_percentiles(args: &[String]) -> Result<Vec<f64>, String> {
    let raw = arg_value(args, "--percentiles").unwrap_or_else(|| "0.5,0.9,0.99".into());
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad percentile '{s}'"))
        })
        .collect()
}

/// `slb bounds` — one-point bounds with the exact (brute-force) value.
pub fn bounds(args: &[String]) -> CmdResult {
    let n: usize = arg_parse(args, "--n", 3);
    let d: usize = arg_parse(args, "--d", 2);
    let rho: f64 = arg_parse(args, "--rho", 0.7);
    let t: u32 = arg_parse(args, "--t", 3);
    let sqd = Sqd::new(n, d, rho).map_err(|e| e.to_string())?;

    let lb = sqd.lower_bound(t).map_err(|e| e.to_string())?;
    let ub = sqd.upper_bound(t).map(|r| f4(r.delay));
    let asym = sqd.asymptotic_delay();
    // Brute force only where the state space stays small.
    let exact = if n <= 5 {
        let cap = if rho > 0.9 { 60 } else { 35 };
        BruteForce::solve(n, d, rho, cap)
            .map(|b| f4(b.mean_delay()))
            .unwrap_or_else(|_| "-".into())
    } else {
        "-".into()
    };

    println!("SQ({d}) mean delay, N = {n}, rho = {rho}, T = {t}\n");
    let mut table = Table::new(["metric", "value"]);
    table.push(["lower bound", &f4(lb.delay)]);
    table.push(["exact (brute force)", &exact]);
    table.push([
        "upper bound",
        &ub.unwrap_or_else(|_| "unstable (raise --t)".into()),
    ]);
    table.push(["asymptotic (Eq. 16)", &f4(asym)]);
    table.push(["level states", &lb.level_states.to_string()]);
    finish(&table, args)
}

/// `slb sweep` — either the declarative engine (`slb sweep <spec.toml>`)
/// or, with flags only, the legacy one-panel utilization sweep.
pub fn sweep(args: &[String]) -> CmdResult {
    match args.first() {
        Some(first) if !first.starts_with("--") => sweep_spec(first, &args[1..]),
        _ => sweep_panel(args),
    }
}

/// `slb sweep <spec.toml>` — run a committed scenario file through the
/// cached, multithreaded sweep engine (`slb-exp`).
fn sweep_spec(path: &str, args: &[String]) -> CmdResult {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = slb_exp::ScenarioSpec::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    let defaults = slb_exp::SweepOptions::default();
    // `--jobs` here is the *worker-thread* count (the deleted figure
    // binaries used the same flag for the simulation budget, which now
    // lives in the spec's `jobs` parameter) — reject values that only
    // make sense as a budget instead of silently clamping them.
    let threads = arg_parse(
        args,
        "--threads",
        arg_parse(args, "--jobs", defaults.threads),
    );
    if threads == 0 || threads > 1024 {
        return Err(format!(
            "--jobs/--threads {threads} is the worker-thread count (1..=1024); the \
             simulation budget per grid point is the spec's 'jobs' parameter"
        ));
    }
    let opts = slb_exp::SweepOptions {
        threads,
        smoke: args.iter().any(|a| a == "--smoke"),
        cache: !args.iter().any(|a| a == "--no-cache"),
        cache_dir: arg_value(args, "--cache-dir").map(std::path::PathBuf::from),
        check: args.iter().any(|a| a == "--check"),
        resume: args.iter().any(|a| a == "--resume"),
        cancel: None,
        // Ctrl-C cancels the run gracefully: in-flight solves abort at
        // their next budget poll, completed points are checkpointed,
        // and the error names `--resume` as the way to continue.
        watch_sigint: true,
    };
    // Chaos harness opt-in (SLB_FAULTS / SLB_FAULT_SEED), as in
    // `slb serve`: a no-op unless the environment arms fail points.
    slb_fault::arm_from_env();
    sigint::install();

    let started = std::time::Instant::now();
    let report = slb_exp::run_sweep(&spec, &opts)?;
    let elapsed = started.elapsed();

    print!(
        "{}",
        slb_exp::output::to_aligned(&report.columns, &report.rows)
    );
    if report.resumed > 0 {
        println!(
            "\nresumed: {} of {} points were checkpointed by an interrupted run",
            report.resumed, report.jobs
        );
    }
    println!(
        "\n{}{}: {} rows from {} grid points ({} cached, {} computed) in {:.2}s",
        spec.name,
        if opts.smoke { " [smoke]" } else { "" },
        report.rows.len(),
        report.jobs,
        report.cache_hits,
        report.computed,
        elapsed.as_secs_f64()
    );
    if opts.check {
        println!(
            "sandwich check: lower <= sim/exact <= upper holds on {} rows",
            report.checked_rows
        );
    }

    let out = arg_value(args, "--out").unwrap_or_else(|| format!("{}.csv", spec.name));
    let body = if out.ends_with(".json") {
        slb_exp::output::to_json(&report.columns, &report.rows)
    } else {
        slb_exp::output::to_csv(&report.columns, &report.rows)
    };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(&out, body).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// The legacy flag form: bounds across utilizations (a Figure-10 panel).
fn sweep_panel(args: &[String]) -> CmdResult {
    let n: usize = arg_parse(args, "--n", 3);
    let d: usize = arg_parse(args, "--d", 2);
    let t: u32 = arg_parse(args, "--t", 3);
    let points: usize = arg_parse(args, "--points", 9);
    if points < 2 {
        return Err("need at least 2 sweep points".into());
    }

    println!("SQ({d}) delay bounds vs utilization, N = {n}, T = {t}\n");
    let mut table = Table::new(["rho", "lower", "upper", "asymptotic"]);
    for i in 1..=points {
        let rho = i as f64 / (points as f64 + 1.0);
        let sqd = Sqd::new(n, d, rho).map_err(|e| e.to_string())?;
        let lb = sqd.lower_bound(t).map_err(|e| e.to_string())?;
        let ub = sqd
            .upper_bound(t)
            .map_or("unstable".to_string(), |r| f4(r.delay));
        table.push([f4(rho), f4(lb.delay), ub, f4(sqd.asymptotic_delay())]);
    }
    finish(&table, args)
}

/// `slb serve` — run the long-running capacity-planning service until
/// SIGINT/SIGTERM or a `POST /v1/shutdown`.
pub fn serve(args: &[String]) -> CmdResult {
    let defaults = slb_cli::ServeOptions::default();
    let opts = slb_cli::ServeOptions {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7077".into()),
        threads: arg_parse(args, "--threads", defaults.threads),
        cache_dir: arg_value(args, "--cache-dir").map(std::path::PathBuf::from),
        // 0 = "4x threads" / "default cap" sentinels, as in ServeOptions.
        max_inflight: arg_parse(args, "--max-inflight", defaults.max_inflight),
        deadline_ms: arg_parse(args, "--deadline-ms", defaults.deadline_ms),
        index_cap: arg_parse(args, "--index-cap", defaults.index_cap),
    };
    if opts.threads == 0 || opts.threads > 1024 {
        return Err(format!(
            "--threads {} is the pool worker count (1..=1024)",
            opts.threads
        ));
    }
    if opts.deadline_ms == 0 {
        return Err("--deadline-ms must be at least 1".into());
    }
    // Chaos harness opt-in: arm named fail points from SLB_FAULTS /
    // SLB_FAULT_SEED (a no-op in normal operation).
    slb_fault::arm_from_env();
    sigint::install();
    let server = slb_cli::Server::bind(&opts)?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    println!("slb serve: listening on http://{addr}");
    println!("slb serve: cache root {}", server.cache_root().display());
    // The port line is how scripts (and the integration tests) find an
    // ephemeral-port server: make sure it is out before blocking.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.run()?;
    println!("slb serve: drained and shut down");
    Ok(())
}

/// Builds a [`slb_exp::Query`] from `slb query` flags by assembling the
/// same JSON document the wire protocol uses — one parser, one set of
/// defaults, identical validation everywhere.
fn build_query(args: &[String]) -> Result<slb_exp::Query, String> {
    let mut fields = vec![(
        "kind".to_string(),
        Json::Str(arg_value(args, "--kind").unwrap_or_else(|| "bounds".into())),
    )];
    for (flag, key) in [
        ("--n", "n"),
        ("--d", "d"),
        ("--rho", "rho"),
        ("--t", "t"),
        ("--lambda", "lambda"),
        ("--slo", "slo"),
        ("--n-max", "n_max"),
        ("--jobs", "jobs"),
        ("--replications", "replications"),
        ("--seed", "seed"),
    ] {
        if let Some(raw) = arg_value(args, flag) {
            let value: f64 = raw
                .parse()
                .map_err(|_| format!("{flag} expects a number, got '{raw}'"))?;
            fields.push((key.to_string(), Json::Num(value)));
        }
    }
    for (flag, key) in [("--policy", "policy"), ("--metric", "metric")] {
        if let Some(raw) = arg_value(args, flag) {
            fields.push((key.to_string(), Json::Str(raw)));
        }
    }
    slb_exp::Query::from_json(&Json::Obj(fields))
}

/// `slb query` — answer one typed query, either locally (sharing the
/// sweep cache) or against a running `slb serve` (`--addr`).
pub fn query(args: &[String]) -> CmdResult {
    let q = build_query(args)?;
    let answer = match arg_value(args, "--addr") {
        Some(addr) => {
            let policy =
                slb_cli::client::RetryPolicy::with_retries(arg_parse(args, "--retries", 2));
            slb_cli::client::post_query_with_retries(&addr, &q, &policy)?
        }
        None => {
            let store = match arg_value(args, "--cache-dir") {
                Some(dir) => slb_exp::CacheStore::open(dir),
                None => slb_exp::CacheStore::open_default(),
            };
            slb_exp::answer(&q, &store)?
        }
    };

    if args.iter().any(|a| a == "--json") {
        println!("{}", answer.to_json().render());
        return Ok(());
    }

    print!(
        "{}",
        slb_exp::output::to_aligned(&answer.columns, &answer.rows)
    );
    println!(
        "\n{} query: {} cached evaluation(s), {} computed",
        answer.kind, answer.cache_hits, answer.computed
    );
    if let Some(cap) = &answer.capacity {
        match (cap.n_required, cap.achieved) {
            (Some(n), Some(achieved)) => {
                if let slb_exp::Query::Capacity {
                    lambda,
                    metric,
                    slo,
                    ..
                } = &q
                {
                    println!(
                        "capacity: N = {n} serves lambda = {lambda} with {} = {} (slo {slo}), \
                         {} probe(s)",
                        metric.as_str(),
                        f4(achieved),
                        cap.evaluations.len()
                    );
                }
            }
            _ => println!(
                "capacity: infeasible within the search ceiling ({} probe(s))",
                cap.evaluations.len()
            ),
        }
    }
    match &answer.sandwich {
        Some(Ok(rows)) => println!("sandwich check: lower <= sim <= upper holds on {rows} row(s)"),
        Some(Err(e)) => {
            println!("sandwich check FAILED: {e}");
            if args.iter().any(|a| a == "--check") {
                return Err(format!("sandwich violated: {e}"));
            }
        }
        None => {}
    }
    Ok(())
}

/// `slb dist` — percentile bounds from the delay distributions.
pub fn dist(args: &[String]) -> CmdResult {
    let n: usize = arg_parse(args, "--n", 3);
    let d: usize = arg_parse(args, "--d", 2);
    let rho: f64 = arg_parse(args, "--rho", 0.7);
    let t: u32 = arg_parse(args, "--t", 3);
    let ps = parse_percentiles(args)?;
    let sqd = Sqd::new(n, d, rho).map_err(|e| e.to_string())?;

    let lo = sqd
        .delay_distribution(BoundKind::Lower, t)
        .map_err(|e| e.to_string())?;
    let hi = sqd.delay_distribution(BoundKind::Upper, t).ok();

    println!("SQ({d}) delay percentiles, N = {n}, rho = {rho}, T = {t}\n");
    let mut table = Table::new(["p", "lower", "upper"]);
    for &p in &ps {
        let ql = lo.quantile(p).map_err(|e| e.to_string())?;
        let qh = hi
            .as_ref()
            .map(|h| h.quantile(p).map(f4).map_err(|e| e.to_string()))
            .transpose()?
            .unwrap_or_else(|| "unstable".into());
        table.push([format!("{p}"), f4(ql), qh]);
    }
    println!(
        "mean: lower {} / upper {}\n",
        f4(lo.mean()),
        hi.map_or("unstable".into(), |h| f4(h.mean()))
    );
    finish(&table, args)
}

fn parse_policy(args: &[String], d: usize) -> Result<Policy, String> {
    let raw = arg_value(args, "--policy").unwrap_or_else(|| "sqd".into());
    match raw.as_str() {
        "sqd" => Ok(Policy::SqD { d }),
        "sqd-replace" => Ok(Policy::SqDReplace { d }),
        "sqd-mem" => Ok(Policy::SqDMemory { d }),
        "random" => Ok(Policy::Random),
        "jsq" => Ok(Policy::Jsq),
        "rr" => Ok(Policy::RoundRobin),
        "jiq" => Ok(Policy::Jiq),
        other => Err(format!(
            "unknown policy '{other}' (try sqd, sqd-replace, sqd-mem, random, jsq, rr, jiq)"
        )),
    }
}

/// `slb simulate` — one simulation run with percentile readouts.
pub fn simulate(args: &[String]) -> CmdResult {
    let n: usize = arg_parse(args, "--n", 3);
    let d: usize = arg_parse(args, "--d", 2);
    let rho: f64 = arg_parse(args, "--rho", 0.7);
    let jobs: u64 = arg_parse(args, "--jobs", 1_000_000);
    let warmup: u64 = arg_parse(args, "--warmup", jobs / 10);
    let seed: u64 = arg_parse(args, "--seed", 1);
    let policy = parse_policy(args, d)?;

    let res = SimConfig::new(n, rho)
        .map_err(|e| e.to_string())?
        .policy(policy)
        .jobs(jobs)
        .warmup(warmup)
        .seed(seed)
        .run()
        .map_err(|e| e.to_string())?;

    println!(
        "{policy:?}, N = {n}, rho = {rho}: {} jobs measured\n",
        res.jobs_measured
    );
    let mut table = Table::new(["metric", "value"]);
    table.push(["mean delay", &f4(res.mean_delay)]);
    table.push(["95% CI halfwidth", &f4(res.ci_halfwidth)]);
    table.push(["mean jobs in system", &f4(res.mean_jobs_in_system)]);
    for &p in &parse_percentiles(args)? {
        let q = res
            .delay_quantile(p)
            .ok_or_else(|| "no jobs measured".to_string())?;
        table.push([format!("p{:02.0} delay", p * 100.0), f4(q)]);
    }
    table.push(["max queue length", &res.max_queue_len.to_string()]);
    finish(&table, args)
}

/// `slb sigma` — the Theorem-2 root for a renewal interarrival law.
pub fn sigma(args: &[String]) -> CmdResult {
    let rho: f64 = arg_parse(args, "--rho", 0.7);
    if !(rho > 0.0 && rho < 1.0) {
        return Err(format!("need 0 < rho < 1, got {rho}"));
    }
    let law = arg_value(args, "--law").unwrap_or_else(|| "poisson".into());
    // Laws are normalized to mean interarrival 1/ρ (unit service rate,
    // single-server scaling as in Theorem 2).
    let inter = match law.as_str() {
        "poisson" => Interarrival::Exponential { rate: rho },
        "erlang" => {
            let k: u32 = arg_parse(args, "--k", 2);
            Interarrival::Erlang {
                k,
                rate: f64::from(k) * rho,
            }
        }
        "deterministic" => Interarrival::Deterministic { gap: 1.0 / rho },
        "hyperexp" => {
            let p: f64 = arg_parse(args, "--p", 0.5);
            let r1: f64 = arg_parse(args, "--r1", 0.5);
            let r2: f64 = arg_parse(args, "--r2", 2.0);
            // Rescale both rates so the mean becomes 1/ρ.
            let mean = p / r1 + (1.0 - p) / r2;
            let c = mean * rho;
            Interarrival::HyperExp {
                p,
                rate1: r1 * c,
                rate2: r2 * c,
            }
        }
        other => {
            return Err(format!(
                "unknown law '{other}' (try poisson, erlang, deterministic, hyperexp)"
            ))
        }
    };
    let sigma = solve_sigma(&inter, 1.0).map_err(|e| e.to_string())?;

    println!("Theorem-2 decay root for {law} arrivals at rho = {rho}\n");
    let mut table = Table::new(["metric", "value"]);
    table.push(["sigma", &format!("{sigma:.10}")]);
    table.push(["rho (Poisson reference)", &format!("{rho:.10}")]);
    table.push(["GI/M/1 mean delay 1/(1-sigma)", &f4(1.0 / (1.0 - sigma))]);
    finish(&table, args)
}

/// `slb meanfield` — fixed point and relaxation of the fluid limit.
pub fn meanfield(args: &[String]) -> CmdResult {
    let d: usize = arg_parse(args, "--d", 2);
    let rho: f64 = arg_parse(args, "--rho", 0.9);
    let k_max: usize = arg_parse(args, "--kmax", 8);

    let mut mf = MeanField::new(rho, d).map_err(|e| e.to_string())?;
    let relax = mf
        .run_to_equilibrium(1e-8, 0.05, 1_000_000.0)
        .map_err(|e| e.to_string())?;

    println!("Mean-field SQ({d}) at rho = {rho} (empty start)\n");
    let mut table = Table::new(["k", "s_k (ODE)", "s_k (Eq. 16)"]);
    for k in 1..=k_max {
        let ode = mf.tail_fractions().get(k - 1).copied().unwrap_or(0.0);
        let closed = asymptotic::tail_fraction(rho, d, k as u32);
        table.push([k.to_string(), format!("{ode:.8}"), format!("{closed:.8}")]);
    }
    println!(
        "relaxation time to 1e-8 residual: {}\nmean delay: {} (Eq. 16: {})\n",
        f4(relax),
        f4(mf.mean_delay()),
        f4(asymptotic::mean_delay(rho, d))
    );
    finish(&table, args)
}

/// `slb burst` — MAP-modulated bounds (2-phase MMPP).
pub fn burst(args: &[String]) -> CmdResult {
    let n: usize = arg_parse(args, "--n", 3);
    let d: usize = arg_parse(args, "--d", 2);
    let rho: f64 = arg_parse(args, "--rho", 0.7);
    let t: u32 = arg_parse(args, "--t", 3);
    let r01: f64 = arg_parse(args, "--r01", 0.5);
    let r10: f64 = arg_parse(args, "--r10", 0.5);
    let l0: f64 = arg_parse(args, "--l0", 0.5);
    let l1: f64 = arg_parse(args, "--l1", 1.5);

    let map = Map::mmpp2(r01, r10, l0, l1).map_err(|e| e.to_string())?;
    let scv = map.interarrival_scv().map_err(|e| e.to_string())?;
    let model = MapSqd::with_utilization(n, d, &map, rho).map_err(|e| e.to_string())?;
    let lb = model.lower_bound(t).map_err(|e| e.to_string())?;
    let ub = model.upper_bound(t);
    let poisson = Sqd::new(n, d, rho)
        .and_then(|s| s.lower_bound(t))
        .map_err(|e| e.to_string())?;

    println!("SQ({d}) under MMPP({r01}, {r10}, {l0}, {l1}) at rho = {rho}, N = {n}, T = {t}\n");
    let mut table = Table::new(["metric", "value"]);
    table.push(["interarrival SCV", &f4(scv)]);
    table.push(["lower bound", &f4(lb.delay)]);
    table.push([
        "upper bound",
        &ub.map_or("unstable (raise --t)".into(), |r| f4(r.delay)),
    ]);
    table.push(["tail decay sp(R)", &f4(lb.tail_decay)]);
    table.push(["Poisson lower bound (reference)", &f4(poisson.delay)]);
    finish(&table, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn all_commands_run_on_defaults() {
        assert_eq!(bounds(&argv("--n 3 --d 2 --rho 0.6 --t 2")), Ok(()));
        assert_eq!(sweep(&argv("--points 3 --t 2")), Ok(()));
        assert_eq!(dist(&argv("--rho 0.6 --t 2")), Ok(()));
        assert_eq!(
            simulate(&argv("--jobs 20000 --warmup 2000 --rho 0.6")),
            Ok(())
        );
        assert_eq!(sigma(&argv("--law erlang --k 2 --rho 0.7")), Ok(()));
        assert_eq!(meanfield(&argv("--d 2 --rho 0.7 --kmax 4")), Ok(()));
        assert_eq!(burst(&argv("--rho 0.5 --t 2")), Ok(()));
    }

    #[test]
    fn spec_sweep_runs_and_writes_output() {
        let dir = std::env::temp_dir().join(format!("slb-cli-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("mini.toml");
        std::fs::write(
            &spec_path,
            "[scenario]\nname = \"mini\"\nfamily = \"theorem3\"\n\
             [axes]\nn = [3]\nd = [2]\nrho = [0.7]\nt = [2]\nzip = [\"n\", \"d\", \"rho\", \"t\"]\n",
        )
        .unwrap();
        let out = dir.join("mini.json");
        let args: Vec<String> = vec![
            spec_path.to_string_lossy().into_owned(),
            "--jobs".into(),
            "2".into(),
            "--no-cache".into(),
            "--check".into(),
            "--out".into(),
            out.to_string_lossy().into_owned(),
        ];
        assert_eq!(sweep(&args), Ok(()));
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.trim_start().starts_with('['), "json output: {body}");
        assert!(sweep(&argv("no-such-spec.toml")).is_err());
        // A simulation-budget-sized --jobs is the old binaries' flag
        // misapplied: reject loudly instead of clamping.
        let mut budget_args = args.clone();
        budget_args[2] = "2000000".into();
        let err = sweep(&budget_args).unwrap_err();
        assert!(err.contains("worker-thread count"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_inputs_reported_not_panicked() {
        assert!(bounds(&argv("--rho 1.5")).is_err());
        assert!(sweep(&argv("--points 1")).is_err());
        assert!(sigma(&argv("--law weird")).is_err());
        assert!(sigma(&argv("--rho 1.2")).is_err());
        assert!(simulate(&argv("--policy nope")).is_err());
        assert!(meanfield(&argv("--rho 0.0")).is_err());
    }

    #[test]
    fn percentile_parsing() {
        let args = argv("--percentiles 0.1,0.5,0.999");
        assert_eq!(parse_percentiles(&args).unwrap(), vec![0.1, 0.5, 0.999]);
        let bad = argv("--percentiles a,b");
        assert!(parse_percentiles(&bad).is_err());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy(&argv("--policy jsq"), 2).unwrap(), Policy::Jsq);
        assert_eq!(
            parse_policy(&argv("--policy sqd-mem"), 3).unwrap(),
            Policy::SqDMemory { d: 3 }
        );
        assert_eq!(parse_policy(&argv(""), 2).unwrap(), Policy::SqD { d: 2 });
        assert!(parse_policy(&argv("--policy x"), 2).is_err());
    }

    #[test]
    fn sigma_laws_ordering() {
        // Smoother arrivals (Erlang, deterministic) ⇒ smaller σ than
        // Poisson; burstier (hyperexp) ⇒ larger.
        let rho = 0.7;
        let sig = |inter: &Interarrival| solve_sigma(inter, 1.0).unwrap();
        let poisson = sig(&Interarrival::Exponential { rate: rho });
        assert!((poisson - rho).abs() < 1e-10); // Theorem 3
        let erlang = sig(&Interarrival::Erlang {
            k: 4,
            rate: 4.0 * rho,
        });
        let det = sig(&Interarrival::Deterministic { gap: 1.0 / rho });
        assert!(det < erlang && erlang < poisson);
    }
}
