//! # slb-cli
//!
//! Library side of the `slb` command-line tool: the serving stack
//! behind `slb serve` and `slb query --addr`.
//!
//! - [`http`] — the hand-rolled HTTP/1.1 subset (offline build: no
//!   hyper, no tokio; plain `std::net` blocking sockets);
//! - [`server`] — the long-running capacity-planning daemon: a
//!   [`slb_exp::CacheStore`]-backed, [`slb_exp::WorkPool`]-scheduled
//!   accept loop answering typed [`slb_exp::Query`]s;
//! - [`client`] — the matching one-shot client.
//!
//! The binary's subcommands live in the binary target (`src/main.rs`);
//! this library exists so integration tests and benchmarks can drive a
//! real in-process server and speak the wire protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use server::{ServeOptions, Server};
