//! A deliberately small HTTP/1.1 subset: exactly what `slb serve` and
//! `slb query` need to speak to each other over `std::net`, hand-rolled
//! because the build environment is offline (no hyper/axum).
//!
//! Supported: request line + headers + `Content-Length`-delimited
//! bodies, JSON responses, `Connection: close` on every exchange (one
//! request per connection — the clients are local and short-lived, so
//! keep-alive buys nothing but idle-socket bookkeeping). Unsupported on
//! purpose: chunked transfer, continuations, TLS, multi-valued headers.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size.
const MAX_BODY: usize = 1024 * 1024;

/// A [`Read`] adapter over a [`TcpStream`] that enforces one **total
/// wall-clock deadline** across every read, not a per-read timeout.
///
/// A per-read timeout alone leaves a slow-loris hole: a client dripping
/// one byte per timeout window holds a connection (and its worker)
/// forever while each individual read "succeeds in time". This adapter
/// closes it by shrinking the socket's read timeout to the *remaining*
/// budget before every raw read, so the sum of all reads can never
/// exceed the deadline. Once the budget is spent, reads fail with
/// [`std::io::ErrorKind::TimedOut`].
pub struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl<'a> DeadlineStream<'a> {
    /// Wraps `stream`, enforcing `deadline` across all future reads.
    pub fn new(stream: &'a TcpStream, deadline: Instant) -> Self {
        DeadlineStream { stream, deadline }
    }

    /// Time left before the deadline (`None` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.checked_duration_since(Instant::now())
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let Some(remaining) = self.remaining() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        };
        self.stream.set_read_timeout(Some(remaining))?;
        match self.stream.read(buf) {
            // Platform-dependent spelling of "the timeout elapsed".
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ))
            }
            other => other,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as received (path + optional query string).
    pub path: String,
    /// Decoded body (empty when the request carried none).
    pub body: String,
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte
/// (the client closed an idle connection — not an error).
///
/// # Errors
///
/// Returns a message describing the malformation (the server turns
/// these into 400 responses).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, String> {
    let request_line = match read_line(reader, MAX_HEAD)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => return Err("empty request line".into()),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts
        .next()
        .ok_or_else(|| format!("malformed request line '{request_line}'"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| format!("malformed request line '{request_line}'"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(format!("unsupported protocol '{version}'"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    loop {
        let line =
            read_line(reader, MAX_HEAD)?.ok_or("connection closed inside request headers")?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD {
            return Err("request head too large".into());
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line '{line}'"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length '{}'", value.trim()))?;
            if content_length > MAX_BODY {
                return Err(format!("body of {content_length} bytes exceeds limit"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    Ok(Some(Request { method, path, body }))
}

/// Reads one CRLF (or bare-LF) terminated line, without the terminator.
/// `Ok(None)` = end of stream before any byte.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, String> {
    let mut line = Vec::new();
    let n = reader
        .by_ref()
        .take(limit as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(|e| format!("reading request: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err("request line not terminated within limit".into());
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| "request head is not valid UTF-8".to_string())
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete JSON response and flushes. Every response closes
/// the connection (see the module docs).
///
/// # Errors
///
/// Propagates socket write errors (the server logs and drops them — the
/// client is gone either way).
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    write_response_extra(stream, status, &[], body)
}

/// [`write_response`] with additional response headers (e.g.
/// `Retry-After` on a 503). Header names and values must already be
/// valid HTTP header text; this is an internal server, not a proxy.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response_extra(
    stream: &mut impl Write,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

/// Reads one response from `reader`: `(status, body)`.
///
/// # Errors
///
/// Returns a message when the response is malformed or truncated.
pub fn read_response(reader: &mut impl BufRead) -> Result<(u16, String), String> {
    read_response_full(reader).map(|(status, _headers, body)| (status, body))
}

/// A parsed response: status, headers (lowercased names), body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// Reads one response from `reader`, keeping the headers:
/// `(status, headers, body)`. Header names are lowercased; the retrying
/// client uses this to honor `Retry-After` on a 503.
///
/// # Errors
///
/// Returns a message when the response is malformed or truncated.
pub fn read_response_full(reader: &mut impl BufRead) -> Result<FullResponse, String> {
    let status_line = read_line(reader, MAX_HEAD)?.ok_or("empty response")?;
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(format!("malformed status line '{status_line}'"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{status_line}'"))?;

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, MAX_HEAD)?.ok_or("connection closed inside headers")?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }

    let body = match content_length {
        Some(n) if n > MAX_BODY => return Err(format!("response body of {n} bytes")),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading {n}-byte response body: {e}"))?;
            buf
        }
        // Connection-close delimited (this server always sends a
        // length, but be liberal in what we accept).
        None => {
            let mut buf = Vec::new();
            reader
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading response body: {e}"))?;
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| "response body is not valid UTF-8")?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"kind\":1}x")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, "{\"kind\":1}x");
    }

    #[test]
    fn parses_bodyless_get_and_clean_eof() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_requests_are_errors() {
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / SMTP/1.0\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_err());
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&huge).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}").unwrap();
        let (status, body) = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(503), "Service Unavailable");
    }

    #[test]
    fn extra_headers_roundtrip() {
        let mut wire = Vec::new();
        write_response_extra(&mut wire, 503, &[("Retry-After", "1")], "{}").unwrap();
        let raw = String::from_utf8(wire.clone()).unwrap();
        assert!(raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let (status, headers, body) =
            read_response_full(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "{}");
        let retry = headers.iter().find(|(n, _)| n == "retry-after");
        assert_eq!(retry.map(|(_, v)| v.as_str()), Some("1"));
    }

    /// The slow-loris case the deadline exists for: a client dripping
    /// bytes with pauses shorter than any per-read timeout still cannot
    /// hold the reader past the total wall deadline.
    #[test]
    fn deadline_stream_bounds_a_dripping_writer() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dripper = std::thread::spawn(move || {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            // One byte every 40ms: each read succeeds quickly, but the
            // request never completes. Stop when the server gives up.
            for b in b"POST /v1/query HTTP/1.1\r\nContent-Length: 999\r\n\r\n..." {
                if conn.write_all(&[*b]).is_err() {
                    break;
                }
                conn.flush().ok();
                std::thread::sleep(Duration::from_millis(40));
            }
        });

        let (stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let deadline = started + Duration::from_millis(300);
        let mut reader = BufReader::new(DeadlineStream::new(&stream, deadline));
        let err = read_request(&mut reader).unwrap_err();
        assert!(
            err.contains("request deadline exceeded"),
            "unexpected error: {err}"
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(290) && elapsed < Duration::from_secs(5),
            "deadline not enforced near 300ms: {elapsed:?}"
        );
        drop(stream); // hang up so the dripper's next write fails
        dripper.join().unwrap();

        // A request that completes inside the deadline is untouched.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut reader = BufReader::new(DeadlineStream::new(&stream, deadline));
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        writer.join().unwrap();
    }
}
