//! A deliberately small HTTP/1.1 subset: exactly what `slb serve` and
//! `slb query` need to speak to each other over `std::net`, hand-rolled
//! because the build environment is offline (no hyper/axum).
//!
//! Supported: request line + headers + `Content-Length`-delimited
//! bodies, JSON responses, `Connection: close` on every exchange (one
//! request per connection — the clients are local and short-lived, so
//! keep-alive buys nothing but idle-socket bookkeeping). Unsupported on
//! purpose: chunked transfer, continuations, TLS, multi-valued headers.

use std::io::{BufRead, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted body size.
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as received (path + optional query string).
    pub path: String,
    /// Decoded body (empty when the request carried none).
    pub body: String,
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` on a clean end-of-stream before any request byte
/// (the client closed an idle connection — not an error).
///
/// # Errors
///
/// Returns a message describing the malformation (the server turns
/// these into 400 responses).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, String> {
    let request_line = match read_line(reader, MAX_HEAD)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => return Err("empty request line".into()),
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts
        .next()
        .ok_or_else(|| format!("malformed request line '{request_line}'"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| format!("malformed request line '{request_line}'"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(format!("unsupported protocol '{version}'"));
    }

    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    loop {
        let line =
            read_line(reader, MAX_HEAD)?.ok_or("connection closed inside request headers")?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD {
            return Err("request head too large".into());
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line '{line}'"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length '{}'", value.trim()))?;
            if content_length > MAX_BODY {
                return Err(format!("body of {content_length} bytes exceeds limit"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    Ok(Some(Request { method, path, body }))
}

/// Reads one CRLF (or bare-LF) terminated line, without the terminator.
/// `Ok(None)` = end of stream before any byte.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, String> {
    let mut line = Vec::new();
    let n = reader
        .by_ref()
        .take(limit as u64 + 1)
        .read_until(b'\n', &mut line)
        .map_err(|e| format!("reading request: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err("request line not terminated within limit".into());
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| "request head is not valid UTF-8".to_string())
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one complete JSON response and flushes. Every response closes
/// the connection (see the module docs).
///
/// # Errors
///
/// Propagates socket write errors (the server logs and drops them — the
/// client is gone either way).
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    stream.flush()
}

/// Reads one response from `reader`: `(status, body)`.
///
/// # Errors
///
/// Returns a message when the response is malformed or truncated.
pub fn read_response(reader: &mut impl BufRead) -> Result<(u16, String), String> {
    let status_line = read_line(reader, MAX_HEAD)?.ok_or("empty response")?;
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(format!("malformed status line '{status_line}'"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{status_line}'"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(reader, MAX_HEAD)?.ok_or("connection closed inside headers")?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(n) if n > MAX_BODY => return Err(format!("response body of {n} bytes")),
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("reading {n}-byte response body: {e}"))?;
            buf
        }
        // Connection-close delimited (this server always sends a
        // length, but be liberal in what we accept).
        None => {
            let mut buf = Vec::new();
            reader
                .read_to_end(&mut buf)
                .map_err(|e| format!("reading response body: {e}"))?;
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| "response body is not valid UTF-8")?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"kind\":1}x")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, "{\"kind\":1}x");
    }

    #[test]
    fn parses_bodyless_get_and_clean_eof() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!((req.method.as_str(), req.body.as_str()), ("GET", ""));
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn malformed_requests_are_errors() {
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET / SMTP/1.0\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort").is_err());
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&huge).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}").unwrap();
        let (status, body) = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        assert_eq!(reason(404), "Not Found");
    }
}
