//! The `slb serve` daemon: a long-running capacity-planning service.
//!
//! One process owns a [`CacheStore`] (warm in-process index over the
//! shared on-disk sweep cache) and a [`WorkPool`] (the PR 4
//! work-stealing discipline, long-lived); the accept loop hands each
//! connection to the pool, where it is parsed, answered through
//! [`slb_exp::query::answer`] — the *same* evaluation path `slb query`
//! and `slb sweep` use — and written back. Identical queries therefore
//! return byte-identical rows whether they were first computed by a
//! sweep, a one-shot query, or an earlier request.
//!
//! Endpoints:
//!
//! | method | path           | response                                   |
//! |--------|----------------|--------------------------------------------|
//! | GET    | `/healthz`     | `{"ok":true}`                              |
//! | GET    | `/stats`       | request/hit counters, index size, uptime   |
//! | POST   | `/v1/query`    | a [`slb_exp::Answer`] for the body's query |
//! | POST   | `/v1/shutdown` | `{"ok":true}`, then graceful shutdown      |
//!
//! Malformed requests get 400, unknown paths 404, wrong methods 405,
//! evaluation failures 422. Shutdown — via `/v1/shutdown`, SIGINT or
//! SIGTERM — stops accepting, drains every in-flight request through
//! [`WorkPool::shutdown`], and returns from [`Server::run`].

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use slb_exp::json::Json;
use slb_exp::{CacheStore, Query, WorkPool};

use crate::http;

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Pool worker count.
    pub threads: usize,
    /// Cache root override; defaults to the shared workspace cache
    /// (`target/sweep-cache`) every sweep reads and writes.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_dir: None,
        }
    }
}

/// Shared mutable state of a running server.
struct ServerState {
    store: CacheStore,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    computed: AtomicU64,
    failed: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    threads: usize,
}

/// A bound (but not yet running) server. Splitting bind from run lets
/// callers learn the ephemeral port — and hand the run loop to a thread
/// — before any request arrives.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkPool,
}

impl Server {
    /// Binds the listener and builds the store and pool.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn bind(opts: &ServeOptions) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("binding {}: {e}", opts.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let store = match &opts.cache_dir {
            Some(dir) => CacheStore::open(dir.clone()),
            None => CacheStore::open_default(),
        };
        let threads = opts.threads.max(1);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                store,
                requests: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                computed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                threads,
            }),
            pool: WorkPool::new(threads),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the (rare) socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The cache root this server answers from.
    pub fn cache_root(&self) -> &std::path::Path {
        self.state.store.root()
    }

    /// Runs the accept loop until `/v1/shutdown`, SIGINT or SIGTERM,
    /// then drains in-flight requests and returns. Connections are
    /// handled on the pool; the loop polls the nonblocking listener so
    /// a shutdown request never waits on a new connection.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the `Result`
    /// leaves room for fatal accept errors.
    pub fn run(self) -> Result<(), String> {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || sigint::triggered() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    self.pool.spawn(move || handle_connection(stream, &state));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    // Transient accept failures (e.g. EMFILE) should not
                    // kill the daemon; back off and keep serving.
                    eprintln!("warning: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        self.pool.shutdown();
        Ok(())
    }
}

/// Reads one request off `stream`, routes it, writes the response.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let (status, body) = match http::read_request(&mut reader) {
        Ok(Some(request)) => route(&request, state),
        Ok(None) => return, // client connected and left; nothing to answer
        Err(e) => (400, error_body(&e)),
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    if status >= 400 {
        state.failed.fetch_add(1, Ordering::Relaxed);
    }
    if http::write_response(&mut writer, status, &body).is_err() {
        // The client hung up before the answer; nothing to do.
    }
    let _ = writer.flush();
}

/// Dispatches one parsed request to its endpoint.
fn route(request: &http::Request, state: &ServerState) -> (u16, String) {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => (200, "{\"ok\":true}".to_string()),
        ("GET", "/stats") => (200, stats_body(state)),
        ("POST", "/v1/query") => answer_query(&request.body, state),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\":true,\"shutting_down\":true}".to_string())
        }
        (_, "/healthz" | "/stats" | "/v1/query" | "/v1/shutdown") => (
            405,
            error_body(&format!("method {} not allowed here", request.method)),
        ),
        (_, other) => (404, error_body(&format!("no such endpoint '{other}'"))),
    }
}

/// `POST /v1/query`: decode → evaluate through the shared store → encode.
fn answer_query(body: &str, state: &ServerState) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&format!("request body is not JSON: {e}"))),
    };
    let query = match Query::from_json(&doc) {
        Ok(query) => query,
        Err(e) => return (400, error_body(&e)),
    };
    match slb_exp::answer(&query, &state.store) {
        Ok(answer) => {
            state
                .cache_hits
                .fetch_add(answer.cache_hits as u64, Ordering::Relaxed);
            state
                .computed
                .fetch_add(answer.computed as u64, Ordering::Relaxed);
            (200, answer.to_json().render())
        }
        // Well-formed but unanswerable (bad model parameters, solver
        // failure): the request, not the server, is at fault.
        Err(e) => (422, error_body(&e)),
    }
}

fn stats_body(state: &ServerState) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "cache_hits".into(),
            Json::Num(state.cache_hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "computed".into(),
            Json::Num(state.computed.load(Ordering::Relaxed) as f64),
        ),
        (
            "failed".into(),
            Json::Num(state.failed.load(Ordering::Relaxed) as f64),
        ),
        ("indexed".into(), Json::Num(state.store.indexed() as f64)),
        ("threads".into(), Json::Num(state.threads as f64)),
        (
            "uptime_ms".into(),
            Json::Num(state.started.elapsed().as_millis() as f64),
        ),
    ])
    .render()
}

/// The uniform error payload: `{"error":"..."}`.
fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(tag: &str) -> ServerState {
        let dir = std::env::temp_dir().join(format!("slb-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServerState {
            store: CacheStore::open(dir),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            threads: 1,
        }
    }

    fn req(method: &str, path: &str, body: &str) -> http::Request {
        http::Request {
            method: method.into(),
            path: path.into(),
            body: body.into(),
        }
    }

    #[test]
    fn routing_table() {
        let state = test_state("route");
        assert_eq!(route(&req("GET", "/healthz", ""), &state).0, 200);
        assert_eq!(route(&req("GET", "/stats", ""), &state).0, 200);
        assert_eq!(route(&req("POST", "/healthz", ""), &state).0, 405);
        assert_eq!(route(&req("GET", "/v1/query", ""), &state).0, 405);
        assert_eq!(route(&req("GET", "/nope", ""), &state).0, 404);
        assert_eq!(route(&req("POST", "/v1/query", "not json"), &state).0, 400);
        assert_eq!(
            route(&req("POST", "/v1/query", "{\"kind\":\"teleport\"}"), &state).0,
            400
        );
        // Well-formed but unanswerable: rho >= 1 is a model error.
        let (status, body) = route(
            &req(
                "POST",
                "/v1/query",
                "{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":1.5,\"t\":2}",
            ),
            &state,
        );
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("error"));
        let (status, _) = route(&req("POST", "/v1/shutdown", ""), &state);
        assert_eq!(status, 200);
        assert!(state.shutdown.load(Ordering::SeqCst));
        let _ = std::fs::remove_dir_all(state.store.root());
    }

    #[test]
    fn query_endpoint_counts_hits() {
        let state = test_state("hits");
        let body = "{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":0.6,\"t\":2,\
                    \"jobs\":20000,\"replications\":1,\"seed\":7}";
        let (status, cold) = route(&req("POST", "/v1/query", body), &state);
        assert_eq!(status, 200, "{cold}");
        assert_eq!(state.computed.load(Ordering::Relaxed), 1);
        let (status, warm) = route(&req("POST", "/v1/query", body), &state);
        assert_eq!(status, 200);
        assert_eq!(state.cache_hits.load(Ordering::Relaxed), 1);
        // Byte-identical rows on replay.
        let rows = |s: &str| Json::parse(s).unwrap().get("rows").unwrap().render();
        assert_eq!(rows(&cold), rows(&warm));
        let _ = std::fs::remove_dir_all(state.store.root());
    }
}
