//! The `slb serve` daemon: a long-running capacity-planning service.
//!
//! One process owns a [`CacheStore`] (warm in-process index over the
//! shared on-disk sweep cache) and a [`WorkPool`] (the PR 4
//! work-stealing discipline, long-lived); the accept loop hands each
//! connection to the pool, where it is parsed, answered through
//! [`slb_exp::query::answer`] — the *same* evaluation path `slb query`
//! and `slb sweep` use — and written back. Identical queries therefore
//! return byte-identical rows whether they were first computed by a
//! sweep, a one-shot query, or an earlier request.
//!
//! Endpoints:
//!
//! | method | path           | response                                   |
//! |--------|----------------|--------------------------------------------|
//! | GET    | `/healthz`     | `{"ok":true}`                              |
//! | GET    | `/stats`       | request/hit counters, index size, uptime   |
//! | POST   | `/v1/query`    | a [`slb_exp::Answer`] for the body's query |
//! | POST   | `/v1/shutdown` | `{"ok":true}`, then graceful shutdown      |
//!
//! Malformed requests get 400, unknown paths 404, wrong methods 405,
//! evaluation failures 422, handler panics a clean 500, and overload /
//! missed deadlines 503. Shutdown — via `/v1/shutdown`, SIGINT or
//! SIGTERM — stops accepting, drains every in-flight request through
//! [`WorkPool::shutdown`], and returns from [`Server::run`].
//!
//! # Overload safety
//!
//! Three mechanisms keep a saturated or hostile client from taking the
//! daemon down:
//!
//! * **Admission control**: at most `max_inflight` connections (default
//!   4× the worker count) are admitted to the pool. Beyond that,
//!   connections are handled by a small capped set of shed threads that
//!   still answer `/healthz`, `/stats` and `/v1/shutdown` — liveness
//!   and observability survive overload — but answer `/v1/query` with
//!   `503` + `Retry-After` instead of queueing unbounded work.
//! * **Request deadline**: one total wall-clock budget (`deadline_ms`)
//!   covers read + solve + write per request, enforced across reads by
//!   [`http::DeadlineStream`] — a slow-loris client dripping bytes
//!   cannot hold a worker past the deadline — and *inside the solve* by
//!   a [`slb_exp::Budget`] threaded into every iterative loop: a query
//!   whose solve outlives the deadline aborts mid-iteration (counted in
//!   `/stats` as `solve_aborted`) instead of holding the worker for the
//!   full solve and discarding the answer. Exceeded → `503`, close.
//! * **Panic isolation**: a panic inside request handling is caught and
//!   answered as a `500`; the worker, the pool and every other
//!   connection are unaffected.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use slb_exp::json::Json;
use slb_exp::{CacheStore, Query, WorkPool};

use crate::http;

/// Hard backstop on concurrently running shed threads: connections
/// arriving past admission *and* past this cap are dropped outright.
const MAX_SHED_THREADS: usize = 32;

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Pool worker count.
    pub threads: usize,
    /// Cache root override; defaults to the shared workspace cache
    /// (`target/sweep-cache`) every sweep reads and writes.
    pub cache_dir: Option<PathBuf>,
    /// Admission limit: connections concurrently admitted to the pool.
    /// `0` (the default) means 4× the worker count.
    pub max_inflight: usize,
    /// Total wall-clock budget per request in milliseconds, covering
    /// read + solve + write.
    pub deadline_ms: u64,
    /// Bound on the store's in-process index; `0` (the default) uses
    /// [`slb_exp::store::DEFAULT_INDEX_CAP`].
    pub index_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache_dir: None,
            max_inflight: 0,
            deadline_ms: 10_000,
            index_cap: 0,
        }
    }
}

/// Shared mutable state of a running server.
struct ServerState {
    store: CacheStore,
    /// The worker pool, behind a lock so `/stats` can read its gauges
    /// and shutdown can take it out; `None` once draining has begun.
    pool: Mutex<Option<WorkPool>>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    computed: AtomicU64,
    failed: AtomicU64,
    /// Queries shed (or dropped) by admission control.
    rejected: AtomicU64,
    /// Solves aborted mid-iteration by the request deadline budget (the
    /// worker was freed early instead of finishing a doomed solve).
    solve_aborted: AtomicU64,
    /// Handler panics caught and answered as 500s.
    panics: AtomicU64,
    /// Connections currently admitted (accept → response written).
    in_flight: AtomicUsize,
    /// Shed threads currently running.
    shed: AtomicUsize,
    shutdown: AtomicBool,
    started: Instant,
    threads: usize,
    max_inflight: usize,
    deadline: Duration,
}

/// Poison-recovering lock on the pool slot: a panic elsewhere must not
/// take `/stats` (or shutdown) down with it.
fn lock_pool(state: &ServerState) -> MutexGuard<'_, Option<WorkPool>> {
    state
        .pool
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrements the admission gauge when an admitted connection finishes,
/// however it finishes (including by panic).
struct InflightGuard(Arc<ServerState>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bound (but not yet running) server. Splitting bind from run lets
/// callers learn the ephemeral port — and hand the run loop to a thread
/// — before any request arrives.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and builds the store and pool.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn bind(opts: &ServeOptions) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("binding {}: {e}", opts.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let root = opts
            .cache_dir
            .clone()
            .unwrap_or_else(slb_exp::cache::default_cache_dir);
        let store = match opts.index_cap {
            0 => CacheStore::open(root),
            cap => CacheStore::open_with_cap(root, cap),
        };
        let threads = opts.threads.max(1);
        let max_inflight = if opts.max_inflight == 0 {
            threads * 4
        } else {
            opts.max_inflight
        };
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                store,
                pool: Mutex::new(Some(WorkPool::new(threads))),
                requests: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                computed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                solve_aborted: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                in_flight: AtomicUsize::new(0),
                shed: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                threads,
                max_inflight,
                deadline: Duration::from_millis(opts.deadline_ms.max(1)),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the (rare) socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The cache root this server answers from.
    pub fn cache_root(&self) -> &std::path::Path {
        self.state.store.root()
    }

    /// Runs the accept loop until `/v1/shutdown`, SIGINT or SIGTERM,
    /// then drains in-flight requests and returns. Admitted connections
    /// are handled on the pool; connections beyond `max_inflight` go to
    /// capped shed threads (see the module docs). The loop polls the
    /// nonblocking listener so a shutdown request never waits on a new
    /// connection.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the `Result`
    /// leaves room for fatal accept errors.
    pub fn run(self) -> Result<(), String> {
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) || sigint::triggered() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => admit_or_shed(stream, &self.state),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    // Transient accept failures (e.g. EMFILE) should not
                    // kill the daemon; back off and keep serving.
                    eprintln!("warning: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        let pool = lock_pool(&self.state).take();
        if let Some(pool) = pool {
            pool.shutdown();
        }
        Ok(())
    }
}

/// Admission control at the accept boundary: under the limit, the
/// connection runs on the pool; over it, a capped shed thread keeps
/// liveness endpoints answering while queries get 503.
fn admit_or_shed(stream: TcpStream, state: &Arc<ServerState>) {
    if state.in_flight.load(Ordering::Relaxed) >= state.max_inflight {
        shed_connection(stream, Arc::clone(state));
        return;
    }
    // Count *before* the task runs, so a burst of accepts cannot all
    // pass the check ahead of the pool getting to any of them.
    state.in_flight.fetch_add(1, Ordering::Relaxed);
    let task_state = Arc::clone(state);
    let pool = lock_pool(state);
    match pool.as_ref() {
        Some(pool) => pool.spawn(move || {
            let guard = InflightGuard(task_state);
            handle_connection(stream, &guard.0);
        }),
        // Draining: the listener is about to close anyway.
        None => {
            state.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Runs an over-admission connection on a dedicated thread (up to
/// [`MAX_SHED_THREADS`]; beyond that the connection is dropped — the
/// hard backstop against thread exhaustion).
fn shed_connection(stream: TcpStream, state: Arc<ServerState>) {
    if state.shed.fetch_add(1, Ordering::Relaxed) >= MAX_SHED_THREADS {
        state.shed.fetch_sub(1, Ordering::Relaxed);
        state.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let spawned = std::thread::Builder::new()
        .name("slb-shed".into())
        .spawn(move || {
            handle_overloaded(stream, &state);
            state.shed.fetch_sub(1, Ordering::Relaxed);
        });
    if let Err(e) = spawned {
        // Builder::spawn reports resource exhaustion instead of
        // panicking; the connection is dropped, the daemon lives. The
        // closure owns `state` now, so only log here.
        eprintln!("warning: cannot spawn shed thread: {e}");
    }
}

/// The shed path: `/healthz`, `/stats` and `/v1/shutdown` answer
/// normally (observability and shutdown must survive overload), but
/// `/v1/query` is refused with `503` + `Retry-After` instead of adding
/// load.
fn handle_overloaded(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Shed reads get a short fixed budget: an overloaded server should
    // spend no time waiting on slow clients.
    let deadline = Instant::now() + state.deadline.min(Duration::from_secs(2));
    let request = {
        let mut reader = BufReader::new(http::DeadlineStream::new(&stream, deadline));
        http::read_request(&mut reader)
    };
    let mut stream = stream;
    let (status, body) = match request {
        Ok(Some(request)) => {
            let path = request.path.split('?').next().unwrap_or("");
            if (request.method.as_str(), path) == ("POST", "/v1/query") {
                state.rejected.fetch_add(1, Ordering::Relaxed);
                (503, error_body("overloaded"))
            } else {
                route(&request, state, deadline)
            }
        }
        Ok(None) => return,
        Err(_) => return, // a slow or malformed client gets no budget here
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    if status >= 400 {
        state.failed.fetch_add(1, Ordering::Relaxed);
    }
    let extra: &[(&str, &str)] = if status == 503 {
        &[("Retry-After", "1")]
    } else {
        &[]
    };
    let _ = http::write_response_extra(&mut stream, status, extra, &body);
}

/// Reads one request off `stream` under the wall deadline, routes it
/// with panic isolation, writes the response.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Chaos harness: an armed `server.slow_read` simulates a slow client
    // occupying this worker for half the deadline budget.
    if slb_fault::fires("server.slow_read") {
        std::thread::sleep(state.deadline / 2);
    }
    let deadline = Instant::now() + state.deadline;
    let request = {
        let mut reader = BufReader::new(http::DeadlineStream::new(&stream, deadline));
        http::read_request(&mut reader)
    };
    let mut stream = stream;
    let (status, body) = match request {
        Ok(Some(request)) => {
            // Panic isolation: a panicking handler answers 500 and the
            // worker lives. `route` only touches atomics and the
            // poison-recovering store/pool locks, so observing its
            // state after a panic is sound.
            match catch_unwind(AssertUnwindSafe(|| route(&request, state, deadline))) {
                // Solved, but too late (a non-iterative code path the
                // budget cannot poll): the client was promised the
                // deadline, not a stale answer. An existing 503 — the
                // budget already aborted the solve — keeps its more
                // specific `interrupted` body.
                Ok((status, _)) if status != 503 && Instant::now() >= deadline => {
                    (503, error_body("request deadline exceeded"))
                }
                Ok(answer) => answer,
                Err(_) => {
                    state.panics.fetch_add(1, Ordering::Relaxed);
                    (500, error_body("internal error: request handler panicked"))
                }
            }
        }
        Ok(None) => return, // client connected and left; nothing to answer
        Err(e) if e.contains("request deadline exceeded") => {
            (503, error_body("request deadline exceeded"))
        }
        Err(e) => (400, error_body(&e)),
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    if status >= 400 {
        state.failed.fetch_add(1, Ordering::Relaxed);
    }
    if http::write_response(&mut stream, status, &body).is_err() {
        // The client hung up before the answer; nothing to do.
    }
    let _ = stream.flush();
}

/// Dispatches one parsed request to its endpoint. `deadline` is the
/// request's total wall-clock budget; query solves poll it and abort.
fn route(request: &http::Request, state: &ServerState, deadline: Instant) -> (u16, String) {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => (200, "{\"ok\":true}".to_string()),
        ("GET", "/stats") => (200, stats_body(state)),
        ("POST", "/v1/query") => answer_query(&request.body, state, deadline),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\":true,\"shutting_down\":true}".to_string())
        }
        (_, "/healthz" | "/stats" | "/v1/query" | "/v1/shutdown") => (
            405,
            error_body(&format!("method {} not allowed here", request.method)),
        ),
        (_, other) => (404, error_body(&format!("no such endpoint '{other}'"))),
    }
}

/// `POST /v1/query`: decode → evaluate through the shared store → encode.
///
/// The request deadline becomes the solve's [`slb_exp::Budget`]: an
/// over-budget solve aborts at its next iteration poll, the worker is
/// freed, and the client gets `503` *within* the deadline (plus one
/// poll interval) instead of a completed-then-discarded answer. Cache
/// hits still answer — replaying stored rows costs no solve time.
fn answer_query(body: &str, state: &ServerState, deadline: Instant) -> (u16, String) {
    // Chaos harness: an armed `server.answer_panic` exercises the
    // panic-isolation path end to end (500 answer, worker survives).
    if slb_fault::fires("server.answer_panic") {
        panic!("injected: server.answer_panic");
    }
    let doc = match Json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return (400, error_body(&format!("request body is not JSON: {e}"))),
    };
    let query = match Query::from_json(&doc) {
        Ok(query) => query,
        Err(e) => return (400, error_body(&e)),
    };
    let budget = slb_exp::Budget::with_deadline_at(deadline);
    match slb_exp::answer_with_budget(&query, &state.store, &budget) {
        Ok(answer) => {
            state
                .cache_hits
                .fetch_add(answer.cache_hits as u64, Ordering::Relaxed);
            state
                .computed
                .fetch_add(answer.computed as u64, Ordering::Relaxed);
            (200, answer.to_json().render())
        }
        // The solve outlived the request deadline and aborted at an
        // iteration poll: overload semantics (503), not a client error.
        Err(e) if e.contains("interrupted") => {
            state.solve_aborted.fetch_add(1, Ordering::Relaxed);
            (503, error_body(&e))
        }
        // Well-formed but unanswerable (bad model parameters, solver
        // failure): the request, not the server, is at fault.
        Err(e) => (422, error_body(&e)),
    }
}

fn stats_body(state: &ServerState) -> String {
    // Pool gauges read through the lock; all zero once draining began.
    let (queue_depth, workers_alive, pool_panics) = match lock_pool(state).as_ref() {
        Some(pool) => (pool.queue_depth(), pool.workers_alive(), pool.panics()),
        None => (0, 0, 0),
    };
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "cache_hits".into(),
            Json::Num(state.cache_hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "computed".into(),
            Json::Num(state.computed.load(Ordering::Relaxed) as f64),
        ),
        (
            "failed".into(),
            Json::Num(state.failed.load(Ordering::Relaxed) as f64),
        ),
        (
            "rejected".into(),
            Json::Num(state.rejected.load(Ordering::Relaxed) as f64),
        ),
        (
            "solve_aborted".into(),
            Json::Num(state.solve_aborted.load(Ordering::Relaxed) as f64),
        ),
        (
            "panics".into(),
            Json::Num((state.panics.load(Ordering::Relaxed) + pool_panics) as f64),
        ),
        (
            "in_flight".into(),
            Json::Num(state.in_flight.load(Ordering::Relaxed) as f64),
        ),
        ("queue_depth".into(), Json::Num(queue_depth as f64)),
        ("workers_alive".into(), Json::Num(workers_alive as f64)),
        ("indexed".into(), Json::Num(state.store.indexed() as f64)),
        ("evicted".into(), Json::Num(state.store.evicted() as f64)),
        ("threads".into(), Json::Num(state.threads as f64)),
        ("max_inflight".into(), Json::Num(state.max_inflight as f64)),
        (
            "uptime_ms".into(),
            Json::Num(state.started.elapsed().as_millis() as f64),
        ),
    ])
    .render()
}

/// The uniform error payload: `{"error":"..."}`.
fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(tag: &str) -> ServerState {
        let dir = std::env::temp_dir().join(format!("slb-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ServerState {
            store: CacheStore::open(dir),
            pool: Mutex::new(None),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            solve_aborted: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            threads: 1,
            max_inflight: 4,
            deadline: Duration::from_secs(10),
        }
    }

    fn req(method: &str, path: &str, body: &str) -> http::Request {
        http::Request {
            method: method.into(),
            path: path.into(),
            body: body.into(),
        }
    }

    /// A generous deadline for tests that must *not* trip the budget.
    fn far(state: &ServerState) -> Instant {
        Instant::now() + state.deadline
    }

    #[test]
    fn routing_table() {
        let state = test_state("route");
        let d = far(&state);
        assert_eq!(route(&req("GET", "/healthz", ""), &state, d).0, 200);
        assert_eq!(route(&req("GET", "/stats", ""), &state, d).0, 200);
        assert_eq!(route(&req("POST", "/healthz", ""), &state, d).0, 405);
        assert_eq!(route(&req("GET", "/v1/query", ""), &state, d).0, 405);
        assert_eq!(route(&req("GET", "/nope", ""), &state, d).0, 404);
        assert_eq!(
            route(&req("POST", "/v1/query", "not json"), &state, d).0,
            400
        );
        assert_eq!(
            route(
                &req("POST", "/v1/query", "{\"kind\":\"teleport\"}"),
                &state,
                d
            )
            .0,
            400
        );
        // Well-formed but unanswerable: rho >= 1 is a model error.
        let (status, body) = route(
            &req(
                "POST",
                "/v1/query",
                "{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":1.5,\"t\":2}",
            ),
            &state,
            d,
        );
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("error"));
        let (status, _) = route(&req("POST", "/v1/shutdown", ""), &state, d);
        assert_eq!(status, 200);
        assert!(state.shutdown.load(Ordering::SeqCst));
        let _ = std::fs::remove_dir_all(state.store.root());
    }

    #[test]
    fn query_endpoint_counts_hits() {
        let state = test_state("hits");
        let body = "{\"kind\":\"bounds\",\"n\":3,\"d\":2,\"rho\":0.6,\"t\":2,\
                    \"jobs\":20000,\"replications\":1,\"seed\":7}";
        let (status, cold) = route(&req("POST", "/v1/query", body), &state, far(&state));
        assert_eq!(status, 200, "{cold}");
        assert_eq!(state.computed.load(Ordering::Relaxed), 1);
        let (status, warm) = route(&req("POST", "/v1/query", body), &state, far(&state));
        assert_eq!(status, 200);
        assert_eq!(state.cache_hits.load(Ordering::Relaxed), 1);
        // Byte-identical rows on replay.
        let rows = |s: &str| Json::parse(s).unwrap().get("rows").unwrap().render();
        assert_eq!(rows(&cold), rows(&warm));
        let _ = std::fs::remove_dir_all(state.store.root());
    }

    #[test]
    fn expired_deadline_aborts_solve_as_503() {
        let state = test_state("abort");
        // N = 64 routes through the lumped iterative solvers, which
        // poll the budget; an already-expired deadline aborts at the
        // first poll instead of finishing a doomed solve.
        let body = "{\"kind\":\"bounds\",\"n\":64,\"d\":2,\"rho\":0.9,\"t\":4,\
                    \"jobs\":20000,\"replications\":1,\"seed\":7}";
        let started = Instant::now();
        let (status, answer) = route(&req("POST", "/v1/query", body), &state, started);
        assert_eq!(status, 503, "{answer}");
        assert!(answer.contains("interrupted"), "{answer}");
        assert_eq!(state.solve_aborted.load(Ordering::Relaxed), 1);
        // The abort must be immediate (poll latency), not solve-sized.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "abort took {:?}",
            started.elapsed()
        );
        // Nothing partial was published to the cache: an interrupted
        // solve leaves no entry a later query could replay.
        assert_eq!(state.store.indexed(), 0);
        assert_eq!(state.computed.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(state.store.root());
    }
}
