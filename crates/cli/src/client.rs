//! The client side of the serve protocol: one-request-per-connection
//! HTTP over `std::net::TcpStream`. Used by `slb query --addr`, the
//! integration tests and the serve benchmarks.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use slb_exp::json::Json;
use slb_exp::{Answer, Query};

use crate::http;

/// Performs one HTTP exchange against `addr` and returns
/// `(status, body)`.
///
/// # Errors
///
/// Returns a message on connection, write or malformed-response
/// failures (non-2xx statuses are *not* errors here — callers decide).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    request_full(addr, method, path, body).map(|(status, _headers, body)| (status, body))
}

/// [`request`], keeping the response headers (lowercased names) — the
/// retry loop reads `Retry-After` from them.
///
/// # Errors
///
/// Same contract as [`request`].
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<http::FullResponse, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let mut writer = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    let body = body.unwrap_or("");
    std::io::Write::write_all(
        &mut writer,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )
        .as_bytes(),
    )
    .map_err(|e| format!("sending request to {addr}: {e}"))?;
    http::read_response_full(&mut BufReader::new(stream))
}

/// How [`request_with_retries`] retries transient failures: transport
/// errors (connection refused, resets, timeouts) and `503` responses
/// are retried with capped exponential backoff and full jitter; any
/// other status — including every `4xx` — is final and returned as-is.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (0 = exactly one attempt).
    pub retries: u32,
    /// First backoff; doubles per retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter seed. Retries draw deterministically from it, so a fixed
    /// seed gives a reproducible wait sequence in tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::from(d.subsec_nanos()))
                .unwrap_or(1),
        }
    }
}

impl RetryPolicy {
    /// A policy retrying `retries` times with the default backoff.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        }
    }
}

/// splitmix64 step — the workspace-standard small deterministic RNG,
/// used here for backoff jitter.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The wait before retry number `attempt` (0-based): full jitter over
/// an exponentially growing, capped window, raised to any `Retry-After`
/// the server sent (the server knows its own recovery time better than
/// our backoff curve does).
fn backoff(
    policy: &RetryPolicy,
    attempt: u32,
    retry_after: Option<Duration>,
    rng: &mut u64,
) -> Duration {
    let window = policy
        .base
        .saturating_mul(1u32 << attempt.min(16))
        .min(policy.cap);
    let window_ms = window.as_millis().max(1) as u64;
    let jittered = Duration::from_millis(next_rand(rng) % window_ms + 1);
    jittered.max(retry_after.unwrap_or(Duration::ZERO))
}

/// [`request`] with bounded retries for transient failures (see
/// [`RetryPolicy`] for what counts as transient). A `503`'s
/// `Retry-After` header is honored as a lower bound on the wait.
///
/// # Errors
///
/// Returns the last transport error once the attempt budget is spent.
/// Non-transient statuses are `Ok` — callers decide, as with
/// [`request`].
pub fn request_with_retries(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> Result<(u16, String), String> {
    let mut rng = policy.seed;
    let mut attempt = 0u32;
    loop {
        let outcome = request_full(addr, method, path, body);
        let retry_after = match &outcome {
            // Overload shedding is the one retryable status; everything
            // else (including every 4xx) is a final answer.
            Ok((503, headers, _)) => headers
                .iter()
                .find(|(name, _)| name == "retry-after")
                .and_then(|(_, value)| value.parse::<u64>().ok())
                .map(Duration::from_secs)
                .or(Some(Duration::ZERO)),
            Ok(_) => None,
            Err(_) => Some(Duration::ZERO),
        };
        let (Some(retry_after), true) = (retry_after, attempt < policy.retries) else {
            return outcome.map(|(status, _headers, body)| (status, body));
        };
        std::thread::sleep(backoff(policy, attempt, Some(retry_after), &mut rng));
        attempt += 1;
    }
}

/// [`post_query`] with retries under `policy`.
///
/// # Errors
///
/// Same contract as [`post_query`], after the retry budget.
pub fn post_query_with_retries(
    addr: &str,
    query: &Query,
    policy: &RetryPolicy,
) -> Result<Answer, String> {
    let (status, body) = request_with_retries(
        addr,
        "POST",
        "/v1/query",
        Some(&query.to_json().render()),
        policy,
    )?;
    decode_answer(addr, status, body)
}

/// Sends `query` to a running `slb serve` at `addr` and decodes the
/// answer.
///
/// # Errors
///
/// Returns the transport error, or the server's error payload on a
/// non-200 status.
pub fn post_query(addr: &str, query: &Query) -> Result<Answer, String> {
    let (status, body) = request(addr, "POST", "/v1/query", Some(&query.to_json().render()))?;
    decode_answer(addr, status, body)
}

/// Decodes a `/v1/query` exchange into an [`Answer`] (shared by the
/// plain and retrying clients).
fn decode_answer(addr: &str, status: u16, body: String) -> Result<Answer, String> {
    if status != 200 {
        let detail = Json::parse(&body)
            .ok()
            .and_then(|d| d.get("error").and_then(|e| e.as_str().map(str::to_string)))
            .unwrap_or(body);
        return Err(format!("server at {addr} returned {status}: {detail}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("bad answer body: {e}"))?;
    Answer::from_json(&doc)
}

/// Asks a running server to shut down gracefully.
///
/// # Errors
///
/// Returns the transport error or a non-200 status.
pub fn post_shutdown(addr: &str) -> Result<(), String> {
    let (status, body) = request(addr, "POST", "/v1/shutdown", None)?;
    if status != 200 {
        return Err(format!("shutdown returned {status}: {body}"));
    }
    Ok(())
}
