//! The client side of the serve protocol: one-request-per-connection
//! HTTP over `std::net::TcpStream`. Used by `slb query --addr`, the
//! integration tests and the serve benchmarks.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use slb_exp::json::Json;
use slb_exp::{Answer, Query};

use crate::http;

/// Performs one HTTP exchange against `addr` and returns
/// `(status, body)`.
///
/// # Errors
///
/// Returns a message on connection, write or malformed-response
/// failures (non-2xx statuses are *not* errors here — callers decide).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let mut writer = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    let body = body.unwrap_or("");
    std::io::Write::write_all(
        &mut writer,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )
        .as_bytes(),
    )
    .map_err(|e| format!("sending request to {addr}: {e}"))?;
    http::read_response(&mut BufReader::new(stream))
}

/// Sends `query` to a running `slb serve` at `addr` and decodes the
/// answer.
///
/// # Errors
///
/// Returns the transport error, or the server's error payload on a
/// non-200 status.
pub fn post_query(addr: &str, query: &Query) -> Result<Answer, String> {
    let (status, body) = request(addr, "POST", "/v1/query", Some(&query.to_json().render()))?;
    if status != 200 {
        let detail = Json::parse(&body)
            .ok()
            .and_then(|d| d.get("error").and_then(|e| e.as_str().map(str::to_string)))
            .unwrap_or(body);
        return Err(format!("server at {addr} returned {status}: {detail}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("bad answer body: {e}"))?;
    Answer::from_json(&doc)
}

/// Asks a running server to shut down gracefully.
///
/// # Errors
///
/// Returns the transport error or a non-200 status.
pub fn post_shutdown(addr: &str) -> Result<(), String> {
    let (status, body) = request(addr, "POST", "/v1/shutdown", None)?;
    if status != 200 {
        return Err(format!("shutdown returned {status}: {body}"));
    }
    Ok(())
}
