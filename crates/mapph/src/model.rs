//! The MAP-modulated SQ(d) bound models: the paper's methodology with the
//! Poisson assumption removed.

use slb_core::{BlockSpace, ModelVariant, PollMode};
use slb_linalg::{power_iteration_sparse, CsrMatrix};
use slb_markov::Map;
use slb_qbd::{QbdBlocks, SolveOptions, Tail};

use crate::{blocks, MapphError, Result};

/// SQ(d) with `N` servers, `d` choices and a MAP arrival stream.
///
/// Service stays exponential with unit rate (the paper's convention);
/// the utilization is `ρ = λ_MAP / N` with `λ_MAP` the MAP's fundamental
/// rate. Stability of the *lower* model requires `ρ < 1`; the upper model
/// additionally needs head-room that grows as the threshold `T` shrinks,
/// exactly as in the Poisson case.
///
/// # Example
///
/// ```
/// use slb_markov::Map;
/// use slb_mapph::MapSqd;
///
/// # fn main() -> Result<(), slb_mapph::MapphError> {
/// let map = Map::mmpp2(0.5, 0.5, 0.4, 1.6).map_err(slb_mapph::MapphError::from)?;
/// let model = MapSqd::with_utilization(3, 2, &map, 0.6)?;
/// assert!((model.utilization() - 0.6).abs() < 1e-12);
/// let lb = model.lower_bound(2)?;
/// assert!(lb.delay >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MapSqd {
    n: usize,
    d: usize,
    map: Map,
    rate: f64,
    poll_mode: PollMode,
}

/// Outcome of a MAP-modulated bound computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MapBoundResult {
    /// Bound on the mean delay (sojourn time, service included).
    pub delay: f64,
    /// Bound on the mean number of waiting jobs in the system.
    pub waiting_jobs: f64,
    /// Residual of the finite balance system (solution certificate).
    pub residual: f64,
    /// Logarithmic-reduction iterations for the `G` matrix.
    pub g_iterations: usize,
    /// Product states in the boundary block.
    pub boundary_states: usize,
    /// Product states per repeating block, `C(N+T−1, T)·p`.
    pub level_states: usize,
    /// Spectral radius of the rate matrix `R` — the geometric decay rate
    /// of the stationary tail. For a Poisson stream and the lower model
    /// this reproduces Theorem 3's `ρᴺ`.
    pub tail_decay: f64,
}

impl MapSqd {
    /// Builds the model from an explicit MAP (its fundamental rate is
    /// taken as the *total* arrival rate `λN`).
    ///
    /// # Errors
    ///
    /// [`MapphError::InvalidParameters`] unless `N ≥ 2`, `1 ≤ d ≤ N` and
    /// the MAP rate is positive with `ρ = rate/N < 1`.
    pub fn new(n: usize, d: usize, map: &Map) -> Result<Self> {
        MapSqd::new_with_mode(n, d, map, PollMode::WithoutReplacement)
    }

    /// As [`MapSqd::new`] with an explicit polling mode (with replacement
    /// allows `d > N`).
    ///
    /// # Errors
    ///
    /// As [`MapSqd::new`].
    pub fn new_with_mode(n: usize, d: usize, map: &Map, poll_mode: PollMode) -> Result<Self> {
        if n < 2 {
            return Err(MapphError::InvalidParameters {
                reason: format!("need at least 2 servers, got {n}"),
            });
        }
        let d_ok = match poll_mode {
            PollMode::WithoutReplacement => (1..=n).contains(&d),
            PollMode::WithReplacement => d >= 1,
        };
        if !d_ok {
            return Err(MapphError::InvalidParameters {
                reason: format!("invalid d = {d} for N = {n} under {poll_mode:?}"),
            });
        }
        let rate = map.rate()?;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(MapphError::InvalidParameters {
                reason: format!("MAP fundamental rate must be positive, got {rate}"),
            });
        }
        if rate >= n as f64 {
            return Err(MapphError::InvalidParameters {
                reason: format!(
                    "utilization {} must be below 1 (MAP rate {rate}, N = {n})",
                    rate / n as f64
                ),
            });
        }
        Ok(MapSqd {
            n,
            d,
            map: map.clone(),
            rate,
            poll_mode,
        })
    }

    /// Builds the model after rescaling the MAP's time axis so the
    /// utilization is exactly `rho` — the natural way to sweep a load
    /// curve while keeping the burstiness structure fixed.
    ///
    /// # Errors
    ///
    /// [`MapphError::InvalidParameters`] unless `0 < rho < 1` (plus the
    /// [`MapSqd::new`] preconditions).
    pub fn with_utilization(n: usize, d: usize, map: &Map, rho: f64) -> Result<Self> {
        if !(rho > 0.0 && rho < 1.0) {
            return Err(MapphError::InvalidParameters {
                reason: format!("need 0 < rho < 1, got {rho}"),
            });
        }
        let scaled = map.with_rate(rho * n as f64)?;
        MapSqd::new(n, d, &scaled)
    }

    /// Number of servers `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of polled servers `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The (possibly rescaled) arrival MAP.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// Utilization `ρ = λ_MAP / N`.
    pub fn utilization(&self) -> f64 {
        self.rate / self.n as f64
    }

    /// The polling mode.
    pub fn poll_mode(&self) -> PollMode {
        self.poll_mode
    }

    /// Lower bound on the mean delay with threshold `T`.
    ///
    /// # Errors
    ///
    /// Propagates state-space and solver failures; the lower model is
    /// stable whenever `ρ < 1`.
    pub fn lower_bound(&self, t: u32) -> Result<MapBoundResult> {
        self.solve(ModelVariant::Lower { threshold: t }, t)
    }

    /// Upper bound on the mean delay with threshold `T`.
    ///
    /// # Errors
    ///
    /// [`MapphError::UpperBoundUnstable`] when blocking reduces capacity
    /// below the offered load at this `(ρ, T)` — raise `T` in that case.
    pub fn upper_bound(&self, t: u32) -> Result<MapBoundResult> {
        self.solve(ModelVariant::Upper { threshold: t }, t)
    }

    /// The product-space QBD blocks of either bound variant (public for
    /// diagnostics and benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates state-space construction and validation failures.
    pub fn qbd_blocks(&self, variant: ModelVariant, t: u32) -> Result<QbdBlocks> {
        let space = BlockSpace::new(self.n, t)?;
        blocks::assemble(&space, &self.map, self.d, variant, self.poll_mode)
    }

    /// The delay-distribution companion of the mean bounds under MAP
    /// arrivals (mixture of Erlangs; see `slb_core::delay_dist`).
    ///
    /// PASTA does not hold for a MAP: an arrival in phase `h` occurs at
    /// intensity `Σ_{h'} D1[h, h']`, so the state a tagged job sees is
    /// the *arrival-biased* law `π(m, h)·d1row(h) / λ`. The SQ(d) polling
    /// kernel is then applied exactly as in the Poisson case. For a
    /// one-phase MAP the bias is constant and this reduces to the
    /// `slb-core` construction.
    ///
    /// # Errors
    ///
    /// As the corresponding bound solve.
    pub fn delay_distribution(
        &self,
        kind: slb_core::BoundKind,
        t: u32,
    ) -> Result<slb_core::DelayDistribution> {
        use slb_core::delay_dist::arrival_level_weights;

        let variant = match kind {
            slb_core::BoundKind::Lower => ModelVariant::Lower { threshold: t },
            slb_core::BoundKind::Upper => ModelVariant::Upper { threshold: t },
        };
        let space = BlockSpace::new(self.n, t)?;
        let qbd = blocks::assemble(&space, &self.map, self.d, variant, self.poll_mode)?;
        let sol = qbd.solve(&SolveOptions::default())?;

        let p = self.map.phases();
        let d1_row: Vec<f64> = (0..p)
            .map(|h| (0..p).map(|h2| self.map.d1()[(h, h2)]).sum())
            .collect();

        let mut weights: Vec<f64> = Vec::new();
        let mut add = |k: usize, w: f64| {
            if weights.len() <= k {
                weights.resize(k + 1, 0.0);
            }
            weights[k] += w;
        };

        // As in slb-core, the kernel uses the *base* policy; the bias
        // d1row(h)/λ converts time-stationary mass into what arrivals see.
        for (i, s) in space.boundary().iter() {
            let kernel = arrival_level_weights(s, self.d, ModelVariant::Base, self.poll_mode);
            for (h, bias) in d1_row.iter().enumerate() {
                let mass = sol.boundary()[i * p + h] * bias / self.rate;
                if mass <= 0.0 {
                    continue;
                }
                for &(level, prob) in &kernel {
                    add(level as usize, mass * prob);
                }
            }
        }
        let kernels: Vec<Vec<(u32, f64)>> = space
            .block0()
            .iter()
            .map(|(_, s)| arrival_level_weights(s, self.d, ModelVariant::Base, self.poll_mode))
            .collect();
        sol.for_each_level(1e-12, |q, pi_q| {
            for (j, kernel) in kernels.iter().enumerate() {
                for h in 0..p {
                    let mass = pi_q[j * p + h] * d1_row[h] / self.rate;
                    if mass <= 0.0 {
                        continue;
                    }
                    for &(level, prob) in kernel {
                        add(level as usize + q, mass * prob);
                    }
                }
            }
        });

        Ok(slb_core::DelayDistribution::from_weights(weights)?)
    }

    /// The saturation utilization of the upper-bound model at threshold
    /// `T`: the supremum of `ρ` for which [`MapSqd::upper_bound`] is
    /// stable, located by bisection to absolute accuracy `tol`. The MAP's
    /// burstiness structure is held fixed while its time axis is rescaled
    /// across the sweep.
    ///
    /// # Errors
    ///
    /// Propagates state-space construction failures.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tol < 1`.
    pub fn upper_bound_saturation(&self, t: u32, tol: f64) -> Result<f64> {
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        let space = BlockSpace::new(self.n, t)?;
        let stable_at = |rho: f64| -> Result<bool> {
            let map = self.map.with_rate(rho * self.n as f64)?;
            let qbd = blocks::assemble(
                &space,
                &map,
                self.d,
                ModelVariant::Upper { threshold: t },
                self.poll_mode,
            )?;
            Ok(qbd.is_stable()?)
        };
        let (mut lo, mut hi) = (1e-6, 1.0 - 1e-9);
        if !stable_at(lo)? {
            return Ok(0.0);
        }
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if stable_at(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    fn solve(&self, variant: ModelVariant, t: u32) -> Result<MapBoundResult> {
        let space = BlockSpace::new(self.n, t)?;
        let qbd = blocks::assemble(&space, &self.map, self.d, variant, self.poll_mode)?;
        let sol = qbd.solve(&SolveOptions::default())?;

        let p = self.map.phases();
        let cb: Vec<f64> = space
            .boundary()
            .iter()
            .flat_map(|(_, s)| std::iter::repeat_n(f64::from(s.waiting()), p))
            .collect();
        let c0: Vec<f64> = space
            .block0()
            .iter()
            .flat_map(|(_, s)| std::iter::repeat_n(f64::from(s.waiting()), p))
            .collect();
        let growth = vec![self.n as f64; space.block_len() * p];
        let waiting = sol.mean_linear_cost(&cb, &c0, &growth);

        let tail_decay = match sol.tail() {
            Tail::Matrix(r) => {
                // sp(R) through the shared sparse kernel.
                let r = CsrMatrix::from_dense(r, 0.0);
                power_iteration_sparse(&r, 1e-12, 50_000)?.eigenvalue
            }
            Tail::Scalar(b) => *b,
        };

        Ok(MapBoundResult {
            delay: waiting / self.rate + 1.0,
            waiting_jobs: waiting,
            residual: sol.residual(),
            g_iterations: sol.g_iterations(),
            boundary_states: space.boundary().len() * p,
            level_states: space.block_len() * p,
            tail_decay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        let map = Map::poisson(1.0).unwrap();
        assert!(MapSqd::new(1, 1, &map).is_err());
        assert!(MapSqd::new(3, 0, &map).is_err());
        assert!(MapSqd::new(3, 4, &map).is_err());
        // Overloaded: rate 3 on 3 unit servers.
        let hot = Map::poisson(3.0).unwrap();
        assert!(MapSqd::new(3, 2, &hot).is_err());
        assert!(MapSqd::with_utilization(3, 2, &map, 0.0).is_err());
        assert!(MapSqd::with_utilization(3, 2, &map, 1.0).is_err());
        assert!(MapSqd::with_utilization(3, 2, &map, 0.5).is_ok());
        // d > N allowed with replacement.
        assert!(MapSqd::new_with_mode(3, 5, &map, PollMode::WithReplacement).is_ok());
    }

    #[test]
    fn poisson_map_reproduces_core_bounds() {
        // One-phase MAP ≡ Poisson: delays must match slb-core to solver
        // precision, and the lower tail decay must be Theorem 3's ρᴺ.
        for &(n, d, lam, t) in &[
            (3usize, 2usize, 0.6f64, 2u32),
            (3, 2, 0.8, 3),
            (4, 3, 0.7, 2),
        ] {
            let map = Map::poisson(lam * n as f64).unwrap();
            let model = MapSqd::new(n, d, &map).unwrap();
            let core = slb_core::Sqd::new(n, d, lam).unwrap();

            let lb = model.lower_bound(t).unwrap();
            let core_lb = core.lower_bound_full_r(t).unwrap();
            assert!(
                (lb.delay - core_lb.delay).abs() < 1e-8,
                "LB N={n} d={d} λ={lam} T={t}: {} vs {}",
                lb.delay,
                core_lb.delay
            );
            assert!(
                (lb.tail_decay - lam.powi(n as i32)).abs() < 1e-6,
                "sp(R) {} vs ρᴺ {}",
                lb.tail_decay,
                lam.powi(n as i32)
            );

            let ub = model.upper_bound(t).unwrap();
            let core_ub = core.upper_bound(t).unwrap();
            assert!(
                (ub.delay - core_ub.delay).abs() < 1e-8,
                "UB: {} vs {}",
                ub.delay,
                core_ub.delay
            );
        }
    }

    #[test]
    fn bursty_arrivals_increase_delay() {
        // MMPP-2 with SCV > 1 at the same utilization must have a larger
        // lower bound than Poisson (burstiness hurts).
        let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
        let poisson = MapSqd::new(n, d, &Map::poisson(rho * n as f64).unwrap()).unwrap();
        let bursty_map = Map::mmpp2(0.1, 0.1, 0.2, 4.0).unwrap();
        assert!(bursty_map.interarrival_scv().unwrap() > 1.2);
        let bursty = MapSqd::with_utilization(n, d, &bursty_map, rho).unwrap();
        let p_lb = poisson.lower_bound(t).unwrap().delay;
        let b_lb = bursty.lower_bound(t).unwrap().delay;
        assert!(
            b_lb > p_lb * 1.05,
            "bursty LB {b_lb} should exceed Poisson LB {p_lb}"
        );
    }

    #[test]
    fn sandwich_order_under_modulation() {
        let map = Map::mmpp2(0.5, 0.5, 0.5, 1.5).unwrap();
        let model = MapSqd::with_utilization(3, 2, &map, 0.6).unwrap();
        let lb = model.lower_bound(3).unwrap();
        let ub = model.upper_bound(3).unwrap();
        assert!(
            lb.delay <= ub.delay + 1e-9,
            "LB {} > UB {}",
            lb.delay,
            ub.delay
        );
        assert!(lb.residual < 1e-8 && ub.residual < 1e-8);
        assert!(lb.tail_decay < 1.0 && ub.tail_decay < 1.0);
    }

    #[test]
    fn upper_bound_unstable_at_small_threshold() {
        let map = Map::mmpp2(0.2, 0.2, 0.3, 5.4).unwrap();
        let model = MapSqd::with_utilization(3, 2, &map, 0.95).unwrap();
        match model.upper_bound(1) {
            Err(MapphError::UpperBoundUnstable { .. }) => {}
            other => panic!("expected instability, got {other:?}"),
        }
        assert!(model.lower_bound(1).is_ok());
    }

    #[test]
    fn larger_threshold_tightens_upper_bound() {
        let map = Map::mmpp2(1.0, 1.0, 0.5, 1.5).unwrap();
        let model = MapSqd::with_utilization(3, 2, &map, 0.65).unwrap();
        let ub2 = model.upper_bound(2).unwrap();
        let ub3 = model.upper_bound(3).unwrap();
        assert!(
            ub3.delay <= ub2.delay + 1e-9,
            "{} vs {}",
            ub3.delay,
            ub2.delay
        );
    }

    #[test]
    fn saturation_grows_with_threshold_and_shrinks_with_burstiness() {
        let map = Map::mmpp2(0.3, 0.3, 0.4, 1.6).unwrap();
        let model = MapSqd::with_utilization(3, 2, &map, 0.5).unwrap();
        let s2 = model.upper_bound_saturation(2, 1e-3).unwrap();
        let s3 = model.upper_bound_saturation(3, 1e-3).unwrap();
        assert!(s2 < s3 && s3 < 1.0, "{s2} vs {s3}");
        // Poisson (one phase) saturates no earlier than a bursty MMPP at
        // the same threshold.
        let poisson = MapSqd::new(3, 2, &Map::poisson(1.5).unwrap()).unwrap();
        let sp = poisson.upper_bound_saturation(3, 1e-3).unwrap();
        let bursty_map = Map::mmpp2(0.1, 0.1, 0.2, 4.0).unwrap();
        let bursty = MapSqd::with_utilization(3, 2, &bursty_map, 0.5).unwrap();
        let sb = bursty.upper_bound_saturation(3, 1e-3).unwrap();
        assert!(sb < sp, "bursty frontier {sb} vs Poisson {sp}");
        // Consistency: just below the frontier solves, just above fails.
        let probe = MapSqd::with_utilization(3, 2, &map, (s3 - 1e-2).max(0.01)).unwrap();
        assert!(probe.upper_bound(3).is_ok());
        let probe = MapSqd::with_utilization(3, 2, &map, (s3 + 1e-2).min(0.999)).unwrap();
        assert!(probe.upper_bound(3).is_err());
    }

    #[test]
    fn delay_distribution_reduces_to_core_for_poisson() {
        // One-phase MAP: the arrival bias is constant, so the curve must
        // coincide with the slb-core construction.
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 3u32);
        let map = Map::poisson(lam * n as f64).unwrap();
        let model = MapSqd::new(n, d, &map).unwrap();
        let core = slb_core::Sqd::new(n, d, lam).unwrap();
        // Tolerance note: slb-core's lower path uses the Theorem-3 scalar
        // tail while this crate always uses the full rate matrix; their
        // stationary *vectors* differ at the ~1e-3 level for d < N (the
        // documented Theorem-3 vector residual), which feeds through to
        // the mixture weights at ~1e-4.
        for kind in [slb_core::BoundKind::Lower, slb_core::BoundKind::Upper] {
            let ours = model.delay_distribution(kind, t).unwrap();
            let theirs = core.delay_distribution(kind, t).unwrap();
            let tol = match kind {
                slb_core::BoundKind::Lower => 5e-4,
                slb_core::BoundKind::Upper => 1e-8,
            };
            assert!(
                (ours.mean() - theirs.mean()).abs() < tol,
                "{kind:?}: {} vs {}",
                ours.mean(),
                theirs.mean()
            );
            for i in 1..=30 {
                let x = i as f64 * 0.4;
                assert!(
                    (ours.survival(x) - theirs.survival(x)).abs() < tol,
                    "{kind:?} t={x}"
                );
            }
        }
    }

    #[test]
    fn bursty_delay_distribution_has_heavier_tail() {
        let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
        let poisson = MapSqd::new(n, d, &Map::poisson(rho * n as f64).unwrap())
            .unwrap()
            .delay_distribution(slb_core::BoundKind::Lower, t)
            .unwrap();
        let bursty_map = Map::mmpp2(0.1, 0.1, 0.2, 4.0).unwrap();
        let bursty = MapSqd::with_utilization(n, d, &bursty_map, rho)
            .unwrap()
            .delay_distribution(slb_core::BoundKind::Lower, t)
            .unwrap();
        for i in 2..=30 {
            let x = i as f64 * 0.5;
            assert!(
                bursty.survival(x) > poisson.survival(x),
                "t={x}: bursty {} vs poisson {}",
                bursty.survival(x),
                poisson.survival(x)
            );
        }
    }

    #[test]
    fn renewal_erlang_bounds_are_lighter_than_poisson() {
        // Erlang-2 interarrivals (SCV = 1/2) are *smoother* than Poisson:
        // the lower bound should drop at equal utilization.
        let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
        let ph = slb_markov::PhaseType::erlang(2, 2.0).unwrap();
        let erlang_map = Map::renewal(&ph).unwrap();
        let smooth = MapSqd::with_utilization(n, d, &erlang_map, rho).unwrap();
        let poisson = MapSqd::new(n, d, &Map::poisson(rho * n as f64).unwrap()).unwrap();
        let s_lb = smooth.lower_bound(t).unwrap().delay;
        let p_lb = poisson.lower_bound(t).unwrap().delay;
        assert!(
            s_lb < p_lb,
            "smooth-arrival LB {s_lb} should be below Poisson LB {p_lb}"
        );
    }
}
