//! SQ(d) finite-regime bounds beyond Poisson: Markovian arrival processes
//! and phase-type service.
//!
//! The ICDCS 2016 paper closes by observing that "a potential and
//! significant advantage of the matrix-geometric methodology employed in
//! this paper is that it can be extended to the broad class of Markov
//! Arrival Processes (MAP) and Phase-Type (PH) service distributions".
//! This crate carries that extension out:
//!
//! * [`MapSqd`] — the SQ(d) lower/upper bound models of the paper with
//!   the Poisson stream replaced by an arbitrary [MAP](slb_markov::Map).
//!   The product chain on (queue shape × arrival phase) is still a QBD
//!   with the same level structure (Lemma 1 survives phase modulation
//!   because the redirect rules act on shapes only), so Theorem 1's
//!   matrix-geometric solution applies verbatim. The Theorem 2/3 *scalar*
//!   tail does **not** survive — a MAP is not a renewal process — so both
//!   bounds use the full rate-matrix solve and expose the actual tail
//!   decay `sp(R)` instead.
//! * [`MapBrute`] — brute-force ground truth for the modulated SQ(d)
//!   chain on a truncated product space, used to validate that
//!   `LB ≤ exact ≤ UB` continues to hold under bursty arrivals.
//! * [`MapPh1`] — the exact MAP/PH/1 queue in QBD form (Kronecker block
//!   assembly). This is the single-server building block of the PH-service
//!   direction and doubles as the SQ(1) reference with non-Poisson input;
//!   it is validated against Pollaczek–Khinchine and GI/M/1 closed forms.
//!
//! # Example
//!
//! ```
//! use slb_markov::Map;
//! use slb_mapph::MapSqd;
//!
//! # fn main() -> Result<(), slb_mapph::MapphError> {
//! // Bursty arrivals (MMPP-2), 3 servers, 2 choices, utilization 0.7.
//! let map = Map::mmpp2(0.2, 0.2, 0.5, 1.5).map_err(slb_mapph::MapphError::from)?;
//! let model = MapSqd::with_utilization(3, 2, &map, 0.7)?;
//! let lb = model.lower_bound(3)?;
//! let ub = model.upper_bound(3)?;
//! assert!(lb.delay <= ub.delay);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod brute;
mod error;
mod mapph1;
mod model;

pub use brute::MapBrute;
pub use error::MapphError;
pub use mapph1::MapPh1;
pub use model::{MapBoundResult, MapSqd};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, MapphError>;
