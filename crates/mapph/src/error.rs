use std::error::Error;
use std::fmt;

use slb_linalg::LinalgError;
use slb_markov::MarkovError;
use slb_qbd::QbdError;

/// Error type for MAP-modulated SQ(d) bound models and MAP/PH/1 queues.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapphError {
    /// Model parameters violate a precondition (`d > N`, utilization ≥ 1,
    /// degenerate MAP, …).
    InvalidParameters {
        /// Description of the violated precondition.
        reason: String,
    },
    /// The upper-bound model is unstable at this utilization/threshold:
    /// blocking removes capacity, so the chain saturates before ρ = 1.
    /// Increase `T` or lower the utilization.
    UpperBoundUnstable {
        /// Mean upward drift of the level process.
        up_drift: f64,
        /// Mean downward drift of the level process.
        down_drift: f64,
    },
    /// The QBD machinery failed.
    Qbd(QbdError),
    /// The Markov-chain machinery failed (MAP validation, brute force).
    Markov(MarkovError),
    /// Dense linear algebra failed (spectral analysis).
    Linalg(LinalgError),
}

impl fmt::Display for MapphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapphError::InvalidParameters { reason } => {
                write!(f, "invalid parameters: {reason}")
            }
            MapphError::UpperBoundUnstable {
                up_drift,
                down_drift,
            } => write!(
                f,
                "upper-bound model unstable (drift up {up_drift:.6} >= down \
                 {down_drift:.6}); increase T or lower the utilization"
            ),
            MapphError::Qbd(e) => write!(f, "QBD solver failure: {e}"),
            MapphError::Markov(e) => write!(f, "Markov machinery failure: {e}"),
            MapphError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MapphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapphError::Qbd(e) => Some(e),
            MapphError::Markov(e) => Some(e),
            MapphError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QbdError> for MapphError {
    fn from(e: QbdError) -> Self {
        match e {
            QbdError::Unstable {
                up_drift,
                down_drift,
            } => MapphError::UpperBoundUnstable {
                up_drift,
                down_drift,
            },
            other => MapphError::Qbd(other),
        }
    }
}

impl From<MarkovError> for MapphError {
    fn from(e: MarkovError) -> Self {
        MapphError::Markov(e)
    }
}

impl From<LinalgError> for MapphError {
    fn from(e: LinalgError) -> Self {
        MapphError::Linalg(e)
    }
}

impl From<slb_core::CoreError> for MapphError {
    fn from(e: slb_core::CoreError) -> Self {
        match e {
            slb_core::CoreError::InvalidParameters { reason } => {
                MapphError::InvalidParameters { reason }
            }
            slb_core::CoreError::UpperBoundUnstable {
                up_drift,
                down_drift,
            } => MapphError::UpperBoundUnstable {
                up_drift,
                down_drift,
            },
            slb_core::CoreError::Qbd(e) => MapphError::Qbd(e),
            slb_core::CoreError::Markov(e) => MapphError::Markov(e),
            _ => MapphError::InvalidParameters {
                reason: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = MapphError::InvalidParameters {
            reason: "utilization must be below 1".into(),
        };
        assert!(e.to_string().contains("utilization"));
    }

    #[test]
    fn unstable_conversion() {
        let e = MapphError::from(QbdError::Unstable {
            up_drift: 1.0,
            down_drift: 0.5,
        });
        assert!(matches!(e, MapphError::UpperBoundUnstable { .. }));
    }

    #[test]
    fn send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<MapphError>();
    }
}
