//! The exact MAP/PH/1 queue in QBD form — the single-server building
//! block of the paper's "MAP arrivals and PH service" future-work
//! direction.
//!
//! Level = number of jobs in the system; phase = (arrival phase, service
//! phase of the job in service). The blocks follow the classical
//! Kronecker assembly (e.g. Lakatos–Szeidl–Telek, ch. 10):
//!
//! ```text
//! A0 = D1 ⊗ I          (arrival, service phase untouched)
//! A1 = D0 ⊗ I + I ⊗ S  (phase evolution on both axes)
//! A2 = I ⊗ (s·α)       (completion, next job starts afresh)
//! ```
//!
//! with boundary `R00 = D0`, `R01 = D1 ⊗ α`, `R10 = I ⊗ s`.

use slb_linalg::Matrix;
use slb_markov::{Map, PhaseType};
use slb_qbd::{QbdBlocks, SolveOptions};

use crate::{MapphError, Result};

/// A MAP/PH/1 queue: MAP arrivals, phase-type service, one server, FIFO.
///
/// # Example
///
/// ```
/// use slb_markov::{Map, PhaseType};
/// use slb_mapph::MapPh1;
///
/// # fn main() -> Result<(), slb_mapph::MapphError> {
/// // M/M/1 in disguise: Poisson(0.5) arrivals, exp(1) service.
/// let q = MapPh1::new(
///     Map::poisson(0.5).map_err(slb_mapph::MapphError::from)?,
///     PhaseType::exponential(1.0).map_err(slb_mapph::MapphError::from)?,
/// )?;
/// let t = q.mean_sojourn()?;
/// assert!((t - 2.0).abs() < 1e-9); // 1/(1−ρ) = 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MapPh1 {
    map: Map,
    service: PhaseType,
}

impl MapPh1 {
    /// Builds the queue and checks stability `ρ = λ·E[S] < 1`.
    ///
    /// # Errors
    ///
    /// [`MapphError::InvalidParameters`] if the queue is overloaded;
    /// propagates MAP/PH validation failures.
    pub fn new(map: Map, service: PhaseType) -> Result<Self> {
        let rho = map.rate()? * service.mean()?;
        if rho >= 1.0 {
            return Err(MapphError::InvalidParameters {
                reason: format!("utilization {rho} must be below 1"),
            });
        }
        Ok(MapPh1 { map, service })
    }

    /// Utilization `ρ = λ·E[S]`.
    ///
    /// # Errors
    ///
    /// Propagates MAP/PH moment failures.
    pub fn utilization(&self) -> Result<f64> {
        Ok(self.map.rate()? * self.service.mean()?)
    }

    /// The arrival MAP.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// The service law.
    pub fn service(&self) -> &PhaseType {
        &self.service
    }

    /// Assembles the QBD blocks via Kronecker products.
    ///
    /// # Errors
    ///
    /// Propagates block validation failures.
    pub fn blocks(&self) -> Result<QbdBlocks> {
        let p = self.map.phases();
        let q = self.service.phases();
        let eye_p = Matrix::identity(p);
        let eye_q = Matrix::identity(q);

        let alpha_row = Matrix::from_vec(1, q, self.service.alpha().to_vec())?;
        let exit_col = Matrix::from_vec(q, 1, self.service.exit_rates())?;
        let s_alpha = exit_col.mat_mul(&alpha_row)?;

        let a0 = self.map.d1().kron(&eye_q);
        let a1 = self
            .map
            .d0()
            .kron(&eye_q)
            .add(&eye_p.kron(self.service.sub_generator()))?;
        let a2 = eye_p.kron(&s_alpha);
        let r00 = self.map.d0().clone();
        let r01 = self.map.d1().kron(&alpha_row);
        let r10 = eye_p.kron(&exit_col);

        Ok(QbdBlocks::new(r00, r01, r10, a0, a1, a2)?)
    }

    /// Mean number of jobs in the system.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`MapphError::UpperBoundUnstable`]
    /// cannot occur because stability was checked at construction).
    pub fn mean_jobs(&self) -> Result<f64> {
        let blocks = self.blocks()?;
        let sol = blocks.solve(&SolveOptions::default())?;
        let p = self.map.phases();
        let m = p * self.service.phases();
        // Boundary (0 jobs) costs 0; level q holds q+1 jobs.
        Ok(sol.mean_linear_cost(&vec![0.0; p], &vec![1.0; m], &vec![1.0; m]))
    }

    /// Mean sojourn time `E[T] = E[L]/λ` (Little's law).
    ///
    /// # Errors
    ///
    /// As [`MapPh1::mean_jobs`].
    pub fn mean_sojourn(&self) -> Result<f64> {
        Ok(self.mean_jobs()? / self.map.rate()?)
    }

    /// Stationary probability that the system is empty, by arrival phase.
    ///
    /// # Errors
    ///
    /// As [`MapPh1::mean_jobs`].
    pub fn idle_distribution(&self) -> Result<Vec<f64>> {
        let blocks = self.blocks()?;
        let sol = blocks.solve(&SolveOptions::default())?;
        Ok(sol.boundary().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pollaczek–Khinchine mean sojourn for M/G/1:
    /// `E[T] = E[S] + λ E[S²] / (2(1−ρ))`.
    fn pk_sojourn(lam: f64, es: f64, es2: f64) -> f64 {
        es + lam * es2 / (2.0 * (1.0 - lam * es))
    }

    #[test]
    fn mm1_special_case() {
        let q = MapPh1::new(
            Map::poisson(0.7).unwrap(),
            PhaseType::exponential(1.0).unwrap(),
        )
        .unwrap();
        assert!((q.utilization().unwrap() - 0.7).abs() < 1e-12);
        assert!((q.mean_jobs().unwrap() - 0.7 / 0.3).abs() < 1e-9);
        assert!((q.mean_sojourn().unwrap() - 1.0 / 0.3).abs() < 1e-9);
        // Empty-probability = 1 − ρ.
        let idle: f64 = q.idle_distribution().unwrap().iter().sum();
        assert!((idle - 0.3).abs() < 1e-9);
    }

    #[test]
    fn m_e2_1_matches_pollaczek_khinchine() {
        // Erlang-2 service, mean 1, E[S²] = 1.5.
        let lam = 0.6;
        let q = MapPh1::new(
            Map::poisson(lam).unwrap(),
            PhaseType::erlang(2, 2.0).unwrap(),
        )
        .unwrap();
        let want = pk_sojourn(lam, 1.0, 1.5);
        let got = q.mean_sojourn().unwrap();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn m_h2_1_matches_pollaczek_khinchine() {
        let lam = 0.5;
        let ph = PhaseType::hyperexponential(&[0.3, 0.7], &[0.5, 2.0]).unwrap();
        let es = ph.mean().unwrap();
        let es2 = ph.moment(2).unwrap();
        let q = MapPh1::new(Map::poisson(lam).unwrap(), ph).unwrap();
        let want = pk_sojourn(lam, es, es2);
        let got = q.mean_sojourn().unwrap();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn map_m1_matches_existing_model() {
        // Cross-validate against the slb-qbd MAP/M/1 reference.
        let map = Map::mmpp2(0.3, 0.6, 0.4, 1.2).unwrap();
        let q = MapPh1::new(map.clone(), PhaseType::exponential(1.3).unwrap()).unwrap();
        let want = slb_qbd::models::map_m1_mean_sojourn(&map, 1.3).unwrap();
        let got = q.mean_sojourn().unwrap();
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }

    #[test]
    fn gi_m_1_matches_sigma_theory() {
        // E2/M/1: the GI/M/1 delay is 1/(µ(1−σ)) with σ the root of
        // Theorem 2's fixed point — computed independently by slb-core.
        let mu = 1.0;
        let lam = 0.7;
        let inter = slb_core::sigma::Interarrival::Erlang {
            k: 2,
            rate: 2.0 * lam,
        };
        let sigma = slb_core::sigma::solve_sigma(&inter, mu).unwrap();
        let want = 1.0 / (mu * (1.0 - sigma));

        let ph = PhaseType::erlang(2, 2.0 * lam).unwrap();
        let q = MapPh1::new(
            Map::renewal(&ph).unwrap(),
            PhaseType::exponential(mu).unwrap(),
        )
        .unwrap();
        let got = q.mean_sojourn().unwrap();
        assert!((got - want).abs() < 1e-8, "{got} vs GI/M/1 {want}");
    }

    #[test]
    fn overload_rejected() {
        assert!(MapPh1::new(
            Map::poisson(1.5).unwrap(),
            PhaseType::exponential(1.0).unwrap(),
        )
        .is_err());
    }

    #[test]
    fn service_variability_increases_delay() {
        // Same mean service, increasing SCV ⇒ increasing delay (P-K).
        let lam = 0.6;
        let erlang = MapPh1::new(
            Map::poisson(lam).unwrap(),
            PhaseType::erlang(4, 4.0).unwrap(), // SCV 1/4
        )
        .unwrap();
        let exp = MapPh1::new(
            Map::poisson(lam).unwrap(),
            PhaseType::exponential(1.0).unwrap(), // SCV 1
        )
        .unwrap();
        let h2 = MapPh1::new(
            Map::poisson(lam).unwrap(),
            PhaseType::hyperexponential(&[0.5, 0.5], &[0.4, 4.0]).unwrap(),
        )
        .unwrap();
        let (a, b, c) = (
            erlang.mean_sojourn().unwrap(),
            exp.mean_sojourn().unwrap(),
            h2.mean_sojourn().unwrap(),
        );
        assert!(a < b && b < c, "{a} < {b} < {c} violated");
    }
}
