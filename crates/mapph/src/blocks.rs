//! QBD block assembly for the MAP-modulated SQ(d) bound models.
//!
//! The chain lives on pairs `(m, h)` of a truncated queue shape
//! `m ∈ S_T` and an arrival phase `h ∈ {0, …, p−1}`:
//!
//! * **phase-only** transitions at rate `D0[h→h']` leave `m` unchanged;
//! * **arrival** transitions at rate `D1[h→h']·p_g(m)` add a job to tie
//!   group `g` (with the paper's redirect rules at the threshold) and move
//!   the phase to `h'`, where `p_g(m)` is the SQ(d) join probability of
//!   group `g`;
//! * **departure** transitions keep the phase and remove a job exactly as
//!   in the Poisson model (blocked in the upper model at the threshold).
//!
//! Because `p_g` and the service rates depend only on the *shape* of `m`,
//! Lemma 1 of the paper (level regularity above the boundary) survives the
//! phase modulation verbatim and the product chain is again a QBD whose
//! repeating blocks have `C(N+T−1, T)·p` states. Product states are
//! indexed phase-minor: `(shape i, phase h) ↦ i·p + h`.

use slb_core::{transitions_with_mode, BlockLocation, BlockSpace, ModelVariant, PollMode, State};
use slb_linalg::Matrix;
use slb_markov::Map;
use slb_qbd::QbdBlocks;

use crate::Result;

/// Where a product transition lands, in product-space indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProductLocation {
    Boundary(usize),
    Level { q: usize, index: usize },
}

/// One outgoing transition of the product chain.
#[derive(Debug, Clone)]
struct ProductTransition {
    target: State,
    phase: usize,
    rate: f64,
}

/// Enumerates the outgoing transitions of product state `(state, h)`.
///
/// Calls the core transition generator with per-server rate `1/N` so the
/// *total* arrival weight is 1 and each arrival entry carries exactly the
/// join probability `p_g`; arrivals are recognized by a growing job count.
fn product_transitions(
    state: &State,
    h: usize,
    map: &Map,
    d: usize,
    variant: ModelVariant,
    mode: PollMode,
) -> Vec<ProductTransition> {
    let p = map.phases();
    let d0 = map.d0();
    let d1 = map.d1();
    let mut out = Vec::new();

    // Phase changes without an arrival.
    for h2 in 0..p {
        if h2 != h && d0[(h, h2)] > 0.0 {
            out.push(ProductTransition {
                target: state.clone(),
                phase: h2,
                rate: d0[(h, h2)],
            });
        }
    }

    let probe = 1.0 / state.n() as f64; // λN = 1 ⇒ arrival rates are p_g
    for tr in transitions_with_mode(state, d, probe, variant, mode) {
        if tr.target.total() > state.total() {
            // Arrival: join probability p_g, modulated by D1.
            for h2 in 0..p {
                let r = d1[(h, h2)] * tr.rate;
                if r > 0.0 {
                    out.push(ProductTransition {
                        target: tr.target.clone(),
                        phase: h2,
                        rate: r,
                    });
                }
            }
        } else {
            // Departure: service is exponential and phase-blind.
            out.push(ProductTransition {
                target: tr.target,
                phase: h,
                rate: tr.rate,
            });
        }
    }
    out
}

/// Assembles the six product-space QBD blocks of a MAP-modulated bound
/// model.
///
/// # Errors
///
/// Propagates block validation failures (which would indicate a bug in
/// the transition rules, not bad input).
pub(crate) fn assemble(
    space: &BlockSpace,
    map: &Map,
    d: usize,
    variant: ModelVariant,
    mode: PollMode,
) -> Result<QbdBlocks> {
    let p = map.phases();
    let nb = space.boundary().len() * p;
    let m = space.block_len() * p;

    let mut r00 = Matrix::zeros(nb, nb);
    let mut r01 = Matrix::zeros(nb, m);
    let mut r10 = Matrix::zeros(m, nb);
    let mut a0 = Matrix::zeros(m, m);
    let mut a1 = Matrix::zeros(m, m);
    let mut a2 = Matrix::zeros(m, m);

    let locate = |s: &State, h: usize| -> ProductLocation {
        match space.locate(s) {
            Some(BlockLocation::Boundary(j)) => ProductLocation::Boundary(j * p + h),
            Some(BlockLocation::Level { q, index }) => ProductLocation::Level {
                q,
                index: index * p + h,
            },
            None => unreachable!("bound-model transition leaves S_T: {s}"),
        }
    };

    // Boundary rows.
    for (i, s) in space.boundary().iter() {
        for h in 0..p {
            let row = i * p + h;
            let mut outflow = 0.0;
            for tr in product_transitions(s, h, map, d, variant, mode) {
                outflow += tr.rate;
                match locate(&tr.target, tr.phase) {
                    ProductLocation::Boundary(j) => r00[(row, j)] += tr.rate,
                    ProductLocation::Level { q: 0, index: j } => r01[(row, j)] += tr.rate,
                    other => unreachable!("boundary row lands at {other:?}"),
                }
            }
            r00[(row, row)] -= outflow;
        }
    }

    // Level-0 rows give R10, A1 (diagonal included) and A0.
    for (i, s) in space.block0().iter() {
        for h in 0..p {
            let row = i * p + h;
            let mut outflow = 0.0;
            for tr in product_transitions(s, h, map, d, variant, mode) {
                outflow += tr.rate;
                match locate(&tr.target, tr.phase) {
                    ProductLocation::Boundary(j) => r10[(row, j)] += tr.rate,
                    ProductLocation::Level { q: 0, index: j } => a1[(row, j)] += tr.rate,
                    ProductLocation::Level { q: 1, index: j } => a0[(row, j)] += tr.rate,
                    other => unreachable!("level-0 row lands at {other:?}"),
                }
            }
            a1[(row, row)] -= outflow;
        }
    }

    // Level-1 rows give A2; regularity (Lemma 1 under modulation) makes
    // the A1/A0 they induce identical to the level-0 extraction, which the
    // QbdBlocks row-sum validation cross-checks.
    for (i, s0) in space.block0().iter() {
        let s = s0.plus_one();
        for h in 0..p {
            let row = i * p + h;
            for tr in product_transitions(&s, h, map, d, variant, mode) {
                if let ProductLocation::Level { q: 0, index: j } = locate(&tr.target, tr.phase) {
                    a2[(row, j)] += tr.rate;
                }
            }
        }
    }

    Ok(QbdBlocks::new(r00, r01, r10, a0, a1, a2)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(n: usize, t: u32) -> BlockSpace {
        BlockSpace::new(n, t).unwrap()
    }

    #[test]
    fn poisson_map_blocks_match_scalar_model() {
        // A one-phase MAP is a Poisson stream: the product blocks must be
        // numerically identical to the slb-core blocks.
        let (n, d, lam, t) = (3usize, 2usize, 0.7f64, 2u32);
        let map = Map::poisson(lam * n as f64).unwrap();
        let sp = space(n, t);
        for kind in [
            ModelVariant::Lower { threshold: t },
            ModelVariant::Upper { threshold: t },
        ] {
            let ours = assemble(&sp, &map, d, kind, PollMode::WithoutReplacement).unwrap();
            let core = slb_core::BoundModel::new(
                slb_core::Sqd::new(n, d, lam).unwrap(),
                match kind {
                    ModelVariant::Lower { .. } => slb_core::BoundKind::Lower,
                    _ => slb_core::BoundKind::Upper,
                },
                t,
            )
            .unwrap()
            .qbd_blocks()
            .unwrap();
            assert!(ours.a0().approx_eq(core.a0(), 1e-12));
            assert!(ours.a1().approx_eq(core.a1(), 1e-12));
            assert!(ours.a2().approx_eq(core.a2(), 1e-12));
            assert!(ours.r00().approx_eq(core.r00(), 1e-12));
        }
    }

    #[test]
    fn mmpp_blocks_validate_and_scale() {
        let map = Map::mmpp2(0.3, 0.5, 1.0, 3.0).unwrap();
        let sp = space(3, 2);
        let b = assemble(
            &sp,
            &map,
            2,
            ModelVariant::Lower { threshold: 2 },
            PollMode::WithoutReplacement,
        )
        .unwrap();
        assert_eq!(b.level_len(), sp.block_len() * 2);
        assert_eq!(b.boundary_len(), sp.boundary().len() * 2);
    }

    #[test]
    fn product_transitions_conserve_map_rates() {
        // Total outflow from (m, h): D0 off-diagonal + D1 row + busy
        // servers (lower model keeps capacity).
        let map = Map::mmpp2(0.4, 0.6, 0.8, 2.0).unwrap();
        let s = State::new(vec![2, 1, 1]).unwrap();
        for h in 0..2 {
            let ts = product_transitions(
                &s,
                h,
                &map,
                2,
                ModelVariant::Lower { threshold: 3 },
                PollMode::WithoutReplacement,
            );
            let total: f64 = ts.iter().map(|t| t.rate).sum();
            let d0_off: f64 = (0..2)
                .filter(|&h2| h2 != h)
                .map(|h2| map.d0()[(h, h2)])
                .sum();
            let d1_row: f64 = (0..2).map(|h2| map.d1()[(h, h2)]).sum();
            let expect = d0_off + d1_row + s.busy() as f64;
            assert!(
                (total - expect).abs() < 1e-12,
                "phase {h}: {total} vs {expect}"
            );
        }
    }

    #[test]
    fn upper_model_sheds_capacity_in_product_space() {
        // At the threshold, the upper model blocks bottom departures;
        // outflow must be lower than the lower model's.
        let map = Map::mmpp2(0.4, 0.6, 0.8, 2.0).unwrap();
        let s = State::new(vec![3, 1, 1]).unwrap(); // diff = 2 = T
        let low: f64 = product_transitions(
            &s,
            0,
            &map,
            2,
            ModelVariant::Lower { threshold: 2 },
            PollMode::WithoutReplacement,
        )
        .iter()
        .map(|t| t.rate)
        .sum();
        let up: f64 = product_transitions(
            &s,
            0,
            &map,
            2,
            ModelVariant::Upper { threshold: 2 },
            PollMode::WithoutReplacement,
        )
        .iter()
        .map(|t| t.rate)
        .sum();
        assert!(up < low, "upper outflow {up} should be below lower {low}");
        assert!(
            (low - up - 2.0).abs() < 1e-12,
            "blocked rate is the bottom pair"
        );
    }
}
