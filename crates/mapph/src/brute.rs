//! Brute-force ground truth for the MAP-modulated SQ(d) chain.
//!
//! Mirrors `slb_core::brute` on the product space (queue shape × arrival
//! phase): enumerate every sorted state with `m1 ≤ cap`, cross with the
//! arrival phases, drop arrivals that would exceed the cap, and solve the
//! sparse CTMC. Used to certify `LB ≤ exact ≤ UB` for bursty input
//! without simulation noise.

use std::collections::HashMap;

use slb_core::{transitions_with_mode, ModelVariant, PollMode, State};
use slb_markov::{Map, SparseCtmc};

use crate::{MapphError, Result};

/// Exact (truncated) solver for the MAP/SQ(d) product chain.
///
/// # Example
///
/// ```
/// use slb_markov::Map;
/// use slb_mapph::MapBrute;
///
/// # fn main() -> Result<(), slb_mapph::MapphError> {
/// // Poisson-as-MAP reduces to the ordinary SQ(d) chain.
/// let map = Map::poisson(2.1).map_err(slb_mapph::MapphError::from)?;
/// let bf = MapBrute::solve(3, 2, &map, 16)?;
/// assert!(bf.truncation_mass() < 1e-6);
/// assert!(bf.mean_delay() >= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MapBrute {
    n: usize,
    rate: f64,
    phases: usize,
    states: Vec<State>,
    pi: Vec<f64>,
    cap: u32,
}

impl MapBrute {
    /// Enumerates all `(shape, phase)` pairs with `m1 ≤ cap` and solves
    /// the modulated SQ(d) chain restricted to them.
    ///
    /// # Errors
    ///
    /// * [`MapphError::InvalidParameters`] for invalid `(N, d, cap)` or an
    ///   overloaded MAP.
    /// * [`MapphError::Markov`] if the iterative stationary solve fails.
    pub fn solve(n: usize, d: usize, map: &Map, cap: u32) -> Result<Self> {
        MapBrute::solve_with_mode(n, d, map, cap, PollMode::WithoutReplacement)
    }

    /// As [`MapBrute::solve`] with an explicit polling mode.
    ///
    /// # Errors
    ///
    /// As [`MapBrute::solve`].
    pub fn solve_with_mode(
        n: usize,
        d: usize,
        map: &Map,
        cap: u32,
        mode: PollMode,
    ) -> Result<Self> {
        let d_ok = match mode {
            PollMode::WithoutReplacement => (1..=n).contains(&d),
            PollMode::WithReplacement => d >= 1,
        };
        if n == 0 || !d_ok {
            return Err(MapphError::InvalidParameters {
                reason: format!("need valid d for N = {n} under {mode:?}, got d = {d}"),
            });
        }
        if cap < 2 {
            return Err(MapphError::InvalidParameters {
                reason: "cap must be at least 2".into(),
            });
        }
        let rate = map.rate()?;
        if rate >= n as f64 {
            return Err(MapphError::InvalidParameters {
                reason: format!("MAP rate {rate} saturates {n} unit servers"),
            });
        }

        let states = enumerate_capped(n, cap);
        let p = map.phases();
        let index: HashMap<&State, usize> =
            states.iter().enumerate().map(|(i, s)| (s, i)).collect();
        let idx = |shape: usize, h: usize| shape * p + h;

        let d0 = map.d0();
        let d1 = map.d1();
        let probe = 1.0 / n as f64; // λN = 1 ⇒ arrival rates are join probs

        let mut chain = SparseCtmc::new(states.len() * p);
        for (i, s) in states.iter().enumerate() {
            let trans = transitions_with_mode(s, d, probe, ModelVariant::Base, mode);
            for h in 0..p {
                let from = idx(i, h);
                // Phase changes without arrival.
                for h2 in 0..p {
                    if h2 != h && d0[(h, h2)] > 0.0 {
                        chain.add_rate(from, idx(i, h2), d0[(h, h2)])?;
                    }
                }
                for tr in &trans {
                    if tr.target.total() > s.total() {
                        if tr.target.level(0) > cap {
                            continue; // truncation: drop arrivals past cap
                        }
                        let j = index[&tr.target];
                        for h2 in 0..p {
                            let r = d1[(h, h2)] * tr.rate;
                            if r > 0.0 && idx(j, h2) != from {
                                chain.add_rate(from, idx(j, h2), r)?;
                            }
                        }
                    } else {
                        let j = index[&tr.target];
                        chain.add_rate(from, idx(j, h), tr.rate)?;
                    }
                }
            }
        }
        let pi = chain.stationary_jacobi(1e-13, 2_000_000)?;

        Ok(MapBrute {
            n,
            rate,
            phases: p,
            states,
            pi,
            cap,
        })
    }

    /// Number of product states enumerated.
    pub fn state_count(&self) -> usize {
        self.states.len() * self.phases
    }

    /// Mean number of jobs in the system.
    pub fn mean_jobs(&self) -> f64 {
        self.shape_sum(|s| f64::from(s.total()))
    }

    /// Mean number of *waiting* jobs.
    pub fn mean_waiting(&self) -> f64 {
        self.shape_sum(|s| f64::from(s.waiting()))
    }

    /// Mean sojourn time via Little's law at the MAP's fundamental rate.
    pub fn mean_delay(&self) -> f64 {
        self.mean_jobs() / self.rate
    }

    /// Stationary mass on the capped layer `m1 = cap` (truncation proxy).
    pub fn truncation_mass(&self) -> f64 {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.level(0) == self.cap)
            .map(|(i, _)| self.phase_mass(i))
            .sum()
    }

    /// Marginal stationary distribution of the arrival phase; must agree
    /// with [`Map::phase_stationary`] because the queue does not feed back
    /// into the modulation.
    pub fn phase_marginal(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.phases];
        for (i, _) in self.states.iter().enumerate() {
            for (h, o) in out.iter_mut().enumerate() {
                *o += self.pi[i * self.phases + h];
            }
        }
        out
    }

    /// Stationary fraction of servers with at least `k` jobs,
    /// `k = 0..=k_max`.
    pub fn queue_tail_fractions(&self, k_max: u32) -> Vec<f64> {
        (0..=k_max)
            .map(|k| {
                self.shape_sum(|s| {
                    s.as_slice().iter().filter(|&&x| x >= k).count() as f64 / self.n as f64
                })
            })
            .collect()
    }

    fn phase_mass(&self, shape_index: usize) -> f64 {
        (0..self.phases)
            .map(|h| self.pi[shape_index * self.phases + h])
            .sum()
    }

    fn shape_sum<F: Fn(&State) -> f64>(&self, f: F) -> f64 {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| f(s) * self.phase_mass(i))
            .sum()
    }
}

/// All sorted states on `n` servers with `m1 ≤ cap`.
fn enumerate_capped(n: usize, cap: u32) -> Vec<State> {
    let mut out = Vec::new();
    let mut cur = vec![0u32; n];
    fn rec(cur: &mut Vec<u32>, pos: usize, max: u32, out: &mut Vec<State>) {
        if pos == cur.len() {
            out.push(State::new(cur.clone()).expect("sorted by construction"));
            return;
        }
        for v in (0..=max).rev() {
            cur[pos] = v;
            rec(cur, pos + 1, v, out);
        }
    }
    rec(&mut cur, 0, cap, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_map_matches_core_brute() {
        let (n, d, lam, cap) = (3usize, 2usize, 0.6f64, 18u32);
        let map = Map::poisson(lam * n as f64).unwrap();
        let ours = MapBrute::solve(n, d, &map, cap).unwrap();
        let core = slb_core::brute::BruteForce::solve(n, d, lam, cap).unwrap();
        assert!(
            (ours.mean_delay() - core.mean_delay()).abs() < 1e-8,
            "{} vs {}",
            ours.mean_delay(),
            core.mean_delay()
        );
        assert!((ours.mean_jobs() - core.mean_jobs()).abs() < 1e-8);
    }

    #[test]
    fn phase_marginal_matches_map_stationary() {
        let map = Map::mmpp2(0.4, 0.9, 0.3, 1.8).unwrap();
        let bf = MapBrute::solve(3, 2, &map, 14).unwrap();
        let got = bf.phase_marginal();
        let want = map.phase_stationary().unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-7, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn burstiness_inflates_exact_delay() {
        let (n, d, rho, cap) = (3usize, 2usize, 0.6f64, 16u32);
        let poisson = Map::poisson(rho * n as f64).unwrap();
        let bursty = Map::mmpp2(0.1, 0.1, 0.2, 4.0)
            .unwrap()
            .with_rate(rho * n as f64)
            .unwrap();
        let base = MapBrute::solve(n, d, &poisson, cap).unwrap().mean_delay();
        let hot = MapBrute::solve(n, d, &bursty, cap).unwrap().mean_delay();
        assert!(hot > base * 1.05, "bursty {hot} vs Poisson {base}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let map = Map::poisson(1.0).unwrap();
        assert!(MapBrute::solve(0, 1, &map, 10).is_err());
        assert!(MapBrute::solve(3, 4, &map, 10).is_err());
        assert!(MapBrute::solve(3, 2, &map, 1).is_err());
        let hot = Map::poisson(4.0).unwrap();
        assert!(MapBrute::solve(3, 2, &hot, 10).is_err());
    }

    #[test]
    fn tail_fractions_sane() {
        let map = Map::mmpp2(0.5, 0.5, 0.4, 1.4).unwrap();
        let bf = MapBrute::solve(3, 2, &map, 14).unwrap();
        let tails = bf.queue_tail_fractions(4);
        assert!((tails[0] - 1.0).abs() < 1e-9);
        // Busy fraction = utilization (work conservation).
        let rho = map.rate().unwrap() / 3.0;
        assert!((tails[1] - rho).abs() < 1e-5, "s1 {} vs ρ {rho}", tails[1]);
        for k in 1..tails.len() {
            assert!(tails[k] <= tails[k - 1] + 1e-12);
        }
    }
}
