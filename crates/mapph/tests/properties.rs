//! Property-based tests for the MAP-modulated layer: the structural
//! invariants must hold for *random* modulations, not just hand-picked
//! ones.

use proptest::prelude::*;
use slb_mapph::{MapPh1, MapSqd};
use slb_markov::{Map, PhaseType};

/// Random 2-phase MMPP with bounded switch and arrival rates.
fn arb_mmpp() -> impl Strategy<Value = Map> {
    (0.05f64..2.0, 0.05f64..2.0, 0.0f64..2.0, 0.05f64..3.0)
        .prop_map(|(r01, r10, l0, l1)| Map::mmpp2(r01, r10, l0, l1).expect("valid MMPP"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounds_ordered_under_random_modulation(
        map in arb_mmpp(),
        rho in 0.2f64..0.75,
    ) {
        let model = MapSqd::with_utilization(3, 2, &map, rho).unwrap();
        let lb = model.lower_bound(2).unwrap();
        prop_assert!(lb.delay >= 1.0 - 1e-12);
        prop_assert!(lb.residual < 1e-7);
        prop_assert!(lb.tail_decay > 0.0 && lb.tail_decay < 1.0);
        if let Ok(ub) = model.upper_bound(2) {
            prop_assert!(
                lb.delay <= ub.delay + 1e-8,
                "LB {} > UB {}", lb.delay, ub.delay
            );
        }
    }

    #[test]
    fn poisson_equivalence_is_universal(
        n in 3usize..5,
        lam in 0.2f64..0.85,
    ) {
        // A one-phase MAP must reproduce the scalar model for any (N, λ).
        let map = Map::poisson(lam * n as f64).unwrap();
        let d = 2;
        let model = MapSqd::new(n, d, &map).unwrap();
        let core = slb_core::Sqd::new(n, d, lam).unwrap();
        let got = model.lower_bound(2).unwrap().delay;
        let want = core.lower_bound_full_r(2).unwrap().delay;
        prop_assert!((got - want).abs() < 1e-7, "{got} vs {want}");
    }

    #[test]
    fn map_ph1_sandwiched_by_utilization(
        map in arb_mmpp(),
        rho in 0.1f64..0.8,
        k in 1usize..4,
    ) {
        // For any MAP/E_k/1: E[T] ≥ E[S] = 1 and utilization matches.
        let scaled = map.with_rate(rho).unwrap();
        let service = PhaseType::erlang(k, k as f64).unwrap(); // mean 1
        let q = MapPh1::new(scaled, service).unwrap();
        prop_assert!((q.utilization().unwrap() - rho).abs() < 1e-9);
        let t = q.mean_sojourn().unwrap();
        prop_assert!(t >= 1.0 - 1e-9, "sojourn {t} below service mean");
        // Idle probability complements utilization (single server).
        let idle: f64 = q.idle_distribution().unwrap().iter().sum();
        prop_assert!((idle - (1.0 - rho)).abs() < 1e-8, "idle {idle}");
    }

    #[test]
    fn smoother_arrivals_never_hurt(
        rho in 0.3f64..0.8,
        k in 2usize..6,
    ) {
        // Erlang-k renewal input (SCV 1/k < 1) must not increase the LB
        // relative to Poisson at equal utilization.
        let ph = PhaseType::erlang(k, k as f64).unwrap();
        let smooth = Map::renewal(&ph).unwrap();
        let m_smooth = MapSqd::with_utilization(3, 2, &smooth, rho).unwrap();
        let m_poisson =
            MapSqd::new(3, 2, &Map::poisson(rho * 3.0).unwrap()).unwrap();
        let s = m_smooth.lower_bound(2).unwrap().delay;
        let p = m_poisson.lower_bound(2).unwrap().delay;
        prop_assert!(s <= p + 1e-9, "smooth {s} vs poisson {p}");
    }
}
