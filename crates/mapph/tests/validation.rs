//! End-to-end validation of the MAP-modulated bound models: the sandwich
//! `LB ≤ exact ≤ UB` must survive bursty (non-Poisson) arrivals, both
//! against the truncated product-chain ground truth and against the
//! discrete-event simulator.

use slb_mapph::{MapBrute, MapPh1, MapSqd};
use slb_markov::{Map, PhaseType};
use slb_sim::{Policy, SimConfig};

#[test]
fn sandwich_vs_brute_force_mmpp() {
    // Moderately bursty MMPP-2 at three utilizations.
    for &rho in &[0.5f64, 0.65, 0.75] {
        let (n, d, t, cap) = (3usize, 2usize, 3u32, 24u32);
        let map = Map::mmpp2(0.3, 0.3, 0.4, 1.6).unwrap();
        let model = MapSqd::with_utilization(n, d, &map, rho).unwrap();
        let exact_map = map.with_rate(rho * n as f64).unwrap();
        let exact = MapBrute::solve(n, d, &exact_map, cap).unwrap();
        // Bursty tails decay slowly; a residual mass of ~1e-5 biases the
        // truncated mean *down* by a comparable relative amount, which the
        // sandwich tolerances below absorb.
        assert!(
            exact.truncation_mass() < 1e-5,
            "cap too small at rho = {rho}: mass {}",
            exact.truncation_mass()
        );

        let lb = model.lower_bound(t).unwrap().delay;
        let ub = model.upper_bound(t).unwrap().delay;
        let ex = exact.mean_delay();
        assert!(
            lb <= ex + 1e-3 && ex <= ub + 1e-3,
            "rho={rho}: LB {lb} ≤ exact {ex} ≤ UB {ub} violated"
        );
        // The paper's headline tightness survives modulation.
        assert!(
            (ex - lb) / ex < 0.06,
            "rho={rho}: lower bound unexpectedly loose ({lb} vs {ex})"
        );
    }
}

#[test]
fn sandwich_vs_brute_force_erlang_renewal() {
    // Smoother-than-Poisson renewal input (SCV = 1/2).
    let (n, d, rho, t, cap) = (3usize, 2usize, 0.7f64, 3u32, 16u32);
    let ph = PhaseType::erlang(2, 2.0).unwrap();
    let map = Map::renewal(&ph)
        .unwrap()
        .with_rate(rho * n as f64)
        .unwrap();
    let model = MapSqd::new(n, d, &map).unwrap();
    let exact = MapBrute::solve(n, d, &map, cap).unwrap();
    assert!(exact.truncation_mass() < 1e-8);

    let lb = model.lower_bound(t).unwrap().delay;
    let ub = model.upper_bound(t).unwrap().delay;
    let ex = exact.mean_delay();
    assert!(
        lb <= ex + 1e-6 && ex <= ub + 1e-6,
        "LB {lb} ≤ exact {ex} ≤ UB {ub} violated"
    );
}

#[test]
fn sandwich_vs_simulator_mmpp() {
    // Independent evidence: the event-driven simulator with MAP arrivals
    // must land between the bounds (within its confidence interval).
    let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
    let map = Map::mmpp2(0.3, 0.3, 0.4, 1.6).unwrap();
    let model = MapSqd::with_utilization(n, d, &map, rho).unwrap();
    let lb = model.lower_bound(t).unwrap().delay;
    let ub = model.upper_bound(t).unwrap().delay;

    // Four parallel replications splitting the 600k-job budget; merged
    // statistics are deterministic in the replication count.
    let sim = SimConfig::new(n, rho)
        .unwrap()
        .policy(Policy::SqD { d })
        .arrival_map(map)
        .jobs(150_000)
        .warmup(15_000)
        .seed(42)
        .run_parallel(4, 4)
        .unwrap();
    let slack = 3.0 * sim.ci_halfwidth.max(0.02);
    assert!(
        lb <= sim.mean_delay + slack,
        "LB {lb} above simulation {} ± {slack}",
        sim.mean_delay
    );
    assert!(
        sim.mean_delay <= ub + slack,
        "simulation {} above UB {ub}",
        sim.mean_delay
    );
}

#[test]
fn map_ph1_vs_simulator() {
    // MAP/PH/1 analytic solution vs the simulator on one server with
    // hyperexponential service and MMPP arrivals.
    let lam = 0.6;
    let map = Map::mmpp2(0.5, 0.5, 0.4, 1.6)
        .unwrap()
        .with_rate(lam)
        .unwrap();
    let ph = PhaseType::hyperexponential(&[0.4, 0.6], &[0.5, 2.0]).unwrap();
    let queue = MapPh1::new(map.clone(), ph.clone()).unwrap();
    let want = queue.mean_sojourn().unwrap();

    let sim = SimConfig::new(1, lam)
        .unwrap()
        .policy(Policy::Random)
        .arrival_map(map)
        .service(slb_sim::ServiceDistribution::HyperExp {
            p: 0.4,
            rate1: 0.5,
            rate2: 2.0,
        })
        .jobs(200_000)
        .warmup(20_000)
        .seed(7)
        .run_parallel(4, 4)
        .unwrap();
    let slack = 4.0 * sim.ci_halfwidth.max(0.05);
    assert!(
        (sim.mean_delay - want).abs() < slack,
        "sim {} vs analytic {want} (slack {slack})",
        sim.mean_delay
    );
}

#[test]
fn modulated_decay_rate_is_coherent() {
    // sp(R) from the bound models brackets the observed level decay of
    // the exact chain... at least in the lower model the tail is lighter,
    // in the upper heavier.
    let (n, d, rho, t) = (3usize, 2usize, 0.7f64, 3u32);
    let map = Map::mmpp2(0.2, 0.2, 0.3, 1.7).unwrap();
    let model = MapSqd::with_utilization(n, d, &map, rho).unwrap();
    let lb = model.lower_bound(t).unwrap();
    let ub = model.upper_bound(t).unwrap();
    assert!(
        lb.tail_decay < ub.tail_decay,
        "{} < {}",
        lb.tail_decay,
        ub.tail_decay
    );
    // Poisson reference: LB decay of the scalar model is ρᴺ; burstiness
    // slows the decay (heavier tail).
    assert!(lb.tail_decay > rho.powi(n as i32));
}
