//! Dense continuous-time Markov chains.

use slb_linalg::{CsrMatrix, Matrix};

use crate::{gth_stationary, Dtmc, MarkovError, Result};

/// How far a generator row sum may deviate from zero before construction
/// rejects it. Rates in this project are exact small rationals, so any
/// larger deviation is a modelling bug, not round-off.
const ROW_SUM_TOL: f64 = 1e-9;

/// A finite continuous-time Markov chain, stored as its dense generator.
///
/// Invariants (validated at construction): square, nonnegative
/// off-diagonals, every row sums to zero.
///
/// # Example
///
/// ```
/// use slb_markov::Ctmc;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// let ctmc = Ctmc::from_rates(&[
///     vec![0.0, 2.0],
///     vec![1.0, 0.0],
/// ])?;
/// let pi = ctmc.stationary()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    generator: Matrix,
}

impl Ctmc {
    /// Builds a chain from a full generator matrix (diagonal included).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the matrix is not square, has a
    /// negative off-diagonal entry, or a row sum exceeding `1e-9` in
    /// magnitude.
    pub fn from_generator(q: Matrix) -> Result<Self> {
        if !q.is_square() {
            return Err(MarkovError::InvalidChain {
                reason: format!("generator must be square, got {:?}", q.shape()),
            });
        }
        for r in 0..q.rows() {
            let mut sum = 0.0;
            for c in 0..q.cols() {
                if r != c && q[(r, c)] < 0.0 {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("negative rate {} at ({r}, {c})", q[(r, c)]),
                    });
                }
                sum += q[(r, c)];
            }
            if sum.abs() > ROW_SUM_TOL {
                return Err(MarkovError::InvalidChain {
                    reason: format!("row {r} sums to {sum}, expected 0"),
                });
            }
        }
        Ok(Ctmc { generator: q })
    }

    /// Builds a chain from off-diagonal rates only; diagonals are filled in
    /// as negative row sums. `rates[i][j]` is the rate from `i` to `j`;
    /// diagonal entries of the input are ignored.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the rows are ragged, empty, or
    /// contain a negative off-diagonal rate.
    pub fn from_rates<R: AsRef<[f64]>>(rates: &[R]) -> Result<Self> {
        let n = rates.len();
        if n == 0 || rates.iter().any(|r| r.as_ref().len() != n) {
            return Err(MarkovError::InvalidChain {
                reason: "rates must form a non-empty square matrix".into(),
            });
        }
        let mut q = Matrix::zeros(n, n);
        for (i, row) in rates.iter().enumerate() {
            let mut out = 0.0;
            for (j, &v) in row.as_ref().iter().enumerate() {
                if i == j {
                    continue;
                }
                if v < 0.0 {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("negative rate {v} at ({i}, {j})"),
                    });
                }
                q[(i, j)] = v;
                out += v;
            }
            q[(i, i)] = -out;
        }
        Ok(Ctmc { generator: q })
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.generator.rows()
    }

    /// The generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// The generator compressed into the shared [`CsrMatrix`] kernel —
    /// the form the uniformization ([`Ctmc::transient`]) and iterative
    /// stationary paths consume.
    pub fn sparse_generator(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.generator, 0.0)
    }

    /// Transition rate from `i` to `j` (`i ≠ j`), or the negative total
    /// outflow when `i == j`.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.generator[(i, j)]
    }

    /// The stationary distribution, via GTH elimination.
    ///
    /// # Errors
    ///
    /// [`MarkovError::NotErgodic`] if the chain is reducible.
    pub fn stationary(&self) -> Result<Vec<f64>> {
        gth_stationary(&self.generator)
    }

    /// The uniformization constant: the largest total outflow rate.
    pub fn uniformization_rate(&self) -> f64 {
        (0..self.n())
            .map(|i| -self.generator[(i, i)])
            .fold(0.0, f64::max)
    }

    /// The uniformized DTMC `P = I + Q/Λ` for `Λ ≥ max outflow` (a strict
    /// inflation `Λ = 1.02 × max` is used so every state keeps a self-loop,
    /// making the DTMC aperiodic).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the chain has no transitions at all
    /// (uniformization rate zero).
    pub fn uniformized_dtmc(&self) -> Result<Dtmc> {
        let lam = self.uniformization_rate();
        if lam <= 0.0 {
            return Err(MarkovError::InvalidChain {
                reason: "cannot uniformize a chain with no transitions".into(),
            });
        }
        let lam = lam * 1.02;
        let n = self.n();
        let p = Matrix::from_fn(n, n, |r, c| {
            let base = if r == c { 1.0 } else { 0.0 };
            base + self.generator[(r, c)] / lam
        });
        Dtmc::from_matrix(p)
    }

    /// Transient distribution after time `t` starting from `initial`, via
    /// uniformization with a truncated Poisson sum.
    ///
    /// The truncation point is chosen so the neglected Poisson tail is below
    /// `1e-12`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidChain`] if `initial` has the wrong length or
    ///   is not a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn transient(&self, initial: &[f64], t: f64) -> Result<Vec<f64>> {
        assert!(t >= 0.0, "time must be nonnegative");
        if initial.len() != self.n() {
            return Err(MarkovError::InvalidChain {
                reason: format!(
                    "initial distribution has length {}, chain has {} states",
                    initial.len(),
                    self.n()
                ),
            });
        }
        let total: f64 = initial.iter().sum();
        if (total - 1.0).abs() > 1e-9 || initial.iter().any(|&p| p < 0.0) {
            return Err(MarkovError::InvalidChain {
                reason: "initial vector is not a probability distribution".into(),
            });
        }
        if t == 0.0 {
            return Ok(initial.to_vec());
        }
        let lam = self.uniformization_rate().max(1e-12) * 1.02;
        // The uniformized operator P = I + Q/Λ in shared CSR form: the
        // repeated vector–matrix products below cost O(nnz) per Poisson
        // term instead of O(n²).
        let p = self
            .sparse_generator()
            .scale(1.0 / lam)
            .plus_scaled_identity(1.0)
            .expect("generator is square");
        let a = lam * t;
        // Truncation K: P(Poisson(a) > K) < 1e-12. Use mean + 10 sqrt + 30.
        let k_max = (a + 10.0 * a.sqrt() + 30.0).ceil() as usize;

        let mut result = vec![0.0; self.n()];
        let mut v = initial.to_vec();
        let mut next = vec![0.0; self.n()];
        // Poisson weights computed iteratively to avoid overflow.
        let mut log_w = -a; // log of e^{-a} a^0 / 0!
        for k in 0..=k_max {
            let w = log_w.exp();
            for (ri, vi) in result.iter_mut().zip(&v) {
                *ri += w * vi;
            }
            p.vec_mat_into(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
            log_w += (a / (k as f64 + 1.0)).ln();
        }
        // Renormalize the tiny truncation loss.
        let s: f64 = result.iter().sum();
        for r in &mut result {
            *r /= s;
        }
        Ok(result)
    }

    /// Expected value of `f` under the stationary distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`Ctmc::stationary`] failures.
    pub fn stationary_mean<F: Fn(usize) -> f64>(&self, f: F) -> Result<f64> {
        let pi = self.stationary()?;
        Ok(pi.iter().enumerate().map(|(i, &p)| p * f(i)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        Ctmc::from_rates(&[vec![0.0, 2.0], vec![1.0, 0.0]]).unwrap()
    }

    #[test]
    fn from_rates_fills_diagonal() {
        let c = two_state();
        assert_eq!(c.rate(0, 0), -2.0);
        assert_eq!(c.rate(1, 1), -1.0);
    }

    #[test]
    fn from_generator_validates_row_sums() {
        let q = Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            Ctmc::from_generator(q),
            Err(MarkovError::InvalidChain { .. })
        ));
    }

    #[test]
    fn stationary_two_state() {
        let pi = two_state().stationary().unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn uniformized_dtmc_preserves_stationary() {
        let c = two_state();
        let d = c.uniformized_dtmc().unwrap();
        let pi_c = c.stationary().unwrap();
        let pi_d = d.stationary().unwrap();
        for (a, b) in pi_c.iter().zip(&pi_d) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transient_converges_to_stationary() {
        let c = two_state();
        let p_t = c.transient(&[1.0, 0.0], 50.0).unwrap();
        let pi = c.stationary().unwrap();
        for (a, b) in p_t.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-9, "{p_t:?} vs {pi:?}");
        }
    }

    #[test]
    fn transient_zero_time_is_identity() {
        let c = two_state();
        let p0 = c.transient(&[0.25, 0.75], 0.0).unwrap();
        assert_eq!(p0, vec![0.25, 0.75]);
    }

    #[test]
    fn transient_exact_two_state() {
        // For a two-state chain the transient solution is known in closed
        // form: p₀(t) = π₀ + (1 − π₀) e^{−(a+b)t} starting from state 0,
        // with a = rate(0→1), b = rate(1→0).
        let (a, b) = (2.0, 1.0);
        let c = Ctmc::from_rates(&[vec![0.0, a], vec![b, 0.0]]).unwrap();
        let t = 0.7;
        let p = c.transient(&[1.0, 0.0], t).unwrap();
        let pi0 = b / (a + b);
        let exact = pi0 + (1.0 - pi0) * (-(a + b) * t).exp();
        assert!((p[0] - exact).abs() < 1e-10, "{} vs {exact}", p[0]);
    }

    #[test]
    fn stationary_mean_queue_length() {
        // Truncated M/M/1, λ=0.5: E[L] should be near ρ/(1−ρ) = 1.
        let n = 80;
        let mut rates = vec![vec![0.0; n]; n];
        for i in 0..n - 1 {
            rates[i][i + 1] = 0.5;
            rates[i + 1][i] = 1.0;
        }
        let c = Ctmc::from_rates(&rates).unwrap();
        let el = c.stationary_mean(|i| i as f64).unwrap();
        assert!((el - 1.0).abs() < 1e-9, "E[L] = {el}");
    }

    #[test]
    fn invalid_initial_rejected() {
        let c = two_state();
        assert!(c.transient(&[0.5, 0.2], 1.0).is_err());
        assert!(c.transient(&[1.0], 1.0).is_err());
    }
}
