//! Phase-type (PH) distributions.
//!
//! A PH distribution is the law of the absorption time of a CTMC with
//! transient phases `1..=p` and one absorbing state: parameters
//! `(α, S)` where `α` is the initial phase distribution and `S` the
//! transient-to-transient sub-generator; the exit-rate vector is
//! `s⁰ = −S·e`.
//!
//! PH laws are dense in the positive distributions and close the
//! matrix-geometric machinery under both arrivals (MAP) and services —
//! the extension the paper's conclusion singles out. This module provides
//! the standard constructions (exponential, Erlang, hyperexponential,
//! Coxian), moments, the Laplace–Stieltjes transform (which is all the
//! Theorem-2 σ computation needs), and CDF evaluation.

use slb_linalg::{Lu, Matrix};

use crate::{MarkovError, Result};

/// A phase-type distribution `PH(α, S)`.
///
/// # Example
///
/// ```
/// use slb_markov::PhaseType;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// // Erlang-3 with rate 3 per stage: mean 1, CV² = 1/3.
/// let ph = PhaseType::erlang(3, 3.0)?;
/// assert!((ph.mean()? - 1.0).abs() < 1e-12);
/// assert!((ph.scv()? - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseType {
    alpha: Vec<f64>,
    s: Matrix,
}

impl PhaseType {
    /// Builds a PH distribution from an initial distribution `alpha` and
    /// sub-generator `s`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] unless `alpha` is a probability
    /// vector of matching dimension and `s` is a valid sub-generator
    /// (nonnegative off-diagonals, strictly nonpositive diagonal, row
    /// sums ≤ 0 with at least one strict exit path).
    pub fn new(alpha: Vec<f64>, s: Matrix) -> Result<Self> {
        if !s.is_square() || s.rows() != alpha.len() || alpha.is_empty() {
            return Err(MarkovError::InvalidChain {
                reason: format!(
                    "PH dimensions inconsistent: alpha has {} entries, S is {:?}",
                    alpha.len(),
                    s.shape()
                ),
            });
        }
        let total: f64 = alpha.iter().sum();
        if alpha.iter().any(|&a| a < 0.0) || (total - 1.0).abs() > 1e-9 {
            return Err(MarkovError::InvalidChain {
                reason: "alpha is not a probability distribution".into(),
            });
        }
        let p = s.rows();
        let mut any_exit = false;
        for r in 0..p {
            let mut row_sum = 0.0;
            for c in 0..p {
                let v = s[(r, c)];
                if r != c && v < 0.0 {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("negative off-diagonal {v} in S at ({r}, {c})"),
                    });
                }
                row_sum += v;
            }
            if row_sum > 1e-9 {
                return Err(MarkovError::InvalidChain {
                    reason: format!("row {r} of S has positive sum {row_sum}"),
                });
            }
            if row_sum < -1e-12 {
                any_exit = true;
            }
        }
        if !any_exit {
            return Err(MarkovError::InvalidChain {
                reason: "S has no exit rate; absorption would never happen".into(),
            });
        }
        Ok(PhaseType { alpha, s })
    }

    /// Exponential with the given `rate` (one phase).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `rate <= 0`.
    pub fn exponential(rate: f64) -> Result<Self> {
        if rate <= 0.0 || !rate.is_finite() {
            return Err(MarkovError::InvalidChain {
                reason: format!("rate must be positive, got {rate}"),
            });
        }
        PhaseType::new(vec![1.0], Matrix::from_vec(1, 1, vec![-rate]).expect("1x1"))
    }

    /// Erlang with `k` sequential phases of the given per-phase `rate`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `k == 0` or `rate <= 0`.
    pub fn erlang(k: usize, rate: f64) -> Result<Self> {
        if k == 0 || rate <= 0.0 {
            return Err(MarkovError::InvalidChain {
                reason: format!("need k >= 1 and rate > 0, got k = {k}, rate = {rate}"),
            });
        }
        let mut s = Matrix::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = -rate;
            if i + 1 < k {
                s[(i, i + 1)] = rate;
            }
        }
        let mut alpha = vec![0.0; k];
        alpha[0] = 1.0;
        PhaseType::new(alpha, s)
    }

    /// Hyperexponential: branch `i` taken with probability `probs[i]`,
    /// exponential with `rates[i]`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] on mismatched/invalid parameters.
    pub fn hyperexponential(probs: &[f64], rates: &[f64]) -> Result<Self> {
        if probs.len() != rates.len() || probs.is_empty() {
            return Err(MarkovError::InvalidChain {
                reason: "probs and rates must be non-empty and equal length".into(),
            });
        }
        if rates.iter().any(|&r| r <= 0.0) {
            return Err(MarkovError::InvalidChain {
                reason: "rates must be positive".into(),
            });
        }
        let p = probs.len();
        let mut s = Matrix::zeros(p, p);
        for i in 0..p {
            s[(i, i)] = -rates[i];
        }
        PhaseType::new(probs.to_vec(), s)
    }

    /// Coxian distribution: phase `i` completes at `rates[i]`, continuing
    /// to phase `i+1` with probability `conts[i]` (and exiting
    /// otherwise); `conts.len() == rates.len() − 1`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] on invalid parameters.
    pub fn coxian(rates: &[f64], conts: &[f64]) -> Result<Self> {
        if rates.is_empty() || conts.len() + 1 != rates.len() {
            return Err(MarkovError::InvalidChain {
                reason: "need rates.len() = conts.len() + 1 >= 1".into(),
            });
        }
        if rates.iter().any(|&r| r <= 0.0) || conts.iter().any(|&c| !(0.0..=1.0).contains(&c)) {
            return Err(MarkovError::InvalidChain {
                reason: "invalid Coxian rates/continuation probabilities".into(),
            });
        }
        let p = rates.len();
        let mut s = Matrix::zeros(p, p);
        for i in 0..p {
            s[(i, i)] = -rates[i];
            if i + 1 < p {
                s[(i, i + 1)] = rates[i] * conts[i];
            }
        }
        let mut alpha = vec![0.0; p];
        alpha[0] = 1.0;
        PhaseType::new(alpha, s)
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.alpha.len()
    }

    /// The initial phase distribution `α`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator `S`.
    pub fn sub_generator(&self) -> &Matrix {
        &self.s
    }

    /// The exit-rate vector `s⁰ = −S·e`.
    pub fn exit_rates(&self) -> Vec<f64> {
        self.s.row_sums().iter().map(|&x| -x).collect()
    }

    /// `k`-th raw moment: `E[Xᵏ] = k!·α(−S)⁻ᵏ e`.
    ///
    /// # Errors
    ///
    /// Propagates a solve failure for defective representations.
    pub fn moment(&self, k: u32) -> Result<f64> {
        let p = self.phases();
        let neg_s = -&self.s;
        let lu = Lu::new(&neg_s)?;
        // v ← (−S)⁻¹ e, iterated k times; moment = k! α·v.
        let mut v = vec![1.0; p];
        let mut factorial = 1.0;
        for i in 1..=k {
            v = lu.solve_vec(&v)?;
            factorial *= f64::from(i);
        }
        Ok(factorial * slb_linalg::vector::dot(&self.alpha, &v))
    }

    /// Mean `E[X]`.
    ///
    /// # Errors
    ///
    /// See [`PhaseType::moment`].
    pub fn mean(&self) -> Result<f64> {
        self.moment(1)
    }

    /// Squared coefficient of variation `Var[X]/E[X]²`.
    ///
    /// # Errors
    ///
    /// See [`PhaseType::moment`].
    pub fn scv(&self) -> Result<f64> {
        let m1 = self.moment(1)?;
        let m2 = self.moment(2)?;
        Ok((m2 - m1 * m1) / (m1 * m1))
    }

    /// Laplace–Stieltjes transform `E[e^{−sX}] = α(sI − S)⁻¹ s⁰`.
    ///
    /// # Errors
    ///
    /// Propagates a solve failure (cannot occur for `s ≥ 0` on a valid
    /// representation).
    ///
    /// # Panics
    ///
    /// Panics if `s < 0`.
    pub fn lst(&self, s: f64) -> Result<f64> {
        assert!(s >= 0.0, "LST argument must be nonnegative");
        let p = self.phases();
        let m = Matrix::from_fn(p, p, |r, c| (if r == c { s } else { 0.0 }) - self.s[(r, c)]);
        let x = m.solve_vec(&self.exit_rates())?;
        Ok(slb_linalg::vector::dot(&self.alpha, &x))
    }

    /// CDF `P(X ≤ t) = 1 − α·exp(S t)·e`, via uniformization of the
    /// defective chain.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn cdf(&self, t: f64) -> Result<f64> {
        assert!(t >= 0.0, "time must be nonnegative");
        if t == 0.0 {
            return Ok(0.0);
        }
        let p = self.phases();
        let lam = (0..p).map(|i| -self.s[(i, i)]).fold(0.0_f64, f64::max) * 1.02 + 1e-12;
        // Defective DTMC P = I + S/Λ (row sums < 1 encode absorption).
        let pm = Matrix::from_fn(p, p, |r, c| {
            (if r == c { 1.0 } else { 0.0 }) + self.s[(r, c)] / lam
        });
        let a = lam * t;
        let k_max = (a + 10.0 * a.sqrt() + 30.0).ceil() as usize;
        let mut v = self.alpha.clone();
        let mut next = vec![0.0; v.len()];
        let mut survive = 0.0;
        let mut log_w = -a;
        for k in 0..=k_max {
            let w = log_w.exp();
            let mass: f64 = v.iter().sum();
            survive += w * mass;
            // In-place uniformization step — no allocation per Poisson
            // term.
            pm.vec_mat_into(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
            log_w += (a / (k as f64 + 1.0)).ln();
        }
        Ok((1.0 - survive).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_moments_and_lst() {
        let ph = PhaseType::exponential(2.0).unwrap();
        assert!((ph.mean().unwrap() - 0.5).abs() < 1e-14);
        assert!((ph.scv().unwrap() - 1.0).abs() < 1e-12);
        // LST of exp(µ): µ/(µ+s).
        for s in [0.0, 0.5, 3.0] {
            assert!((ph.lst(s).unwrap() - 2.0 / (2.0 + s)).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_properties() {
        let ph = PhaseType::erlang(4, 4.0).unwrap();
        assert!((ph.mean().unwrap() - 1.0).abs() < 1e-12);
        assert!((ph.scv().unwrap() - 0.25).abs() < 1e-12);
        // LST: (r/(r+s))^k.
        let s = 1.3;
        assert!((ph.lst(s).unwrap() - (4.0f64 / 5.3).powi(4)).abs() < 1e-12);
    }

    #[test]
    fn hyperexp_properties() {
        let ph = PhaseType::hyperexponential(&[0.4, 0.6], &[1.0, 3.0]).unwrap();
        let mean = 0.4 + 0.6 / 3.0;
        assert!((ph.mean().unwrap() - mean).abs() < 1e-12);
        assert!(ph.scv().unwrap() > 1.0);
        let s = 0.7;
        let expect = 0.4 * 1.0 / 1.7 + 0.6 * 3.0 / 3.7;
        assert!((ph.lst(s).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn coxian_reduces_to_erlang() {
        // Coxian with continuation probability 1 everywhere = Erlang.
        let cox = PhaseType::coxian(&[2.0, 2.0, 2.0], &[1.0, 1.0]).unwrap();
        let erl = PhaseType::erlang(3, 2.0).unwrap();
        assert!((cox.mean().unwrap() - erl.mean().unwrap()).abs() < 1e-12);
        assert!((cox.lst(0.9).unwrap() - erl.lst(0.9).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_exponential() {
        let ph = PhaseType::exponential(1.5).unwrap();
        for t in [0.0, 0.3, 1.0, 2.5] {
            let exact = 1.0 - (-1.5f64 * t).exp();
            assert!(
                (ph.cdf(t).unwrap() - exact).abs() < 1e-9,
                "t={t}: {} vs {exact}",
                ph.cdf(t).unwrap()
            );
        }
    }

    #[test]
    fn cdf_is_monotone_distribution() {
        let ph = PhaseType::erlang(3, 2.0).unwrap();
        let mut prev = 0.0;
        for i in 0..30 {
            let t = i as f64 * 0.25;
            let c = ph.cdf(t).unwrap();
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(prev > 0.99);
    }

    #[test]
    fn invalid_representations_rejected() {
        assert!(PhaseType::exponential(0.0).is_err());
        assert!(PhaseType::erlang(0, 1.0).is_err());
        assert!(PhaseType::hyperexponential(&[0.5], &[1.0, 2.0]).is_err());
        // alpha not a distribution.
        assert!(PhaseType::new(
            vec![0.5, 0.2],
            Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]).unwrap()
        )
        .is_err());
        // No exit.
        assert!(PhaseType::new(
            vec![1.0, 0.0],
            Matrix::from_rows(&[&[-1.0, 1.0], &[1.0, -1.0]]).unwrap()
        )
        .is_err());
        // Positive row sum.
        assert!(PhaseType::new(vec![1.0], Matrix::from_vec(1, 1, vec![0.5]).unwrap()).is_err());
    }

    #[test]
    fn moment_zero_is_one() {
        let ph = PhaseType::erlang(2, 1.0).unwrap();
        assert!((ph.moment(0).unwrap() - 1.0).abs() < 1e-14);
    }
}
