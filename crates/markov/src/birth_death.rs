//! Birth–death chains and classical M/M/· closed forms.
//!
//! These are the exact baselines the SQ(d) analysis is validated against:
//! `SQ(1)` decomposes into independent M/M/1 queues, and the complete-
//! pooling M/M/c system brackets what any dispatching policy can achieve.
//! All formulas use a unit service rate unless stated otherwise, matching
//! the paper's convention `µ = 1`.

use crate::{MarkovError, Result};

/// Stationary distribution of a finite birth–death chain with birth rates
/// `lambda[i]` (from state `i` to `i+1`) and death rates `mu[i]` (from
/// `i+1` to `i`).
///
/// # Errors
///
/// * [`MarkovError::InvalidChain`] if the slices have different lengths,
///   contain a negative rate, or some `mu[i] = 0` (chain would be
///   reducible upward).
///
/// # Example
///
/// ```
/// use slb_markov::birth_death::stationary;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// // Two-state chain: birth 1, death 2 — π = (2/3, 1/3).
/// let pi = stationary(&[1.0], &[2.0])?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
pub fn stationary(lambda: &[f64], mu: &[f64]) -> Result<Vec<f64>> {
    if lambda.len() != mu.len() {
        return Err(MarkovError::InvalidChain {
            reason: format!(
                "birth/death rate slices differ in length: {} vs {}",
                lambda.len(),
                mu.len()
            ),
        });
    }
    if lambda.iter().chain(mu.iter()).any(|&r| r < 0.0) {
        return Err(MarkovError::InvalidChain {
            reason: "negative rate in birth-death chain".into(),
        });
    }
    if mu.contains(&0.0) {
        return Err(MarkovError::InvalidChain {
            reason: "zero death rate makes the chain reducible".into(),
        });
    }
    // Detailed balance: π_{i+1} = π_i λ_i / µ_i; accumulate in a numerically
    // benign multiplicative form and normalize at the end.
    let n = lambda.len() + 1;
    let mut pi = Vec::with_capacity(n);
    pi.push(1.0);
    for i in 0..lambda.len() {
        let next = pi[i] * lambda[i] / mu[i];
        pi.push(next);
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// Queue-length pmf `P(L = k)` for `k = 0..=k_max` in a stable M/M/1 queue
/// with arrival rate `rho` and unit service rate: geometric
/// `(1 − ρ) ρ^k`.
///
/// # Panics
///
/// Panics unless `0 ≤ rho < 1`.
pub fn mm1_queue_length_pmf(rho: f64, k_max: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&rho), "need 0 <= rho < 1, got {rho}");
    (0..=k_max)
        .map(|k| (1.0 - rho) * rho.powi(k as i32))
        .collect()
}

/// Mean number in system for M/M/1: `ρ/(1−ρ)`.
///
/// # Panics
///
/// Panics unless `0 ≤ rho < 1`.
pub fn mm1_mean_jobs(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 <= rho < 1, got {rho}");
    rho / (1.0 - rho)
}

/// Mean sojourn (response) time for M/M/1 with unit service rate:
/// `1/(1−ρ)`.
///
/// # Panics
///
/// Panics unless `0 ≤ rho < 1`.
pub fn mm1_mean_sojourn(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho), "need 0 <= rho < 1, got {rho}");
    1.0 / (1.0 - rho)
}

/// Erlang-C: the probability an arriving job waits in an M/M/c queue with
/// offered load `a = λ/µ` and `c` servers (requires `a < c`).
///
/// Computed via the numerically stable recurrence on the Erlang-B blocking
/// probability.
///
/// # Panics
///
/// Panics if `c == 0` or `a < 0` or `a >= c` (unstable).
pub fn erlang_c(c: usize, a: f64) -> f64 {
    assert!(c > 0, "need at least one server");
    assert!(a >= 0.0, "offered load must be nonnegative");
    assert!(a < c as f64, "unstable M/M/c: a = {a} >= c = {c}");
    if a == 0.0 {
        return 0.0;
    }
    // Erlang-B recurrence: B(0) = 1, B(k) = a·B(k−1) / (k + a·B(k−1)).
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Mean waiting time (excluding service) in M/M/c with arrival rate
/// `lambda`, unit service rate and `c` servers.
///
/// # Panics
///
/// Panics if the system is unstable (`lambda >= c`).
pub fn mmc_mean_wait(c: usize, lambda: f64) -> f64 {
    let a = lambda;
    let pc = erlang_c(c, a);
    pc / (c as f64 - a)
}

/// Mean sojourn time in M/M/c with unit service rate.
///
/// # Panics
///
/// Panics if the system is unstable.
pub fn mmc_mean_sojourn(c: usize, lambda: f64) -> f64 {
    mmc_mean_wait(c, lambda) + 1.0
}

/// Queue-length pmf of the M/M/1/K loss queue (`K` = capacity including
/// the job in service) with load `rho`.
///
/// # Panics
///
/// Panics if `rho < 0`.
pub fn mm1k_queue_length_pmf(rho: f64, k: usize) -> Vec<f64> {
    assert!(rho >= 0.0, "load must be nonnegative");
    if (rho - 1.0).abs() < 1e-12 {
        return vec![1.0 / (k as f64 + 1.0); k + 1];
    }
    let denom = 1.0 - rho.powi(k as i32 + 1);
    (0..=k)
        .map(|i| (1.0 - rho) * rho.powi(i as i32) / denom)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_matches_mm1_truncation() {
        let rho = 0.6;
        let n = 200;
        let lambda = vec![rho; n];
        let mu = vec![1.0; n];
        let pi = stationary(&lambda, &mu).unwrap();
        let exact = mm1_queue_length_pmf(rho, 10);
        for k in 0..=10 {
            assert!((pi[k] - exact[k]).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn stationary_rejects_bad_input() {
        assert!(stationary(&[1.0], &[2.0, 3.0]).is_err());
        assert!(stationary(&[-1.0], &[2.0]).is_err());
        assert!(stationary(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn mm1_formulas_consistent() {
        let rho = 0.75;
        // E[L] from the pmf (truncated far out) vs closed form.
        let pmf = mm1_queue_length_pmf(rho, 2000);
        let el: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((el - mm1_mean_jobs(rho)).abs() < 1e-9);
        // Little's law: E[T] = E[L]/λ.
        assert!((mm1_mean_sojourn(rho) - mm1_mean_jobs(rho) / rho).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_single_server_is_rho() {
        // For c = 1, P(wait) = ρ.
        for &rho in &[0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic table value: c = 5, a = 4 → C ≈ 0.5541.
        let c = erlang_c(5, 4.0);
        assert!((c - 0.5541).abs() < 5e-4, "got {c}");
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let rho = 0.8;
        assert!((mmc_mean_wait(1, rho) - rho / (1.0 - rho)).abs() < 1e-12);
        assert!((mmc_mean_sojourn(1, rho) - mm1_mean_sojourn(rho)).abs() < 1e-12);
    }

    #[test]
    fn mmc_beats_parallel_mm1() {
        // Complete pooling dominates independent queues at equal per-server
        // load: W(M/M/c) < W(M/M/1) for c > 1.
        let per_server = 0.8;
        let c = 4;
        let pooled = mmc_mean_wait(c, per_server * c as f64);
        let split = per_server / (1.0 - per_server);
        assert!(pooled < split);
    }

    #[test]
    fn mm1k_sums_to_one_and_limits() {
        let pmf = mm1k_queue_length_pmf(0.5, 10);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // ρ = 1 special case is uniform.
        let u = mm1k_queue_length_pmf(1.0, 4);
        for p in u {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn erlang_c_rejects_overload() {
        let _ = erlang_c(2, 2.0);
    }
}
