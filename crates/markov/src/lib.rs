//! # slb-markov
//!
//! Finite Markov-chain toolkit: continuous- and discrete-time chains,
//! numerically stable stationary solvers, and closed-form birth–death /
//! M/M/c analytics.
//!
//! This crate supplies the "classical" queueing substrate that the finite-
//! regime SQ(d) analysis is checked against:
//!
//! * [`Ctmc`] / [`Dtmc`] — dense generator / stochastic-matrix chains with
//!   validation and stationary solves via the Grassmann–Taksar–Heyman
//!   (GTH) elimination, which involves no subtractions and is therefore
//!   immune to the cancellation that plagues naive `πQ = 0` solves.
//! * [`SparseCtmc`] — a sparse chain backed by the shared
//!   [`slb_linalg::CsrMatrix`] kernel, with uniformization-based
//!   power-iteration and Jacobi stationary solvers
//!   ([`stationary_power_csr`], [`stationary_jacobi_csr`] for callers that
//!   assemble their own CSR generator). Used for the brute-force
//!   ground-truth SQ(d) chains whose state spaces are too large for dense
//!   `O(n³)` elimination.
//! * [`birth_death`] — birth–death chains and the exact M/M/1, M/M/c and
//!   M/M/1/K formulas (Erlang C and friends) used as oracles in tests and
//!   as the `d = 1` special case of SQ(d).
//!
//! ## Example: M/M/1 as a CTMC vs the closed form
//!
//! ```
//! use slb_markov::{birth_death, Ctmc};
//!
//! # fn main() -> Result<(), slb_markov::MarkovError> {
//! // Truncated M/M/1 with λ = 0.5, µ = 1 on {0, …, 60}.
//! let n = 61;
//! let mut q = vec![vec![0.0; n]; n];
//! for i in 0..n - 1 {
//!     q[i][i + 1] = 0.5;
//!     q[i + 1][i] = 1.0;
//! }
//! let ctmc = Ctmc::from_rates(&q)?;
//! let pi = ctmc.stationary()?;
//! let exact = birth_death::mm1_queue_length_pmf(0.5, 10);
//! assert!((pi[3] - exact[3]).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birth_death;
mod ctmc;
mod dtmc;
mod error;
mod gth;
mod map;
mod phase_type;
mod sparse;

pub use ctmc::Ctmc;
pub use dtmc::Dtmc;
pub use error::MarkovError;
pub use gth::{gth_stationary, gth_stationary_csr};
pub use map::Map;
pub use phase_type::PhaseType;
pub use sparse::{generator_residual, stationary_jacobi_csr, stationary_power_csr, SparseCtmc};

/// Convenience result alias for fallible Markov-chain operations.
pub type Result<T> = std::result::Result<T, MarkovError>;
