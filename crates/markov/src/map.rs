//! Markovian Arrival Processes (MAPs).
//!
//! A MAP is a point process modulated by a CTMC: `(D0, D1)` with
//! `D0 + D1` an irreducible generator, `D1 ≥ 0` holding the rates of
//! transitions *with* an arrival and `D0` those without (off-diagonal
//! ≥ 0). MAPs close the matrix-geometric framework under arrivals and are
//! the extension the paper's conclusion proposes for fitting real traces;
//! Poisson (`D0 = −λ, D1 = λ`) and MMPPs are special cases.

use slb_linalg::{vector, Lu, Matrix};

use crate::{gth_stationary, MarkovError, Result};

/// A Markovian Arrival Process `MAP(D0, D1)`.
///
/// # Example
///
/// ```
/// use slb_markov::Map;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// // A 2-state MMPP: slow phase (rate 0.2), fast phase (rate 2.0).
/// let map = Map::mmpp2(0.5, 0.25, 0.2, 2.0)?;
/// let lam = map.rate()?;
/// assert!(lam > 0.2 && lam < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Map {
    d0: Matrix,
    d1: Matrix,
}

impl Map {
    /// Builds and validates a MAP.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] unless `D0`/`D1` are square of equal
    /// size, `D1 ≥ 0`, `D0` has nonnegative off-diagonals, and
    /// `(D0 + D1)·e = 0`.
    pub fn new(d0: Matrix, d1: Matrix) -> Result<Self> {
        if !d0.is_square() || d0.shape() != d1.shape() {
            return Err(MarkovError::InvalidChain {
                reason: format!(
                    "D0 {:?} and D1 {:?} must be square and equal-shaped",
                    d0.shape(),
                    d1.shape()
                ),
            });
        }
        let p = d0.rows();
        for r in 0..p {
            let mut row = 0.0;
            for c in 0..p {
                if d1[(r, c)] < 0.0 {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("negative D1 entry at ({r}, {c})"),
                    });
                }
                if r != c && d0[(r, c)] < 0.0 {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("negative D0 off-diagonal at ({r}, {c})"),
                    });
                }
                row += d0[(r, c)] + d1[(r, c)];
            }
            if row.abs() > 1e-9 {
                return Err(MarkovError::InvalidChain {
                    reason: format!("row {r} of D0 + D1 sums to {row}, expected 0"),
                });
            }
        }
        Ok(Map { d0, d1 })
    }

    /// A Poisson process of the given rate, as the one-phase MAP.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `rate <= 0`.
    pub fn poisson(rate: f64) -> Result<Self> {
        if rate <= 0.0 || !rate.is_finite() {
            return Err(MarkovError::InvalidChain {
                reason: format!("rate must be positive, got {rate}"),
            });
        }
        Map::new(
            Matrix::from_vec(1, 1, vec![-rate]).expect("1x1"),
            Matrix::from_vec(1, 1, vec![rate]).expect("1x1"),
        )
    }

    /// A two-phase Markov-modulated Poisson process: phase switch rates
    /// `r01` (slow → fast) and `r10` (fast → slow), Poisson arrival rates
    /// `lam0`/`lam1` per phase.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] on non-positive switch rates or
    /// negative arrival rates.
    pub fn mmpp2(r01: f64, r10: f64, lam0: f64, lam1: f64) -> Result<Self> {
        if r01 <= 0.0 || r10 <= 0.0 || lam0 < 0.0 || lam1 < 0.0 {
            return Err(MarkovError::InvalidChain {
                reason: "MMPP needs positive switch rates and nonnegative arrival rates".into(),
            });
        }
        let d0 = Matrix::from_rows(&[&[-(r01 + lam0), r01], &[r10, -(r10 + lam1)]]).expect("2x2");
        let d1 = Matrix::from_rows(&[&[lam0, 0.0], &[0.0, lam1]]).expect("2x2");
        Map::new(d0, d1)
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.d0.rows()
    }

    /// The no-arrival block `D0`.
    pub fn d0(&self) -> &Matrix {
        &self.d0
    }

    /// The arrival block `D1`.
    pub fn d1(&self) -> &Matrix {
        &self.d1
    }

    /// Stationary distribution of the modulating chain `D0 + D1`.
    ///
    /// # Errors
    ///
    /// Propagates a GTH failure for reducible modulation.
    pub fn phase_stationary(&self) -> Result<Vec<f64>> {
        gth_stationary(&self.d0.add(&self.d1)?)
    }

    /// Fundamental arrival rate `λ = π D1 e`.
    ///
    /// # Errors
    ///
    /// See [`Map::phase_stationary`].
    pub fn rate(&self) -> Result<f64> {
        let pi = self.phase_stationary()?;
        Ok(vector::sum(&self.d1.vec_mat(&pi)))
    }

    /// Stationary phase distribution *embedded at arrival epochs*:
    /// the stationary vector of `P = (−D0)⁻¹ D1`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn embedded_phase_stationary(&self) -> Result<Vec<f64>> {
        let neg_d0 = -&self.d0;
        let lu = Lu::new(&neg_d0)?;
        let p = lu.solve_mat(&self.d1)?;
        // Stationary of the stochastic matrix P via GTH on P − I.
        let n = self.phases();
        let q = Matrix::from_fn(n, n, |r, c| p[(r, c)] - if r == c { 1.0 } else { 0.0 });
        gth_stationary(&q)
    }

    /// `k`-th raw moment of the stationary interarrival time:
    /// `E[Aᵏ] = k!·φ(−D0)⁻ᵏ e` with `φ` the embedded phase distribution.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn interarrival_moment(&self, k: u32) -> Result<f64> {
        let phi = self.embedded_phase_stationary()?;
        let neg_d0 = -&self.d0;
        let lu = Lu::new(&neg_d0)?;
        let mut v = vec![1.0; self.phases()];
        let mut factorial = 1.0;
        for i in 1..=k {
            v = lu.solve_vec(&v)?;
            factorial *= f64::from(i);
        }
        Ok(factorial * vector::dot(&phi, &v))
    }

    /// Squared coefficient of variation of the stationary interarrival
    /// time (1 for Poisson, > 1 for bursty MMPPs).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn interarrival_scv(&self) -> Result<f64> {
        let m1 = self.interarrival_moment(1)?;
        let m2 = self.interarrival_moment(2)?;
        Ok((m2 - m1 * m1) / (m1 * m1))
    }

    /// The renewal process with phase-type interarrival law `ph`, as a MAP:
    /// `D0 = S` (the sub-generator) and `D1 = s·α` (absorption restarts the
    /// phase from the initial distribution).
    ///
    /// This embeds every Erlang / hyperexponential / Coxian renewal stream
    /// into the MAP machinery, so the SQ(d) bound models extend beyond
    /// Poisson exactly as the paper's conclusion anticipates.
    ///
    /// # Errors
    ///
    /// Propagates matrix-shape failures (cannot occur for a validated
    /// [`PhaseType`](crate::PhaseType)).
    pub fn renewal(ph: &crate::PhaseType) -> Result<Self> {
        let p = ph.phases();
        let exit = ph.exit_rates();
        let alpha = ph.alpha();
        let d1 = Matrix::from_fn(p, p, |r, c| exit[r] * alpha[c]);
        Map::new(ph.sub_generator().clone(), d1)
    }

    /// The same MAP with time rescaled by `c > 0`: `(c·D0, c·D1)`. The
    /// fundamental rate scales by `c` while the interarrival SCV and the
    /// phase process's correlation *structure* are preserved.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `c` is not positive and finite.
    pub fn scaled(&self, c: f64) -> Result<Self> {
        if !(c > 0.0 && c.is_finite()) {
            return Err(MarkovError::InvalidChain {
                reason: format!("scale factor must be positive and finite, got {c}"),
            });
        }
        Map::new(self.d0.scale(c), self.d1.scale(c))
    }

    /// Rescales time so the fundamental rate becomes exactly `rate`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `rate` is not positive and finite;
    /// propagates [`Map::rate`] failures.
    pub fn with_rate(&self, rate: f64) -> Result<Self> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(MarkovError::InvalidChain {
                reason: format!("target rate must be positive and finite, got {rate}"),
            });
        }
        self.scaled(rate / self.rate()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_special_case() {
        let map = Map::poisson(1.5).unwrap();
        assert_eq!(map.phases(), 1);
        assert!((map.rate().unwrap() - 1.5).abs() < 1e-14);
        assert!((map.interarrival_moment(1).unwrap() - 1.0 / 1.5).abs() < 1e-14);
        assert!((map.interarrival_scv().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp_rate_is_phase_weighted() {
        // Symmetric switching: half time in each phase.
        let map = Map::mmpp2(1.0, 1.0, 0.5, 1.5).unwrap();
        assert!((map.rate().unwrap() - 1.0).abs() < 1e-12);
        let pi = map.phase_stationary().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mmpp_is_bursty() {
        // Strong modulation ⇒ SCV > 1.
        let map = Map::mmpp2(0.1, 0.1, 0.1, 3.0).unwrap();
        assert!(map.interarrival_scv().unwrap() > 1.5);
        // Fast switching ⇒ nearly Poisson.
        let fast = Map::mmpp2(100.0, 100.0, 0.9, 1.1).unwrap();
        assert!((fast.interarrival_scv().unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn embedded_vs_time_stationary_differ() {
        // Arrivals oversample the fast phase.
        let map = Map::mmpp2(0.5, 0.5, 0.2, 2.0).unwrap();
        let time_pi = map.phase_stationary().unwrap();
        let emb = map.embedded_phase_stationary().unwrap();
        assert!(emb[1] > time_pi[1], "{emb:?} vs {time_pi:?}");
    }

    #[test]
    fn mean_interarrival_is_reciprocal_rate() {
        // Fundamental identity for any MAP: E[A] = 1/λ.
        let map = Map::mmpp2(0.3, 0.7, 0.4, 1.8).unwrap();
        let lam = map.rate().unwrap();
        let m1 = map.interarrival_moment(1).unwrap();
        assert!((m1 - 1.0 / lam).abs() < 1e-12, "{m1} vs {}", 1.0 / lam);
    }

    #[test]
    fn renewal_map_from_erlang() {
        // Erlang(2, 2) renewal: mean 1, SCV 1/2; the MAP must agree.
        let ph = crate::PhaseType::erlang(2, 2.0).unwrap();
        let map = Map::renewal(&ph).unwrap();
        assert_eq!(map.phases(), 2);
        assert!((map.rate().unwrap() - 1.0).abs() < 1e-12);
        assert!((map.interarrival_moment(1).unwrap() - 1.0).abs() < 1e-12);
        assert!((map.interarrival_scv().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn renewal_map_from_hyperexponential() {
        let ph = crate::PhaseType::hyperexponential(&[0.4, 0.6], &[0.5, 2.0]).unwrap();
        let map = Map::renewal(&ph).unwrap();
        let want_mean = ph.mean().unwrap();
        assert!((map.interarrival_moment(1).unwrap() - want_mean).abs() < 1e-12);
        assert!(map.interarrival_scv().unwrap() > 1.0);
    }

    #[test]
    fn scaling_changes_rate_not_scv() {
        let map = Map::mmpp2(0.3, 0.7, 0.4, 1.8).unwrap();
        let scaled = map.scaled(2.5).unwrap();
        assert!((scaled.rate().unwrap() - 2.5 * map.rate().unwrap()).abs() < 1e-12);
        assert!(
            (scaled.interarrival_scv().unwrap() - map.interarrival_scv().unwrap()).abs() < 1e-12
        );
        assert!(map.scaled(0.0).is_err());
        assert!(map.scaled(f64::INFINITY).is_err());
    }

    #[test]
    fn with_rate_hits_target() {
        let map = Map::mmpp2(1.0, 2.0, 0.5, 3.0).unwrap();
        let adjusted = map.with_rate(1.7).unwrap();
        assert!((adjusted.rate().unwrap() - 1.7).abs() < 1e-12);
        assert!(map.with_rate(-1.0).is_err());
    }

    #[test]
    fn invalid_maps_rejected() {
        // Negative D1.
        let d0 = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let d1 = Matrix::from_rows(&[&[-1.0]]).unwrap();
        assert!(Map::new(d0, d1).is_err());
        // Row sums not zero.
        let d0 = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let d1 = Matrix::from_rows(&[&[2.0]]).unwrap();
        assert!(Map::new(d0, d1).is_err());
        // Shape mismatch.
        let d0 = Matrix::zeros(2, 2);
        let d1 = Matrix::zeros(1, 1);
        assert!(Map::new(d0, d1).is_err());
        assert!(Map::poisson(0.0).is_err());
        assert!(Map::mmpp2(0.0, 1.0, 1.0, 1.0).is_err());
    }
}
