//! Sparse continuous-time Markov chains with an iterative stationary
//! solver.
//!
//! The brute-force "ground truth" SQ(d) chains used to validate the paper's
//! bounds have state spaces in the tens of thousands — far too large for
//! dense `O(n³)` elimination, but trivially sparse (≤ `2N` transitions per
//! state). This module stores such chains in compressed row form and finds
//! their stationary vector by power iteration on the uniformized DTMC.

use crate::{MarkovError, Result};

/// A sparse CTMC under construction / analysis.
///
/// Build incrementally via [`SparseCtmc::new`] +
/// [`SparseCtmc::add_rate`], then call [`SparseCtmc::stationary_power`]
/// or [`SparseCtmc::stationary_jacobi`].
///
/// # Example
///
/// ```
/// use slb_markov::SparseCtmc;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// let mut c = SparseCtmc::new(2);
/// c.add_rate(0, 1, 2.0)?;
/// c.add_rate(1, 0, 1.0)?;
/// let pi = c.stationary_power(1e-12, 100_000)?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCtmc {
    n: usize,
    /// Per-row transition lists `(dest, rate)`; duplicates are summed when
    /// they are inserted.
    rows: Vec<Vec<(usize, f64)>>,
    /// Total outflow per state.
    out: Vec<f64>,
}

impl SparseCtmc {
    /// Creates an empty chain on `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain must have at least one state");
        SparseCtmc {
            n,
            rows: vec![Vec::new(); n],
            out: vec![0.0; n],
        }
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored transitions.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Adds `rate` to the transition `from → to`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the rate is negative/non-finite,
    /// the indices are out of range, or `from == to` (self-loops are
    /// meaningless in a CTMC).
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) -> Result<()> {
        if from >= self.n || to >= self.n {
            return Err(MarkovError::InvalidChain {
                reason: format!("transition ({from} -> {to}) out of range (n = {})", self.n),
            });
        }
        if from == to {
            return Err(MarkovError::InvalidChain {
                reason: format!("self-loop at state {from}"),
            });
        }
        if rate < 0.0 || rate.is_nan() || !rate.is_finite() {
            return Err(MarkovError::InvalidChain {
                reason: format!("invalid rate {rate} on ({from} -> {to})"),
            });
        }
        if rate == 0.0 {
            return Ok(());
        }
        // Merge duplicates so repeated redirects accumulate.
        if let Some(entry) = self.rows[from].iter_mut().find(|(d, _)| *d == to) {
            entry.1 += rate;
        } else {
            self.rows[from].push((to, rate));
        }
        self.out[from] += rate;
        Ok(())
    }

    /// Total outflow rate of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn outflow(&self, i: usize) -> f64 {
        self.out[i]
    }

    /// Iterates over the transitions out of `i` as `(dest, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn transitions(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rows[i].iter().copied()
    }

    /// Stationary distribution via power iteration on the uniformized
    /// chain `P = I + Q/Λ` (with `Λ = 1.02 × max outflow` so the DTMC is
    /// aperiodic), iterating until the 1-norm change falls below `tol`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidChain`] if the chain has no transitions.
    /// * [`MarkovError::NoConvergence`] if `max_iter` sweeps do not reach
    ///   `tol`.
    pub fn stationary_power(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
        let lam = self.out.iter().fold(0.0_f64, |m, &x| m.max(x));
        if lam <= 0.0 {
            return Err(MarkovError::InvalidChain {
                reason: "chain has no transitions".into(),
            });
        }
        let lam = lam * 1.02;
        let mut pi = vec![1.0 / self.n as f64; self.n];
        let mut next = vec![0.0; self.n];
        for _ in 1..=max_iter {
            // next = pi · P with P = I + Q/Λ, computed from the sparse rows.
            for (i, v) in next.iter_mut().enumerate() {
                *v = pi[i] * (1.0 - self.out[i] / lam);
            }
            for (i, row) in self.rows.iter().enumerate() {
                let p = pi[i];
                if p == 0.0 {
                    continue;
                }
                for &(j, r) in row {
                    next[j] += p * r / lam;
                }
            }
            let diff: f64 = pi
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .sum();
            std::mem::swap(&mut pi, &mut next);
            if diff < tol {
                // Clean up round-off and renormalize before returning.
                let total: f64 = pi.iter().sum();
                for v in &mut pi {
                    *v /= total;
                }
                return Ok(pi);
            }
        }
        Err(MarkovError::NoConvergence {
            method: "sparse_power_iteration",
            iterations: max_iter,
            residual: f64::NAN,
        })
    }

    /// Stationary solve with Gauss–Seidel-style Jacobi sweeps accelerated
    /// by the embedded-jump normalization; generally converges in far fewer
    /// sweeps than plain power iteration for stiff chains. Falls back on
    /// the caller to pick between the two.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SparseCtmc::stationary_power`].
    pub fn stationary_jacobi(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
        if self.out.iter().all(|&o| o == 0.0) {
            return Err(MarkovError::InvalidChain {
                reason: "chain has no transitions".into(),
            });
        }
        // Build the incoming-transition view once.
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, r) in row {
                incoming[j].push((i, r));
            }
        }
        let mut pi = vec![1.0 / self.n as f64; self.n];
        for _ in 1..=max_iter {
            let mut max_rel = 0.0_f64;
            for j in 0..self.n {
                if self.out[j] == 0.0 {
                    continue; // absorbing states keep their mass; caller's chains are irreducible
                }
                let inflow: f64 = incoming[j].iter().map(|&(i, r)| pi[i] * r).sum();
                let new = inflow / self.out[j];
                let denom = pi[j].abs().max(1e-300);
                max_rel = max_rel.max((new - pi[j]).abs() / denom);
                pi[j] = new;
            }
            let total: f64 = pi.iter().sum();
            for v in &mut pi {
                *v /= total;
            }
            if max_rel < tol {
                return Ok(pi);
            }
        }
        Err(MarkovError::NoConvergence {
            method: "sparse_jacobi",
            iterations: max_iter,
            residual: f64::NAN,
        })
    }

    /// The residual `‖π·Q‖₁` of a candidate stationary vector — a direct
    /// certificate of solution quality.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != n`.
    pub fn residual(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.n, "residual: dimension mismatch");
        let mut r: Vec<f64> = (0..self.n).map(|i| -pi[i] * self.out[i]).collect();
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, rate) in row {
                r[j] += pi[i] * rate;
            }
        }
        r.iter().map(|x| x.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_power() {
        let mut c = SparseCtmc::new(2);
        c.add_rate(0, 1, 2.0).unwrap();
        c.add_rate(1, 0, 1.0).unwrap();
        let pi = c.stationary_power(1e-13, 100_000).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!(c.residual(&pi) < 1e-8);
    }

    #[test]
    fn jacobi_matches_power() {
        let mut c = SparseCtmc::new(4);
        // Ring with asymmetric rates.
        for i in 0..4 {
            c.add_rate(i, (i + 1) % 4, 1.0 + i as f64).unwrap();
            c.add_rate((i + 1) % 4, i, 0.5).unwrap();
        }
        let p = c.stationary_power(1e-13, 200_000).unwrap();
        let j = c.stationary_jacobi(1e-13, 200_000).unwrap();
        for (a, b) in p.iter().zip(&j) {
            assert!((a - b).abs() < 1e-8, "{p:?} vs {j:?}");
        }
    }

    #[test]
    fn duplicate_rates_merge() {
        let mut c = SparseCtmc::new(2);
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(1, 0, 1.0).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.outflow(0), 2.0);
        let pi = c.stationary_power(1e-13, 100_000).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mm1_truncated_sparse() {
        let n = 60;
        let rho = 0.5;
        let mut c = SparseCtmc::new(n);
        for i in 0..n - 1 {
            c.add_rate(i, i + 1, rho).unwrap();
            c.add_rate(i + 1, i, 1.0).unwrap();
        }
        let pi = c.stationary_jacobi(1e-14, 1_000_000).unwrap();
        for (k, &p) in pi.iter().take(10).enumerate() {
            let exact = (1.0 - rho) * rho.powi(k as i32);
            assert!((p - exact).abs() < 1e-9, "k={k}: {p} vs {exact}");
        }
    }

    #[test]
    fn invalid_insertions_rejected() {
        let mut c = SparseCtmc::new(2);
        assert!(c.add_rate(0, 0, 1.0).is_err());
        assert!(c.add_rate(0, 5, 1.0).is_err());
        assert!(c.add_rate(0, 1, -1.0).is_err());
        assert!(c.add_rate(0, 1, f64::NAN).is_err());
    }

    #[test]
    fn empty_chain_errors() {
        let c = SparseCtmc::new(3);
        assert!(c.stationary_power(1e-10, 10).is_err());
        assert!(c.stationary_jacobi(1e-10, 10).is_err());
    }
}
