//! Sparse continuous-time Markov chains with iterative stationary
//! solvers, built on the shared [`CsrMatrix`] kernel from `slb-linalg`.
//!
//! The brute-force "ground truth" SQ(d) chains used to validate the paper's
//! bounds have state spaces in the tens of thousands — far too large for
//! dense `O(n³)` elimination, but trivially sparse (≤ `2N` transitions per
//! state). This module assembles such chains through
//! [`slb_linalg::CooBuilder`], freezes them into [`CsrMatrix`] form, and
//! finds their stationary vector by power iteration on the uniformized
//! DTMC or by Jacobi sweeps — every inner loop is a CSR matvec from
//! `slb-linalg`, not a private sparse format.
//!
//! The solver entry points [`stationary_power_csr`] and
//! [`stationary_jacobi_csr`] accept a raw generator in CSR form directly,
//! so callers that already assemble a [`CsrMatrix`] (`slb-core::brute`,
//! QBD truncations) need no chain wrapper at all.

use slb_linalg::{CooBuilder, CsrMatrix};

use crate::{MarkovError, Result};

/// A sparse CTMC under construction / analysis.
///
/// Build incrementally via [`SparseCtmc::new`] +
/// [`SparseCtmc::add_rate`], then call [`SparseCtmc::stationary_power`]
/// or [`SparseCtmc::stationary_jacobi`].
///
/// # Example
///
/// ```
/// use slb_markov::SparseCtmc;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// let mut c = SparseCtmc::new(2);
/// c.add_rate(0, 1, 2.0)?;
/// c.add_rate(1, 0, 1.0)?;
/// let pi = c.stationary_power(1e-12, 100_000)?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCtmc {
    n: usize,
    /// Off-diagonal transition rates, accumulated in the shared builder
    /// (duplicates are summed on insertion).
    rates: CooBuilder,
    /// Total outflow per state.
    out: Vec<f64>,
    /// Lazily frozen full generator, so solve-then-certify sequences do
    /// not rebuild the CSR. Invalidated by [`SparseCtmc::add_rate`].
    csr: std::cell::OnceCell<CsrMatrix>,
}

impl SparseCtmc {
    /// Creates an empty chain on `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain must have at least one state");
        SparseCtmc {
            n,
            rates: CooBuilder::new(n, n),
            out: vec![0.0; n],
            csr: std::cell::OnceCell::new(),
        }
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored transitions.
    pub fn nnz(&self) -> usize {
        self.rates.raw_len()
    }

    /// Adds `rate` to the transition `from → to`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the rate is negative/non-finite,
    /// the indices are out of range, or `from == to` (self-loops are
    /// meaningless in a CTMC).
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) -> Result<()> {
        if from >= self.n || to >= self.n {
            return Err(MarkovError::InvalidChain {
                reason: format!("transition ({from} -> {to}) out of range (n = {})", self.n),
            });
        }
        if from == to {
            return Err(MarkovError::InvalidChain {
                reason: format!("self-loop at state {from}"),
            });
        }
        if rate < 0.0 || rate.is_nan() || !rate.is_finite() {
            return Err(MarkovError::InvalidChain {
                reason: format!("invalid rate {rate} on ({from} -> {to})"),
            });
        }
        if rate == 0.0 {
            return Ok(());
        }
        self.rates
            .add(from, to, rate)
            .map_err(|e| MarkovError::InvalidChain {
                reason: e.to_string(),
            })?;
        self.out[from] += rate;
        self.csr.take(); // the frozen generator is stale now
        Ok(())
    }

    /// Total outflow rate of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn outflow(&self, i: usize) -> f64 {
        self.out[i]
    }

    /// Iterates over the transitions out of `i` as `(dest, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn transitions(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rates.row_entries(i)
    }

    /// The full generator `Q` (off-diagonal rates plus the `-outflow`
    /// diagonal) in the shared CSR format. Frozen on first use and cached
    /// until the next [`SparseCtmc::add_rate`].
    pub fn generator_csr(&self) -> &CsrMatrix {
        self.csr.get_or_init(|| {
            let mut b = self.rates.clone();
            for (i, &o) in self.out.iter().enumerate() {
                if o > 0.0 {
                    b.add(i, i, -o).expect("diagonal in range, finite");
                }
            }
            b.build()
        })
    }

    /// Stationary distribution via power iteration on the uniformized
    /// chain `P = I + Q/Λ` (with `Λ = 1.02 × max outflow` so the DTMC is
    /// aperiodic), iterating until the 1-norm change falls below `tol`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidChain`] if the chain has no transitions.
    /// * [`MarkovError::NoConvergence`] if `max_iter` sweeps do not reach
    ///   `tol`.
    pub fn stationary_power(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
        stationary_power_csr(self.generator_csr(), tol, max_iter)
    }

    /// Stationary solve with Gauss–Seidel-style sweeps accelerated by the
    /// embedded-jump normalization; generally converges in far fewer
    /// sweeps than plain power iteration for stiff chains. Falls back on
    /// the caller to pick between the two.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SparseCtmc::stationary_power`].
    pub fn stationary_jacobi(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
        stationary_jacobi_csr(self.generator_csr(), tol, max_iter)
    }

    /// The residual `‖π·Q‖₁` of a candidate stationary vector — a direct
    /// certificate of solution quality.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != n`.
    pub fn residual(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.n, "residual: dimension mismatch");
        generator_residual(self.generator_csr(), pi)
    }
}

/// `‖π·Q‖₁` for a generator in CSR form.
///
/// # Panics
///
/// Panics if `pi.len()` differs from the generator dimension.
pub fn generator_residual(q: &CsrMatrix, pi: &[f64]) -> f64 {
    q.vec_mat(pi).iter().map(|x| x.abs()).sum()
}

/// Extracts `(outflow, Λ)` from a CSR generator, validating that it has
/// work to do. The outflow of state `i` is `-Q[i][i]`.
fn outflows(q: &CsrMatrix) -> Result<(Vec<f64>, f64)> {
    if !q.is_square() {
        return Err(MarkovError::InvalidChain {
            reason: format!("generator must be square, got {:?}", q.shape()),
        });
    }
    let out: Vec<f64> = (0..q.rows()).map(|i| -q.get(i, i)).collect();
    let lam = out.iter().fold(0.0_f64, |m, &x| m.max(x));
    if lam <= 0.0 {
        return Err(MarkovError::InvalidChain {
            reason: "chain has no transitions".into(),
        });
    }
    Ok((out, lam))
}

/// Stationary distribution of a CSR generator via power iteration on the
/// uniformized DTMC `P = I + Q/Λ`, `Λ = 1.02 × max outflow`.
///
/// Every step is one shared-kernel transpose-matvec: the iteration runs
/// on `Pᵀ` in CSR form (`π_{k+1}ᵀ = Pᵀ π_kᵀ`), so the cost per sweep is
/// `O(nnz)` and no dense operator is ever materialized.
///
/// # Errors
///
/// * [`MarkovError::InvalidChain`] if `q` is not square or has no
///   transitions.
/// * [`MarkovError::NoConvergence`] if `max_iter` sweeps do not reach
///   `tol` (1-norm change between sweeps).
pub fn stationary_power_csr(q: &CsrMatrix, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
    let (_, lam) = outflows(q)?;
    let lam = lam * 1.02;
    let n = q.rows();
    // Pᵀ = (I + Q/Λ)ᵀ, built once; the hot loop is a CSR matvec.
    let pt = q
        .scale(1.0 / lam)
        .plus_scaled_identity(1.0)
        .expect("square by construction")
        .transpose();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 1..=max_iter {
        pt.mat_vec_into(&pi, &mut next);
        let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if diff < tol {
            // Clean up round-off and renormalize before returning.
            let total: f64 = pi.iter().sum();
            for v in &mut pi {
                *v /= total;
            }
            return Ok(pi);
        }
    }
    Err(MarkovError::NoConvergence {
        method: "sparse_power_iteration",
        iterations: max_iter,
        residual: f64::NAN,
    })
}

/// Stationary distribution of a CSR generator by Gauss–Seidel-style
/// sweeps on the flow-balance equations `π_j = (Σ_i π_i q_{ij}) / out_j`,
/// walking the incoming-transition view `Qᵀ` in CSR form.
///
/// # Errors
///
/// Same failure modes as [`stationary_power_csr`].
pub fn stationary_jacobi_csr(q: &CsrMatrix, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
    let (out, _) = outflows(q)?;
    let n = q.rows();
    // Row j of Qᵀ lists the incoming transitions of state j.
    let qt = q.transpose();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 1..=max_iter {
        let mut max_rel = 0.0_f64;
        for j in 0..n {
            if out[j] == 0.0 {
                continue; // absorbing states keep their mass; caller's chains are irreducible
            }
            let inflow: f64 = qt
                .row(j)
                .filter(|&(i, _)| i != j)
                .map(|(i, r)| pi[i] * r)
                .sum();
            let new = inflow / out[j];
            let denom = pi[j].abs().max(1e-300);
            max_rel = max_rel.max((new - pi[j]).abs() / denom);
            pi[j] = new;
        }
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        if max_rel < tol {
            return Ok(pi);
        }
    }
    Err(MarkovError::NoConvergence {
        method: "sparse_jacobi",
        iterations: max_iter,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_power() {
        let mut c = SparseCtmc::new(2);
        c.add_rate(0, 1, 2.0).unwrap();
        c.add_rate(1, 0, 1.0).unwrap();
        let pi = c.stationary_power(1e-13, 100_000).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!(c.residual(&pi) < 1e-8);
    }

    #[test]
    fn jacobi_matches_power() {
        let mut c = SparseCtmc::new(4);
        // Ring with asymmetric rates.
        for i in 0..4 {
            c.add_rate(i, (i + 1) % 4, 1.0 + i as f64).unwrap();
            c.add_rate((i + 1) % 4, i, 0.5).unwrap();
        }
        let p = c.stationary_power(1e-13, 200_000).unwrap();
        let j = c.stationary_jacobi(1e-13, 200_000).unwrap();
        for (a, b) in p.iter().zip(&j) {
            assert!((a - b).abs() < 1e-8, "{p:?} vs {j:?}");
        }
    }

    #[test]
    fn duplicate_rates_merge() {
        let mut c = SparseCtmc::new(2);
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(0, 1, 1.0).unwrap();
        c.add_rate(1, 0, 1.0).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.outflow(0), 2.0);
        let pi = c.stationary_power(1e-13, 100_000).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mm1_truncated_sparse() {
        let n = 60;
        let rho = 0.5;
        let mut c = SparseCtmc::new(n);
        for i in 0..n - 1 {
            c.add_rate(i, i + 1, rho).unwrap();
            c.add_rate(i + 1, i, 1.0).unwrap();
        }
        let pi = c.stationary_jacobi(1e-14, 1_000_000).unwrap();
        for (k, &p) in pi.iter().take(10).enumerate() {
            let exact = (1.0 - rho) * rho.powi(k as i32);
            assert!((p - exact).abs() < 1e-9, "k={k}: {p} vs {exact}");
        }
    }

    #[test]
    fn invalid_insertions_rejected() {
        let mut c = SparseCtmc::new(2);
        assert!(c.add_rate(0, 0, 1.0).is_err());
        assert!(c.add_rate(0, 5, 1.0).is_err());
        assert!(c.add_rate(0, 1, -1.0).is_err());
        assert!(c.add_rate(0, 1, f64::NAN).is_err());
    }

    #[test]
    fn empty_chain_errors() {
        let c = SparseCtmc::new(3);
        assert!(c.stationary_power(1e-10, 10).is_err());
        assert!(c.stationary_jacobi(1e-10, 10).is_err());
    }

    #[test]
    fn generator_csr_rows_sum_to_zero() {
        let mut c = SparseCtmc::new(3);
        c.add_rate(0, 1, 1.5).unwrap();
        c.add_rate(1, 2, 0.5).unwrap();
        c.add_rate(2, 0, 2.0).unwrap();
        let q = c.generator_csr();
        for s in q.row_sums() {
            assert!(s.abs() < 1e-15);
        }
        assert_eq!(q.get(0, 0), -1.5);
    }

    #[test]
    fn csr_entry_points_match_chain_methods() {
        let mut c = SparseCtmc::new(5);
        for i in 0..4 {
            c.add_rate(i, i + 1, 0.8).unwrap();
            c.add_rate(i + 1, i, 1.0).unwrap();
        }
        let q = c.generator_csr();
        let a = c.stationary_power(1e-13, 200_000).unwrap();
        let b = stationary_power_csr(q, 1e-13, 200_000).unwrap();
        let d = stationary_jacobi_csr(q, 1e-13, 200_000).unwrap();
        for i in 0..5 {
            assert!((a[i] - b[i]).abs() < 1e-12);
            assert!((a[i] - d[i]).abs() < 1e-8);
        }
        assert!(generator_residual(q, &b) < 1e-10);
    }
}
