//! The Grassmann–Taksar–Heyman (GTH) algorithm for stationary
//! distributions.
//!
//! GTH is a variant of Gaussian elimination specialized to (sub)generator /
//! stochastic matrices: the diagonal is recomputed from the off-diagonal
//! mass at every step, so the algorithm performs **no subtractions** and is
//! backward stable regardless of how stiff the chain is. It is the solver
//! of choice for the small-to-medium dense chains in this project (ground
//! truth for the SQ(d) bound validation, boundary chains, drift vectors).

use slb_linalg::Matrix;

use crate::{MarkovError, Result};

/// Computes the stationary distribution of an irreducible CTMC from its
/// generator matrix `Q` (off-diagonal entries ≥ 0, rows summing to 0) using
/// GTH elimination.
///
/// The same routine handles DTMCs: pass `P − I`, whose off-diagonal
/// structure GTH consumes identically (only off-diagonal entries are read;
/// the diagonal is reconstructed internally).
///
/// # Errors
///
/// * [`MarkovError::InvalidChain`] if `q` is not square or has a negative
///   off-diagonal entry.
/// * [`MarkovError::NotErgodic`] if elimination exposes a state with no
///   outgoing mass toward the remaining states (the chain is reducible).
///
/// # Example
///
/// ```
/// use slb_linalg::Matrix;
/// use slb_markov::gth_stationary;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// // Two-state chain: 0 →(1) 1, 1 →(2) 0. π = (2/3, 1/3).
/// let q = Matrix::from_rows(&[&[-1.0, 1.0], &[2.0, -2.0]]).unwrap();
/// let pi = gth_stationary(&q)?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn gth_stationary(q: &Matrix) -> Result<Vec<f64>> {
    if !q.is_square() {
        return Err(MarkovError::InvalidChain {
            reason: format!("generator must be square, got {:?}", q.shape()),
        });
    }
    let n = q.rows();
    for r in 0..n {
        for c in 0..n {
            if r != c && q[(r, c)] < 0.0 {
                return Err(MarkovError::InvalidChain {
                    reason: format!("negative off-diagonal rate {} at ({r}, {c})", q[(r, c)]),
                });
            }
        }
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Work on a copy; only off-diagonal entries matter.
    let mut a = q.clone();

    // Elimination pass (standard GTH): fold state k into states 0..k-1.
    // The column entering k is rescaled by k's total outflow toward the
    // surviving states; the rank-one update uses only additions of
    // nonnegative quantities — no cancellation anywhere.
    for k in (1..n).rev() {
        let s: f64 = (0..k).map(|c| a[(k, c)]).sum();
        if s <= 0.0 {
            return Err(MarkovError::NotErgodic {
                reason: format!(
                    "state {k} has no transition into states 0..{k}; chain is reducible"
                ),
            });
        }
        for r in 0..k {
            a[(r, k)] /= s;
        }
        for r in 0..k {
            let w = a[(r, k)];
            if w == 0.0 {
                continue;
            }
            for c in 0..k {
                if c != r {
                    a[(r, c)] += w * a[(k, c)];
                }
            }
        }
    }

    // Back substitution: unnormalized π built from the scaled columns.
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut s = 0.0;
        for r in 0..k {
            s += pi[r] * a[(r, k)];
        }
        pi[k] = s;
    }

    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// [`gth_stationary`] for a generator assembled in CSR form.
///
/// GTH elimination inherently fills in, so the matrix is densified first;
/// use this for *small* chains (QBD boundary systems, phase processes)
/// that happen to be assembled through the shared sparse builder. Large
/// truncated chains should use the iterative
/// [`crate::stationary_power_csr`] / [`crate::stationary_jacobi_csr`]
/// instead, which stay `O(nnz)` per sweep.
///
/// # Errors
///
/// As [`gth_stationary`].
///
/// # Example
///
/// ```
/// use slb_linalg::CsrMatrix;
/// use slb_markov::gth_stationary_csr;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// let q = CsrMatrix::from_triplets(
///     2,
///     2,
///     [(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0)],
/// )
/// .map_err(|e| slb_markov::MarkovError::InvalidChain { reason: e.to_string() })?;
/// let pi = gth_stationary_csr(&q)?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn gth_stationary_csr(q: &slb_linalg::CsrMatrix) -> Result<Vec<f64>> {
    gth_stationary(&q.to_dense())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_state_exact() {
        let q = Matrix::from_rows(&[&[-3.0, 3.0], &[1.0, -1.0]]).unwrap();
        let pi = gth_stationary(&q).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-15);
        assert!((pi[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn detailed_balance_birth_death() {
        // Birth-death chain: π should satisfy π_i λ = π_{i+1} µ.
        let n = 6;
        let (lam, mu) = (0.7, 1.3);
        let mut q = Matrix::zeros(n, n);
        for i in 0..n - 1 {
            q[(i, i + 1)] = lam;
            q[(i + 1, i)] = mu;
        }
        for i in 0..n {
            let s: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -s;
        }
        let pi = gth_stationary(&q).unwrap();
        for i in 0..n - 1 {
            assert!(
                (pi[i] * lam - pi[i + 1] * mu).abs() < 1e-14,
                "balance violated at {i}"
            );
        }
    }

    #[test]
    fn residual_pi_q_zero() {
        // Random-ish irreducible 5-state generator.
        let mut q = Matrix::from_fn(5, 5, |r, c| ((r * 7 + c * 3) % 5) as f64 * 0.2 + 0.1);
        for i in 0..5 {
            q[(i, i)] = 0.0;
            let s: f64 = (0..5).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -s;
        }
        let pi = gth_stationary(&q).unwrap();
        let r = q.vec_mat(&pi);
        for v in r {
            assert!(v.abs() < 1e-13, "residual {v}");
        }
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn reducible_chain_rejected() {
        // State 1 never reaches state 0.
        let q = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(
            gth_stationary(&q),
            Err(MarkovError::NotErgodic { .. })
        ));
    }

    #[test]
    fn negative_rate_rejected() {
        let q = Matrix::from_rows(&[&[-1.0, -1.0], &[1.0, -1.0]]).unwrap();
        assert!(matches!(
            gth_stationary(&q),
            Err(MarkovError::InvalidChain { .. })
        ));
    }

    #[test]
    fn single_state() {
        let q = Matrix::zeros(1, 1);
        assert_eq!(gth_stationary(&q).unwrap(), vec![1.0]);
    }

    #[test]
    fn stiff_chain_stability() {
        // Rates spanning 12 orders of magnitude: GTH should still produce
        // an exact-balance answer where naive elimination loses digits.
        let eps = 1e-12;
        let q = Matrix::from_rows(&[
            &[-eps, eps, 0.0],
            &[1.0, -1.0 - eps, eps],
            &[0.0, 1.0, -1.0],
        ])
        .unwrap();
        let pi = gth_stationary(&q).unwrap();
        let r = q.vec_mat(&pi);
        for v in r {
            assert!(v.abs() < 1e-15, "residual {v}");
        }
    }
}
