use std::error::Error;
use std::fmt;

use slb_linalg::LinalgError;

/// Error type for Markov-chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// The supplied matrix is not a valid generator / stochastic matrix.
    InvalidChain {
        /// Which validity condition failed.
        reason: String,
    },
    /// The chain (or the requested quantity) is not well defined, e.g. a
    /// stationary distribution of a chain with absorbing junk states.
    NotErgodic {
        /// Diagnostic detail.
        reason: String,
    },
    /// An iterative solver ran out of its iteration budget.
    NoConvergence {
        /// Name of the solver.
        method: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// An underlying dense linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidChain { reason } => write!(f, "invalid chain: {reason}"),
            MarkovError::NotErgodic { reason } => write!(f, "chain is not ergodic: {reason}"),
            MarkovError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            MarkovError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MarkovError::from(LinalgError::NotSquare { shape: (2, 3) });
        assert!(e.to_string().contains("linear algebra"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MarkovError>();
    }
}
