//! Dense discrete-time Markov chains.

use slb_linalg::Matrix;

use crate::{gth_stationary, MarkovError, Result};

/// How far a stochastic row sum may deviate from one at construction.
const ROW_SUM_TOL: f64 = 1e-9;

/// A finite discrete-time Markov chain, stored as its dense transition
/// matrix.
///
/// Invariants (validated at construction): square, entries in `[0, 1]`
/// within round-off, rows summing to one.
///
/// # Example
///
/// ```
/// use slb_linalg::Matrix;
/// use slb_markov::Dtmc;
///
/// # fn main() -> Result<(), slb_markov::MarkovError> {
/// let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
/// let chain = Dtmc::from_matrix(p)?;
/// let pi = chain.stationary()?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: Matrix,
}

impl Dtmc {
    /// Builds a chain from a stochastic matrix.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if the matrix is not square, has an
    /// entry outside `[0, 1]` (beyond round-off), or a row not summing to
    /// one.
    pub fn from_matrix(p: Matrix) -> Result<Self> {
        if !p.is_square() {
            return Err(MarkovError::InvalidChain {
                reason: format!("transition matrix must be square, got {:?}", p.shape()),
            });
        }
        for r in 0..p.rows() {
            let mut sum = 0.0;
            for c in 0..p.cols() {
                let v = p[(r, c)];
                if !(-ROW_SUM_TOL..=1.0 + ROW_SUM_TOL).contains(&v) {
                    return Err(MarkovError::InvalidChain {
                        reason: format!("probability {v} at ({r}, {c}) outside [0, 1]"),
                    });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(MarkovError::InvalidChain {
                    reason: format!("row {r} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn n(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// One-step transition probability from `i` to `j`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[(i, j)]
    }

    /// The stationary distribution, via GTH on `P − I`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::NotErgodic`] if the chain is reducible.
    pub fn stationary(&self) -> Result<Vec<f64>> {
        let n = self.n();
        let q = Matrix::from_fn(n, n, |r, c| self.p[(r, c)] - if r == c { 1.0 } else { 0.0 });
        gth_stationary(&q)
    }

    /// Distribution after `k` steps from `initial`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidChain`] if `initial` is not a distribution of
    /// the right length.
    pub fn step_n(&self, initial: &[f64], k: usize) -> Result<Vec<f64>> {
        if initial.len() != self.n() {
            return Err(MarkovError::InvalidChain {
                reason: format!(
                    "initial distribution has length {}, chain has {} states",
                    initial.len(),
                    self.n()
                ),
            });
        }
        let sum: f64 = initial.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || initial.iter().any(|&v| v < 0.0) {
            return Err(MarkovError::InvalidChain {
                reason: "initial vector is not a probability distribution".into(),
            });
        }
        let mut v = initial.to_vec();
        let mut next = vec![0.0; v.len()];
        for _ in 0..k {
            // In-place step on two ping-pong buffers — no allocation in
            // the power loop.
            self.p.vec_mat_into(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
        }
        Ok(v)
    }

    /// Expected hitting times of `target` from every state (the target
    /// itself gets 0), by solving the first-step equations
    /// `h_i = 1 + Σ_j p_ij h_j` over non-target states.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidChain`] if `target ≥ n`.
    /// * [`MarkovError::NotErgodic`] if some state cannot reach the target
    ///   (singular first-step system).
    pub fn hitting_times(&self, target: usize) -> Result<Vec<f64>> {
        let n = self.n();
        if target >= n {
            return Err(MarkovError::InvalidChain {
                reason: format!("target {target} out of range (n = {n})"),
            });
        }
        if n == 1 {
            return Ok(vec![0.0]);
        }
        // Index map skipping the target.
        let others: Vec<usize> = (0..n).filter(|&i| i != target).collect();
        let m = others.len();
        let a = Matrix::from_fn(m, m, |r, c| {
            let (i, j) = (others[r], others[c]);
            (if i == j { 1.0 } else { 0.0 }) - self.p[(i, j)]
        });
        let b = vec![1.0; m];
        let h = a.solve_vec(&b).map_err(|_| MarkovError::NotErgodic {
            reason: format!("some state cannot reach target {target}"),
        })?;
        let mut out = vec![0.0; n];
        for (r, &i) in others.iter().enumerate() {
            out[i] = h[r];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain2() -> Dtmc {
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.25, 0.75]]).unwrap();
        Dtmc::from_matrix(p).unwrap()
    }

    #[test]
    fn stationary_matches_hand_computation() {
        let pi = chain2().stationary().unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-13);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-13);
    }

    #[test]
    fn step_n_converges() {
        let c = chain2();
        let v = c.step_n(&[1.0, 0.0], 200).unwrap();
        let pi = c.stationary().unwrap();
        for (a, b) in v.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_matrix_rejected() {
        let p = Matrix::from_rows(&[&[0.5, 0.6], &[0.25, 0.75]]).unwrap();
        assert!(Dtmc::from_matrix(p).is_err());
        let p = Matrix::from_rows(&[&[1.5, -0.5], &[0.25, 0.75]]).unwrap();
        assert!(Dtmc::from_matrix(p).is_err());
    }

    #[test]
    fn hitting_times_gambler() {
        // Symmetric random walk on {0,1,2} with reflecting 2, absorbing
        // checks via first-step analysis: from 1, E[hit 0] with p=1/2 each
        // way and state 2 reflecting back to 1.
        let p = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.5, 0.0, 0.5], &[0.0, 1.0, 0.0]]).unwrap();
        let c = Dtmc::from_matrix(p).unwrap();
        let h = c.hitting_times(0).unwrap();
        // h1 = 1 + 0.5 h2, h2 = 1 + h1  =>  h1 = 3, h2 = 4.
        assert!((h[1] - 3.0).abs() < 1e-12);
        assert!((h[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hitting_time_unreachable_errors() {
        let p = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let c = Dtmc::from_matrix(p).unwrap();
        assert!(c.hitting_times(0).is_err());
    }

    #[test]
    fn period_two_chain_stationary_still_defined() {
        // GTH solves the balance equations regardless of periodicity.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = Dtmc::from_matrix(p).unwrap();
        let pi = c.stationary().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-14);
    }
}
