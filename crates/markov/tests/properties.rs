//! Property-based tests for the Markov-chain toolkit.

use proptest::prelude::*;
use slb_linalg::Matrix;
use slb_markov::{birth_death, gth_stationary, Ctmc, SparseCtmc};

/// Random irreducible generator: every off-diagonal rate positive.
fn irreducible_generator(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.05f64..3.0, n * n).prop_map(move |vals| {
        let mut q = Matrix::from_vec(n, n, vals).unwrap();
        for i in 0..n {
            q[(i, i)] = 0.0;
            let s: f64 = (0..n).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -s;
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gth_produces_stationary_distribution(
        q in (2usize..10).prop_flat_map(irreducible_generator)
    ) {
        let pi = gth_stationary(&q).unwrap();
        // Distribution.
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert!(pi.iter().all(|&p| p > 0.0));
        // Balance: ‖π·Q‖∞ ≈ 0 relative to rate scale.
        let r = q.vec_mat(&pi);
        let scale = q.max_abs();
        for v in r {
            prop_assert!(v.abs() < 1e-12 * scale.max(1.0), "residual {v}");
        }
    }

    #[test]
    fn ctmc_stationary_invariant_under_time_rescaling(
        q in (2usize..8).prop_flat_map(irreducible_generator),
        s in 0.1f64..10.0,
    ) {
        let c1 = Ctmc::from_generator(q.clone()).unwrap();
        let c2 = Ctmc::from_generator(q.scale(s)).unwrap();
        let p1 = c1.stationary().unwrap();
        let p2 = c2.stationary().unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn uniformization_preserves_stationary(
        q in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let c = Ctmc::from_generator(q).unwrap();
        let d = c.uniformized_dtmc().unwrap();
        let pc = c.stationary().unwrap();
        let pd = d.stationary().unwrap();
        for (a, b) in pc.iter().zip(&pd) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transient_rows_remain_distributions(
        q in (2usize..6).prop_flat_map(irreducible_generator),
        t in 0.0f64..5.0,
    ) {
        let c = Ctmc::from_generator(q).unwrap();
        let n = c.n();
        for start in 0..n {
            let mut init = vec![0.0; n];
            init[start] = 1.0;
            let p = c.transient(&init, t).unwrap();
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn sparse_and_dense_agree(
        q in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let n = q.rows();
        let mut sc = SparseCtmc::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sc.add_rate(i, j, q[(i, j)]).unwrap();
                }
            }
        }
        let dense = gth_stationary(&q).unwrap();
        let sparse = sc.stationary_jacobi(1e-13, 1_000_000).unwrap();
        for (a, b) in dense.iter().zip(&sparse) {
            prop_assert!((a - b).abs() < 1e-7, "{dense:?} vs {sparse:?}");
        }
        prop_assert!(sc.residual(&sparse) < 1e-7);
    }

    #[test]
    fn birth_death_matches_gth(
        rates in prop::collection::vec((0.1f64..2.0, 0.1f64..2.0), 1..12)
    ) {
        let lambda: Vec<f64> = rates.iter().map(|r| r.0).collect();
        let mu: Vec<f64> = rates.iter().map(|r| r.1).collect();
        let pi_bd = birth_death::stationary(&lambda, &mu).unwrap();

        let n = lambda.len() + 1;
        let mut q = Matrix::zeros(n, n);
        for i in 0..n - 1 {
            q[(i, i + 1)] = lambda[i];
            q[(i + 1, i)] = mu[i];
        }
        for i in 0..n {
            let s: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -s;
        }
        let pi_gth = gth_stationary(&q).unwrap();
        for (a, b) in pi_bd.iter().zip(&pi_gth) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dtmc_stationary_fixed_point(
        q in (2usize..8).prop_flat_map(irreducible_generator)
    ) {
        let d = Ctmc::from_generator(q).unwrap().uniformized_dtmc().unwrap();
        let pi = d.stationary().unwrap();
        let next = d.matrix().vec_mat(&pi);
        for (a, b) in pi.iter().zip(&next) {
            prop_assert!((a - b).abs() < 1e-11);
        }
        // step_n from the stationary vector stays put.
        let far = d.step_n(&pi, 17).unwrap();
        for (a, b) in pi.iter().zip(&far) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn erlang_c_monotone_in_load(c in 1usize..20, split in 0.05f64..0.95) {
        let a1 = split * c as f64 * 0.5;
        let a2 = split * c as f64;
        let p1 = birth_death::erlang_c(c, a1);
        let p2 = birth_death::erlang_c(c, a2);
        prop_assert!(p1 <= p2 + 1e-12, "Erlang C must increase with load");
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!((0.0..=1.0).contains(&p2));
    }
}

#[test]
fn dtmc_from_ctmc_example_sizes() {
    // Deterministic smoke check used as an anchor for the proptests above.
    let c = Ctmc::from_rates(&[
        vec![0.0, 1.0, 0.0],
        vec![0.5, 0.0, 0.5],
        vec![0.0, 2.0, 0.0],
    ])
    .unwrap();
    let pi = c.stationary().unwrap();
    assert_eq!(pi.len(), 3);
    let d = c.uniformized_dtmc().unwrap();
    assert_eq!(d.n(), 3);
}

mod phase_type_and_map {
    use proptest::prelude::*;
    use slb_markov::{Map, PhaseType};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn erlang_moments_closed_form(k in 1usize..8, rate in 0.2f64..5.0) {
            let ph = PhaseType::erlang(k, rate).unwrap();
            let mean = k as f64 / rate;
            prop_assert!((ph.mean().unwrap() - mean).abs() < 1e-10 * mean.max(1.0));
            prop_assert!((ph.scv().unwrap() - 1.0 / k as f64).abs() < 1e-9);
            // E[X²] = k(k+1)/rate².
            let m2 = k as f64 * (k as f64 + 1.0) / (rate * rate);
            prop_assert!((ph.moment(2).unwrap() - m2).abs() < 1e-8 * m2.max(1.0));
        }

        #[test]
        fn ph_lst_is_completely_monotone_at_grid(
            k in 1usize..5,
            rate in 0.5f64..3.0,
        ) {
            // A*(0) = 1; decreasing in s; bounded in (0, 1].
            let ph = PhaseType::erlang(k, rate).unwrap();
            prop_assert!((ph.lst(0.0).unwrap() - 1.0).abs() < 1e-12);
            let mut prev = 1.0;
            for i in 1..20 {
                let s = i as f64 * 0.3;
                let v = ph.lst(s).unwrap();
                prop_assert!(v > 0.0 && v < prev + 1e-12);
                prev = v;
            }
        }

        #[test]
        fn ph_cdf_mean_consistency(k in 1usize..4, rate in 0.5f64..3.0) {
            // E[X] = ∫ (1 − F(t)) dt, checked by trapezoid quadrature.
            let ph = PhaseType::erlang(k, rate).unwrap();
            let mean = ph.mean().unwrap();
            let horizon = mean * 20.0;
            let steps = 4000;
            let h = horizon / steps as f64;
            let mut integral = 0.0;
            let mut prev_s = 1.0 - ph.cdf(0.0).unwrap();
            for i in 1..=steps {
                let s = 1.0 - ph.cdf(i as f64 * h).unwrap();
                integral += 0.5 * (prev_s + s) * h;
                prev_s = s;
            }
            prop_assert!((integral - mean).abs() < 0.01 * mean, "{integral} vs {mean}");
        }

        #[test]
        fn mmpp_identities(
            r01 in 0.05f64..3.0,
            r10 in 0.05f64..3.0,
            lam0 in 0.0f64..1.0,
            extra in 0.05f64..3.0,
        ) {
            let lam1 = lam0 + extra;
            let map = Map::mmpp2(r01, r10, lam0, lam1).unwrap();
            // Fundamental rate is the phase-weighted mean of the rates.
            let pi = map.phase_stationary().unwrap();
            let expect = pi[0] * lam0 + pi[1] * lam1;
            prop_assert!((map.rate().unwrap() - expect).abs() < 1e-10);
            // E[A] = 1/λ for every MAP.
            let m1 = map.interarrival_moment(1).unwrap();
            prop_assert!((m1 - 1.0 / expect).abs() < 1e-9 / expect);
            // MMPPs are at least as variable as Poisson.
            prop_assert!(map.interarrival_scv().unwrap() > 1.0 - 1e-9);
        }

        #[test]
        fn ph_interarrival_as_degenerate_map(rate in 0.2f64..4.0) {
            // MAP with D1 = rate·(e·α) and PH-exponential interarrivals:
            // for one phase this is Poisson, and moments must agree with
            // the PH representation of the exponential.
            let map = Map::poisson(rate).unwrap();
            let ph = PhaseType::exponential(rate).unwrap();
            for k in 1..4u32 {
                let a = map.interarrival_moment(k).unwrap();
                let b = ph.moment(k).unwrap();
                prop_assert!((a - b).abs() < 1e-10 * b.max(1.0));
            }
        }
    }
}
