//! Criterion bench: the dense numerical kernels on which every solver
//! iteration spends its time — G-matrix algorithms, the stationary
//! boundary solve, raw dense matmul, and simulator throughput.
//!
//! Phase sizes m ∈ {4, 16, 64} bracket the block sizes the SQ(d) bound
//! models generate. With `CRITERION_JSON=BENCH_pr3.json` the shim appends
//! machine-readable medians, which is how the committed perf trajectory
//! (`BENCH_pr3.json`) is produced; see README §Performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slb_core::{BoundKind, LumpedModel, Sqd};
use slb_linalg::Matrix;
use slb_qbd::{cyclic_reduction, logarithmic_reduction, QbdBlocks, SolveOptions};
use slb_sim::{Policy, SimConfig};

/// A stable m-phase MMPP-modulated quasi-birth-death: ring phase
/// switching at rate `r`, per-phase arrival rates cycling through
/// `[0.35, 0.95)`, unit service. Exercises dense blocks of exactly the
/// requested size without depending on the SQ(d) state-space layout.
fn mmpp_blocks(m: usize) -> QbdBlocks {
    let r = 0.3;
    let mu = 1.0;
    let lam = |i: usize| 0.35 + 0.6 * (i as f64) / (m as f64);
    let a0 = Matrix::from_fn(m, m, |i, j| if i == j { lam(i) } else { 0.0 });
    let a2 = Matrix::from_fn(m, m, |i, j| if i == j { mu } else { 0.0 });
    let switch = |i: usize, j: usize| -> f64 {
        if m > 1 && (j == (i + 1) % m || i == (j + 1) % m) {
            r
        } else {
            0.0
        }
    };
    let out = |i: usize| -> f64 { (0..m).map(|j| switch(i, j)).sum::<f64>() };
    let a1 = Matrix::from_fn(m, m, |i, j| {
        if i == j {
            -(lam(i) + mu + out(i))
        } else {
            switch(i, j)
        }
    });
    let r00 = Matrix::from_fn(m, m, |i, j| {
        if i == j {
            -(lam(i) + out(i))
        } else {
            switch(i, j)
        }
    });
    QbdBlocks::new(r00, a0.clone(), a2.clone(), a0, a1, a2).unwrap()
}

const SIZES: [usize; 3] = [4, 16, 64];

fn bench_g_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for &m in &SIZES {
        let blocks = mmpp_blocks(m);
        group.bench_with_input(
            BenchmarkId::new("logred", format!("m{m}")),
            &blocks,
            |b, blocks| b.iter(|| logarithmic_reduction(blocks, 1e-13, 64).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cr", format!("m{m}")),
            &blocks,
            |b, blocks| b.iter(|| cyclic_reduction(blocks, 1e-12, 64).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("stationary_solve", format!("m{m}")),
            &blocks,
            |b, blocks| b.iter(|| blocks.solve(&SolveOptions::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for &m in &SIZES {
        let a = Matrix::from_fn(m, m, |i, j| ((i * 31 + j * 7) % 17) as f64 / 17.0 - 0.4);
        let b_in = Matrix::from_fn(m, m, |i, j| ((i * 13 + j * 5) % 23) as f64 / 23.0 - 0.6);
        group.bench_with_input(
            BenchmarkId::new("matmul", format!("m{m}")),
            &(a, b_in),
            |bch, (a, b_in)| bch.iter(|| a * b_in),
        );
    }
    group.finish();
}

/// The occupancy-lumped large-N path (`experiments/scaling.toml`'s
/// engine): sparse block assembly and the Theorem-3 lower-bound solve
/// at the grid's smallest panel (N = 16, T = 4, block m = 3876), plus
/// assembly alone at N = 64, T = 3 (m = 45 760) where the CSR builder
/// dominates. Solve time is Gauss–Seidel-bound, so these medians track
/// exactly what the scaling sweep pays per row.
fn bench_lumped(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for (n, t) in [(16usize, 4u32), (64, 3)] {
        let sqd = Sqd::new(n, 2, 0.5).unwrap();
        let model = LumpedModel::new(sqd, BoundKind::Lower, t).unwrap();
        group.bench_function(
            BenchmarkId::new("lumped_assembly", format!("N{n}_T{t}")),
            |b| b.iter(|| model.qbd_blocks().unwrap()),
        );
    }
    let sqd = Sqd::new(16, 2, 0.5).unwrap();
    group.bench_function(BenchmarkId::new("lumped_lower", "N16_T4"), |b| {
        b.iter(|| sqd.lower_bound_lumped(4).unwrap())
    });
    group.bench_function(BenchmarkId::new("lumped_decay", "N16_T4"), |b| {
        b.iter(|| sqd.decay_rate_lumped(BoundKind::Upper, 4).unwrap())
    });
    group.finish();
}

/// Server counts for the simulator scaling benches: N = 16 is the
/// paper-sized regime, 256 and 4096 stress the dispatch path (an O(N)
/// scan per arrival dominates long before 4096 servers).
const SIM_SIZES: [usize; 3] = [16, 256, 4096];

fn bench_sim_throughput(c: &mut Criterion) {
    const JOBS: u64 = 100_000;
    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements(JOBS));
    group.sample_size(10);
    let serial = |n: usize, policy: Policy| {
        SimConfig::new(n, 0.9)
            .unwrap()
            .policy(policy)
            .jobs(JOBS)
            .warmup(JOBS / 10)
            .seed(1)
            .run()
            .unwrap()
    };
    for &n in &SIM_SIZES {
        group.bench_function(
            BenchmarkId::new("sim_serial", format!("N{n}_rho0.9_100k")),
            |b| b.iter(|| serial(n, Policy::SqD { d: 2 })),
        );
        group.bench_function(
            BenchmarkId::new("sim_jsq", format!("N{n}_rho0.9_100k")),
            |b| b.iter(|| serial(n, Policy::Jsq)),
        );
    }
    // Parallel replications: the *same total work* (4 replications of
    // 100k jobs each — full replication-sized slices, so per-run setup
    // is noise) on 1 worker thread vs 4. The t1 variant is the serial
    // reference, so the parallel speedup is the t1/t4 median ratio — a
    // directly gateable number. PR 7's pre-resize pairs ran 4×25k
    // slices, small enough that thread hand-off and merge overhead
    // drowned the signal.
    let par = |n: usize, policy: Policy, threads: usize| {
        SimConfig::new(n, 0.9)
            .unwrap()
            .policy(policy)
            .jobs(JOBS)
            .warmup(JOBS / 10)
            .seed(1)
            .run_parallel(4, threads)
            .unwrap()
    };
    for &n in &SIM_SIZES {
        for (policy_name, policy) in [("sq2", Policy::SqD { d: 2 }), ("jsq", Policy::Jsq)] {
            for threads in [1usize, 4] {
                group.bench_function(
                    BenchmarkId::new(
                        format!("sim_par_{policy_name}_t{threads}"),
                        format!("N{n}_rho0.9_4x100k"),
                    ),
                    |b| b.iter(|| par(n, policy, threads)),
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_g_kernels, bench_matmul, bench_lumped, bench_sim_throughput
}
criterion_main!(benches);
