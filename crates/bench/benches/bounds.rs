//! Criterion bench: end-to-end bound computations.
//!
//! The headline ablation is Theorem 3: the scalar-tail (`ρᴺ`) lower-bound
//! solve against the full matrix-geometric solve — the paper's
//! "dramatically" cheaper improved method (§IV-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slb_core::{BoundKind, BoundModel, Sqd};

fn bench_lower_bound_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");
    for &(n, t) in &[(3usize, 2u32), (3, 3), (6, 3)] {
        let sqd = Sqd::new(n, 2, 0.9).unwrap();
        let label = format!("N{n}_T{t}");
        group.bench_with_input(
            BenchmarkId::new("scalar_tail_theorem3", &label),
            &sqd,
            |b, sqd| b.iter(|| sqd.lower_bound(t).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("full_matrix_geometric", &label),
            &sqd,
            |b, sqd| b.iter(|| sqd.lower_bound_full_r(t).unwrap()),
        );
    }
    group.finish();
}

fn bench_upper_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("upper_bound");
    for &(n, t, rho) in &[(3usize, 2u32, 0.7f64), (3, 3, 0.7), (6, 3, 0.7)] {
        let sqd = Sqd::new(n, 2, rho).unwrap();
        let label = format!("N{n}_T{t}");
        group.bench_with_input(BenchmarkId::new("solve", &label), &sqd, |b, sqd| {
            b.iter(|| sqd.upper_bound(t).unwrap())
        });
    }
    group.finish();
}

fn bench_block_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("qbd_assembly");
    for &(n, t) in &[(3usize, 3u32), (6, 3), (12, 3)] {
        let sqd = Sqd::new(n, 2, 0.8).unwrap();
        let model = BoundModel::new(sqd, BoundKind::Lower, t).unwrap();
        let label = format!("N{n}_T{t}");
        group.bench_with_input(BenchmarkId::new("blocks", &label), &model, |b, model| {
            b.iter(|| model.qbd_blocks().unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lower_bound_paths, bench_upper_bound, bench_block_assembly
}
criterion_main!(benches);
