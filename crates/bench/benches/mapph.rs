//! Criterion bench: cost of the MAP extension — product-space block
//! assembly and the full bound solve, against the scalar (Poisson)
//! model at identical `(N, d, ρ, T)`. Quantifies the "×p phases"
//! factor the paper's conclusion glosses over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slb_core::{BoundKind, BoundModel, ModelVariant, Sqd};
use slb_mapph::MapSqd;
use slb_markov::Map;

fn bench_map_bounds(c: &mut Criterion) {
    let (n, d, rho, t) = (3usize, 2usize, 0.8f64, 3u32);
    let mut group = c.benchmark_group("map_extension");

    let scalar = Sqd::new(n, d, rho).unwrap();
    group.bench_function(
        BenchmarkId::new("poisson_lower_scalar_tail", "N3_T3"),
        |b| b.iter(|| scalar.lower_bound(t).unwrap()),
    );
    group.bench_function(BenchmarkId::new("poisson_upper_full", "N3_T3"), |b| {
        b.iter(|| scalar.upper_bound(t).unwrap())
    });

    for phases in [1usize, 2] {
        let map = if phases == 1 {
            Map::poisson(rho * n as f64).unwrap()
        } else {
            Map::mmpp2(0.5, 0.5, 0.5, 1.5)
                .unwrap()
                .with_rate(rho * n as f64)
                .unwrap()
        };
        let model = MapSqd::new(n, d, &map).unwrap();
        let label = format!("N3_T3_p{phases}");
        group.bench_with_input(BenchmarkId::new("map_assemble", &label), &model, |b, m| {
            b.iter(|| {
                m.qbd_blocks(ModelVariant::Lower { threshold: t }, t)
                    .unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("map_lower_full", &label),
            &model,
            |b, m| b.iter(|| m.lower_bound(t).unwrap()),
        );
    }

    // The scalar-model block assembly for reference.
    group.bench_function(BenchmarkId::new("scalar_assemble", "N3_T3"), |b| {
        b.iter(|| {
            BoundModel::new(scalar, BoundKind::Lower, t)
                .unwrap()
                .qbd_blocks()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_map_bounds
}
criterion_main!(benches);
