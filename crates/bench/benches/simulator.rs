//! Criterion bench: simulator throughput per policy — quantifies the cost
//! of regenerating the paper's 10⁸-job simulation points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slb_sim::{Policy, SimConfig};

fn bench_policies(c: &mut Criterion) {
    const JOBS: u64 = 100_000;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(JOBS));
    for (name, policy) in [
        ("random", Policy::Random),
        ("sq2", Policy::SqD { d: 2 }),
        ("jsq", Policy::Jsq),
        ("round_robin", Policy::RoundRobin),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, "N16_rho0.9"),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    SimConfig::new(16, 0.9)
                        .unwrap()
                        .policy(policy)
                        .jobs(JOBS)
                        .warmup(JOBS / 10)
                        .seed(1)
                        .run()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_large_n(c: &mut Criterion) {
    const JOBS: u64 = 100_000;
    let mut group = c.benchmark_group("simulator_scale");
    group.throughput(Throughput::Elements(JOBS));
    for &n in &[10usize, 50, 250] {
        group.bench_with_input(BenchmarkId::new("sq2", n), &n, |b, &n| {
            b.iter(|| {
                SimConfig::new(n, 0.95)
                    .unwrap()
                    .policy(Policy::SqD { d: 2 })
                    .jobs(JOBS)
                    .warmup(JOBS / 10)
                    .seed(1)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies, bench_large_n
}
criterion_main!(benches);
