//! Criterion bench: the G-matrix computation — logarithmic reduction
//! (the paper's choice, §IV-A) against cyclic reduction, the U-based
//! fixed point and natural functional iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slb_core::{BoundKind, BoundModel, Sqd};
use slb_qbd::{cyclic_reduction, functional_iteration, logarithmic_reduction, u_based_iteration};

fn bench_g_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("g_matrix");
    for &(n, t, rho) in &[(3usize, 2u32, 0.9f64), (3, 3, 0.9), (6, 3, 0.9)] {
        let sqd = Sqd::new(n, 2, rho).unwrap();
        let blocks = BoundModel::new(sqd, BoundKind::Lower, t)
            .unwrap()
            .qbd_blocks()
            .unwrap();
        let label = format!("N{n}_T{t}_rho{rho}");
        group.bench_with_input(
            BenchmarkId::new("logarithmic_reduction", &label),
            &blocks,
            |b, blocks| b.iter(|| logarithmic_reduction(blocks, 1e-13, 64).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cyclic_reduction", &label),
            &blocks,
            |b, blocks| b.iter(|| cyclic_reduction(blocks, 1e-12, 64).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("u_based_iteration", &label),
            &blocks,
            |b, blocks| b.iter(|| u_based_iteration(blocks, 1e-10, 1_000_000).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("functional_iteration", &label),
            &blocks,
            |b, blocks| b.iter(|| functional_iteration(blocks, 1e-10, 1_000_000).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_g_computation
}
criterion_main!(benches);
