//! Criterion bench: the serving stack end to end — cold query latency
//! (solver + simulator on a never-seen key), cached query latency (the
//! persistent-store hit path including the full HTTP round trip), and
//! concurrent-client throughput against one daemon.
//!
//! The committed trajectory (`BENCH_pr6.json`) records these next to
//! the kernel benches; the headline acceptance number is
//! `serve/cold_query / serve/cached_query ≥ 100×` — a repeat query is
//! answered from the concurrent cache in microseconds-to-a-fraction-of-
//! a-millisecond while a cold solve simulates for tens of milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slb_cli::{client, ServeOptions, Server};
use slb_exp::{CacheStore, Metric, Query, SimBudget};

/// A running in-process daemon: address plus the teardown handles.
struct Daemon {
    addr: String,
    root: std::path::PathBuf,
    thread: std::thread::JoinHandle<()>,
}

fn start_daemon(tag: &str) -> Daemon {
    let root = std::env::temp_dir().join(format!("slb-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_dir: Some(root.clone()),
        ..ServeOptions::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    Daemon { addr, root, thread }
}

fn stop_daemon(daemon: Daemon) {
    client::post_shutdown(&daemon.addr).expect("shutdown bench server");
    daemon.thread.join().expect("join server thread");
    let _ = std::fs::remove_dir_all(&daemon.root);
}

/// The benched grid point: a mid-size SQ(2) system under real load,
/// sized so a cold solve costs tens of milliseconds — the regime the
/// ≥100× cached-speedup claim is measured in.
fn service_query(seed: u64) -> Query {
    Query::Service {
        policy: "sqd".into(),
        n: 16,
        d: 2,
        rho: 0.9,
        budget: SimBudget {
            jobs: 300_000,
            replications: 1,
            seed,
        },
    }
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");

    // Cold: every invocation (including the shim's untimed warm-up)
    // takes a never-before-seen seed, so each round trip runs the full
    // simulation before answering.
    let daemon = start_daemon("cold");
    let seq = AtomicU64::new(1);
    group.bench_function("serve/cold_query", |b| {
        b.iter(|| {
            let q = service_query(seq.fetch_add(1, Ordering::Relaxed));
            let ans = client::post_query(&daemon.addr, &q).expect("cold query");
            assert_eq!(ans.computed, 1, "cold key must be computed");
            ans
        })
    });
    stop_daemon(daemon);

    // Cached: one fixed key, warmed once, then every round trip is a
    // store hit — the number to hold against cold_query.
    let daemon = start_daemon("cached");
    let q = service_query(777);
    client::post_query(&daemon.addr, &q).expect("warm the key");
    group.bench_function("serve/cached_query", |b| {
        b.iter(|| {
            let ans = client::post_query(&daemon.addr, &q).expect("cached query");
            assert_eq!(ans.computed, 0, "warm key must be served from cache");
            ans
        })
    });

    // Throughput: CLIENTS threads each firing a burst of cached
    // queries at the same daemon concurrently.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 16;
    group.throughput(Throughput::Elements((CLIENTS * PER_CLIENT) as u64));
    let addr = Arc::new(daemon.addr.clone());
    group.bench_function("serve/concurrent_clients_4x16", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let addr = Arc::clone(&addr);
                    let q = service_query(777);
                    std::thread::spawn(move || {
                        for _ in 0..PER_CLIENT {
                            let ans = client::post_query(&addr, &q).expect("concurrent query");
                            assert_eq!(ans.computed, 0);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
        })
    });
    stop_daemon(daemon);
    group.finish();
}

/// The store layers below the socket: a pure in-process memory hit and
/// a disk (cold-index) hit, for locating where served-latency goes.
fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    let root = std::env::temp_dir().join(format!("slb-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CacheStore::open(root.clone());
    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| (0..12).map(|j| format!("{}.{:04}", i, j)).collect())
        .collect();
    let rows_for_compute = rows.clone();
    store
        .get_or_compute("bench-key", move || Ok(rows_for_compute))
        .expect("seed the store");

    group.bench_function("store/memory_hit", |b| {
        b.iter(|| {
            store
                .get_or_compute("bench-key", || unreachable!("must hit"))
                .expect("memory hit")
        })
    });
    group.bench_function("store/disk_hit_cold_index", |b| {
        b.iter(|| {
            let cold = CacheStore::open(root.clone());
            cold.get_or_compute("bench-key", || unreachable!("must hit"))
                .expect("disk hit")
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);

    // The capacity planner end to end, warm store: a full bisection
    // answered purely from cache.
    let root = std::env::temp_dir().join(format!("slb-bench-cap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = CacheStore::open(root.clone());
    let capacity = Query::Capacity {
        policy: "sqd".into(),
        lambda: 4.0,
        d: 2,
        metric: Metric::Mean,
        slo: 1.5,
        n_max: 64,
        budget: SimBudget {
            jobs: 40_000,
            replications: 1,
            seed: 5,
        },
    };
    slb_exp::answer(&capacity, &store).expect("warm the capacity probes");
    let mut group = c.benchmark_group("query");
    group.bench_function("query/capacity_warm", |b| {
        b.iter(|| {
            let ans = slb_exp::answer(&capacity, &store).expect("warm capacity");
            assert_eq!(ans.computed, 0);
            ans
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_serve, bench_store);
criterion_main!(benches);
